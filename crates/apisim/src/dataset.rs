use serde::{Deserialize, Serialize};

use crate::{Class, Program};

/// Sizes of the train/validation/test splits, per class.
///
/// [`DatasetSpec::paper`] matches the paper's Table I exactly; the
/// `quick` and `tiny` presets scale it down for CI and interactive runs
/// while preserving the class ratios (training balanced; test
/// malware-heavy like the VirusTotal test set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Clean training samples.
    pub train_clean: usize,
    /// Malware training samples.
    pub train_malware: usize,
    /// Clean validation samples.
    pub val_clean: usize,
    /// Malware validation samples.
    pub val_malware: usize,
    /// Clean test samples.
    pub test_clean: usize,
    /// Malware test samples.
    pub test_malware: usize,
}

impl DatasetSpec {
    /// The paper's Table I: train 57 170 (28 594 clean / 28 576 malware),
    /// validation 578 (280 / 298), test 45 028 (16 154 / 28 874).
    pub fn paper() -> Self {
        DatasetSpec {
            train_clean: 28_594,
            train_malware: 28_576,
            val_clean: 280,
            val_malware: 298,
            test_clean: 16_154,
            test_malware: 28_874,
        }
    }

    /// A laptop-scale preset (~1/16 of paper) preserving the class ratios.
    pub fn quick() -> Self {
        DatasetSpec {
            train_clean: 1_787,
            train_malware: 1_786,
            val_clean: 70,
            val_malware: 74,
            test_clean: 1_010,
            test_malware: 1_805,
        }
    }

    /// A tiny preset for unit tests.
    pub fn tiny() -> Self {
        DatasetSpec {
            train_clean: 60,
            train_malware: 60,
            val_clean: 10,
            val_malware: 10,
            test_clean: 40,
            test_malware: 60,
        }
    }

    /// Total training samples.
    pub fn train_total(&self) -> usize {
        self.train_clean + self.train_malware
    }

    /// Total validation samples.
    pub fn val_total(&self) -> usize {
        self.val_clean + self.val_malware
    }

    /// Total test samples.
    pub fn test_total(&self) -> usize {
        self.test_clean + self.test_malware
    }
}

/// A generated train/validation/test corpus of [`Program`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    train: Vec<Program>,
    val: Vec<Program>,
    test: Vec<Program>,
}

impl Dataset {
    /// Assembles a dataset from explicit splits.
    pub fn new(train: Vec<Program>, val: Vec<Program>, test: Vec<Program>) -> Self {
        Dataset { train, val, test }
    }

    /// The training split.
    pub fn train(&self) -> &[Program] {
        &self.train
    }

    /// The validation split.
    pub fn val(&self) -> &[Program] {
        &self.val
    }

    /// The test split.
    pub fn test(&self) -> &[Program] {
        &self.test
    }

    /// Hard labels (0 = clean, 1 = malware) for a split.
    pub fn labels(split: &[Program]) -> Vec<usize> {
        split.iter().map(|p| p.class().label()).collect()
    }

    /// `(clean, malware)` counts of a split.
    pub fn class_counts(split: &[Program]) -> (usize, usize) {
        let malware = split.iter().filter(|p| p.class() == Class::Malware).count();
        (split.len() - malware, malware)
    }

    /// Indices of a split's samples belonging to `class`.
    pub fn indices_of(split: &[Program], class: Class) -> Vec<usize> {
        split
            .iter()
            .enumerate()
            .filter(|(_, p)| p.class() == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the dataset summary in the shape of the paper's Table I.
    pub fn render_table_i(&self) -> String {
        let (tc, tm) = Self::class_counts(&self.train);
        let (vc, vm) = Self::class_counts(&self.val);
        let (ec, em) = Self::class_counts(&self.test);
        let mut s = String::new();
        s.push_str("Dataset          Number of Samples\n");
        s.push_str(&format!(
            "Training Set     {} ({tc} clean and {tm} malware)\n",
            self.train.len()
        ));
        s.push_str(&format!(
            "Validation Set   {} ({vc} clean and {vm} malware)\n",
            self.val.len()
        ));
        s.push_str(&format!(
            "Test Set         {} ({ec} clean and {em} malware)\n",
            self.test.len()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{World, WorldConfig};

    #[test]
    fn paper_spec_matches_table_i() {
        let s = DatasetSpec::paper();
        assert_eq!(s.train_total(), 57_170);
        assert_eq!(s.val_total(), 578);
        assert_eq!(s.test_total(), 45_028);
        assert_eq!(s.train_clean, 28_594);
        assert_eq!(s.test_malware, 28_874);
    }

    #[test]
    fn quick_preserves_ratio_roughly() {
        let s = DatasetSpec::quick();
        // training balanced
        assert!((s.train_clean as i64 - s.train_malware as i64).abs() <= 5);
        // test malware-heavy like the paper (64% malware)
        let ratio = s.test_malware as f64 / s.test_total() as f64;
        assert!((ratio - 0.64).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn build_dataset_honours_spec() {
        let world = World::new(WorldConfig::default());
        let spec = DatasetSpec::tiny();
        let ds = world.build_dataset(&spec, 42);
        assert_eq!(ds.train().len(), spec.train_total());
        assert_eq!(ds.val().len(), spec.val_total());
        assert_eq!(ds.test().len(), spec.test_total());
        assert_eq!(Dataset::class_counts(ds.train()), (60, 60));
        assert_eq!(Dataset::class_counts(ds.test()), (40, 60));
    }

    #[test]
    fn build_dataset_is_deterministic() {
        let world = World::default();
        let spec = DatasetSpec::tiny();
        assert_eq!(world.build_dataset(&spec, 1), world.build_dataset(&spec, 1));
        assert_ne!(world.build_dataset(&spec, 1), world.build_dataset(&spec, 2));
    }

    #[test]
    fn splits_use_independent_streams() {
        // Train and test of the same seed must differ (different streams).
        let world = World::default();
        let ds = world.build_dataset(&DatasetSpec::tiny(), 9);
        assert_ne!(ds.train()[..40], ds.test()[..40]);
    }

    #[test]
    fn labels_and_indices() {
        let world = World::default();
        let ds = world.build_dataset(&DatasetSpec::tiny(), 3);
        let labels = Dataset::labels(ds.test());
        assert_eq!(labels.len(), ds.test().len());
        let mal_idx = Dataset::indices_of(ds.test(), Class::Malware);
        assert_eq!(mal_idx.len(), 60);
        assert!(mal_idx.iter().all(|&i| labels[i] == 1));
    }

    #[test]
    fn table_i_rendering_contains_counts() {
        let world = World::default();
        let ds = world.build_dataset(&DatasetSpec::tiny(), 3);
        let table = ds.render_table_i();
        assert!(table.contains("Training Set"));
        assert!(table.contains("120 (60 clean and 60 malware)"));
        assert!(table.contains("100 (40 clean and 60 malware)"));
    }
}
