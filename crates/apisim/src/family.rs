use serde::{Deserialize, Serialize};

/// Ground-truth class of a program: the label the detector learns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Benign software ("clean" in the paper's tables).
    Clean,
    /// Malicious software.
    Malware,
}

impl Class {
    /// The label index used for training (clean = 0, malware = 1 —
    /// matching the paper's Equation 1, where target class 0 is clean).
    pub fn label(self) -> usize {
        match self {
            Class::Clean => 0,
            Class::Malware => 1,
        }
    }

    /// Converts a label index back into a class.
    ///
    /// # Panics
    ///
    /// Panics if `label > 1`.
    pub fn from_label(label: usize) -> Self {
        match label {
            0 => Class::Clean,
            1 => Class::Malware,
            _ => panic!("class label must be 0 or 1, got {label}"),
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Class::Clean => "clean",
            Class::Malware => "malware",
        })
    }
}

/// Behavioural family of a synthetic program.
///
/// The real corpus mixes many kinds of software; families give the
/// synthetic world the same within-class diversity. Each family has its
/// own API-usage profile (see [`profile`](crate::profile)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    // --- benign families ---
    /// Document/office-style software: heavy file + UI usage.
    Office,
    /// Developer tooling: module loading, console, file churn.
    DevTool,
    /// Media software: GDI-heavy, file reads.
    MediaPlayer,
    /// System utilities: registry, services, system info.
    SystemUtility,
    /// Network clients: sockets and HTTP without dropper behaviour.
    Browser,
    // --- malware families ---
    /// Process injectors: `writeprocessmemory`, `createremotethread`, ….
    Injector,
    /// Droppers: download + write + execute.
    Dropper,
    /// Keyloggers: hooks and key-state polling.
    Keylogger,
    /// Ransomware: crypto + file enumeration + deletion.
    Ransomware,
    /// Backdoors: sockets, shell, persistence via registry/services.
    Backdoor,
}

impl Family {
    /// All benign families.
    pub const BENIGN: [Family; 5] = [
        Family::Office,
        Family::DevTool,
        Family::MediaPlayer,
        Family::SystemUtility,
        Family::Browser,
    ];

    /// All malware families.
    pub const MALWARE: [Family; 5] = [
        Family::Injector,
        Family::Dropper,
        Family::Keylogger,
        Family::Ransomware,
        Family::Backdoor,
    ];

    /// The ground-truth class of this family.
    pub fn class(self) -> Class {
        match self {
            Family::Office
            | Family::DevTool
            | Family::MediaPlayer
            | Family::SystemUtility
            | Family::Browser => Class::Clean,
            Family::Injector
            | Family::Dropper
            | Family::Keylogger
            | Family::Ransomware
            | Family::Backdoor => Class::Malware,
        }
    }

    /// All families of the given class.
    pub fn of_class(class: Class) -> &'static [Family] {
        match class {
            Class::Clean => &Self::BENIGN,
            Class::Malware => &Self::MALWARE,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::Office => "office",
            Family::DevTool => "devtool",
            Family::MediaPlayer => "mediaplayer",
            Family::SystemUtility => "systemutility",
            Family::Browser => "browser",
            Family::Injector => "injector",
            Family::Dropper => "dropper",
            Family::Keylogger => "keylogger",
            Family::Ransomware => "ransomware",
            Family::Backdoor => "backdoor",
        };
        f.write_str(name)
    }
}

/// Windows version the sample's log was captured on; the paper's corpus
/// mixes Win7, WinXP, Win8 and Win10 logs (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsVersion {
    /// Windows XP.
    WinXp,
    /// Windows 7.
    Win7,
    /// Windows 8.
    Win8,
    /// Windows 10.
    Win10,
}

impl OsVersion {
    /// All simulated OS versions.
    pub const ALL: [OsVersion; 4] = [
        OsVersion::WinXp,
        OsVersion::Win7,
        OsVersion::Win8,
        OsVersion::Win10,
    ];
}

impl std::fmt::Display for OsVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OsVersion::WinXp => "winxp",
            OsVersion::Win7 => "win7",
            OsVersion::Win8 => "win8",
            OsVersion::Win10 => "win10",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        assert_eq!(Class::Clean.label(), 0);
        assert_eq!(Class::Malware.label(), 1);
        assert_eq!(Class::from_label(0), Class::Clean);
        assert_eq!(Class::from_label(1), Class::Malware);
    }

    #[test]
    #[should_panic(expected = "class label must be 0 or 1")]
    fn bad_label_panics() {
        Class::from_label(2);
    }

    #[test]
    fn families_partition_by_class() {
        for f in Family::BENIGN {
            assert_eq!(f.class(), Class::Clean);
        }
        for f in Family::MALWARE {
            assert_eq!(f.class(), Class::Malware);
        }
        assert_eq!(Family::of_class(Class::Clean).len(), 5);
        assert_eq!(Family::of_class(Class::Malware).len(), 5);
    }

    #[test]
    fn displays_are_lowercase_and_nonempty() {
        for f in Family::BENIGN.iter().chain(Family::MALWARE.iter()) {
            let s = f.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_ascii_lowercase());
        }
        assert_eq!(Class::Malware.to_string(), "malware");
        assert_eq!(OsVersion::Win10.to_string(), "win10");
    }
}
