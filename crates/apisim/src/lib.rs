//! Synthetic Windows API-call world for the `maleva` reproduction.
//!
//! The paper's dataset is proprietary: PE samples collected by McAfee Labs,
//! run in a sandbox whose log files capture API calls (Table II), from
//! which **491 API-count features** are extracted (Table III). This crate
//! is the substitute substrate: a generative world of synthetic programs
//! whose API usage follows class- and family-specific behaviour profiles,
//! rendered to and parsed from Table-II-style log text.
//!
//! The substitution preserves what the attacks and defenses actually
//! exercise — the *geometry* of two overlapping classes in count-feature
//! space, where a sparse set of APIs carries the class evidence — without
//! any real malware.
//!
//! # Components
//!
//! * [`ApiVocab`] — the 491-name API vocabulary (alphabetical, as in
//!   Table III), including every API name the paper mentions.
//! * [`Family`] / [`Class`] — benign and malicious program families with
//!   distinct behaviour profiles.
//! * [`Program`] — a synthetic sample: API-call counts plus metadata. The
//!   "source code edit" of the paper's live grey-box test is
//!   [`Program::insert_api_calls`].
//! * [`log`] — render/parse `Api:Address (args)"tid"` log lines.
//! * [`World`] — the seeded generator.
//! * [`Dataset`] / [`DatasetSpec`] — Table I splits with `paper`, `quick`
//!   and `tiny` presets.
//!
//! # Example
//!
//! ```
//! use maleva_apisim::{ApiVocab, World, WorldConfig, Class};
//!
//! let vocab = ApiVocab::standard();
//! assert_eq!(vocab.len(), 491);
//!
//! let world = World::new(WorldConfig::default());
//! let mut rng = maleva_apisim::rng(42);
//! let prog = world.sample_program(Class::Malware, &mut rng);
//! assert_eq!(prog.class(), Class::Malware);
//!
//! // Logs round-trip: parse(render(p)) recovers p's counts.
//! let text = prog.render_log(&vocab);
//! let counts = maleva_apisim::log::parse_counts(&text, &vocab);
//! assert_eq!(&counts, prog.counts());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod family;
pub mod log;
pub mod profile;
mod program;
mod vocab;
mod world;

pub use dataset::{Dataset, DatasetSpec};
pub use family::{Class, Family, OsVersion};
pub use program::Program;
pub use vocab::ApiVocab;
pub use world::{World, WorldConfig};

/// Creates the crate's canonical deterministic RNG from a seed.
pub fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}
