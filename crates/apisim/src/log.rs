//! Rendering and parsing of sandbox API-call logs.
//!
//! The paper's Table II shows the log format its feature extractor
//! consumes:
//!
//! ```text
//! GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"
//! GetStartupInfoW:13FBC4539 ()"61484"
//! ```
//!
//! i.e. `ApiName:CallAddress (args)"threadid"`. Only the API name matters
//! to the 491-count feature extractor; addresses, arguments and thread ids
//! are simulation colour. Rendering is deterministic per program (derived
//! from a hash of the counts) so the same program always produces the
//! same log, and `parse_counts(render(p)) == p.counts()`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::{ApiVocab, Program};

/// Renders a program's API-call log in the paper's Table II format.
///
/// Calls are interleaved deterministically (round-robin over APIs with
/// remaining counts) to mimic real execution traces rather than emitting
/// all calls of one API contiguously.
///
/// # Panics
///
/// Panics if the program's count vector is longer than the vocabulary.
pub fn render(program: &Program, vocab: &ApiVocab) -> String {
    let counts = program.counts();
    assert!(
        counts.len() <= vocab.len(),
        "program has {} counts but vocabulary has {} names",
        counts.len(),
        vocab.len()
    );
    let mut hasher = DefaultHasher::new();
    counts.hash(&mut hasher);
    let base = hasher.finish();
    let tid = 60_000 + (base % 8_000);

    let mut remaining: Vec<(usize, u32)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();

    let mut out = String::new();
    let mut call_no: u64 = 0;
    while !remaining.is_empty() {
        let mut next = Vec::with_capacity(remaining.len());
        for &(api, left) in &remaining {
            let name = vocab.name(api).expect("index within vocabulary");
            // Deterministic pseudo-address per (program, api, occurrence).
            let addr = base
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((api as u64) << 20)
                .wrapping_add(call_no)
                & 0xF_FFFF_FFFF;
            let args = pseudo_args(base, api, call_no, vocab);
            out.push_str(&format!("{name}:{addr:X} ({args})\"{tid}\"\n"));
            call_no += 1;
            if left > 1 {
                next.push((api, left - 1));
            }
        }
        remaining = next;
    }
    out
}

/// Deterministic argument string: most calls log `()`, some log a module
/// handle and a quoted symbol, as in Table II's `GetProcAddress` line.
fn pseudo_args(base: u64, api: usize, call_no: u64, vocab: &ApiVocab) -> String {
    let h = base ^ ((api as u64) << 32) ^ call_no.wrapping_mul(0x517C_C1B7_2722_0A95);
    if h.is_multiple_of(5) {
        let handle = 0x7000_0000u64 + (h % 0x00FF_FFFF);
        let sym_idx = (h >> 8) as usize % vocab.len();
        let sym = vocab.name(sym_idx).unwrap_or("Unknown");
        format!("{handle:X},\"{sym}\"")
    } else {
        String::new()
    }
}

/// What [`parse_counts_with_unknown`] saw while scanning a log: the
/// per-API counts plus tallies of the lines that did *not* contribute.
///
/// Real sandbox logs are messy — truncated writes, interleaved stderr,
/// foreign tooling — and a parser that silently drops bad lines hides
/// corrupted inputs from the experiment harness. The tallies make the
/// drop rate observable without changing the counting behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogParse {
    /// Per-API call counts against the vocabulary.
    pub counts: Vec<u32>,
    /// Well-formed lines naming an API outside the vocabulary (the
    /// "different features" situation of grey-box experiment 2).
    pub unknown: u64,
    /// Lines that could not be parsed at all: no `:` separator or an
    /// empty API name. Blank lines are not counted.
    pub malformed: u64,
}

impl LogParse {
    /// True when every non-blank line parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.malformed == 0
    }
}

/// Parses a log back into per-API counts against `vocab`.
///
/// Lines whose API name is not in the vocabulary, and malformed lines
/// (no `:` separator or empty name), are tallied by
/// [`parse_counts_with_unknown`]; this function discards those tallies.
pub fn parse_counts(text: &str, vocab: &ApiVocab) -> Vec<u32> {
    parse_counts_with_unknown(text, vocab).counts
}

/// Like [`parse_counts`], also reporting how many lines named APIs
/// outside the vocabulary and how many were malformed (see [`LogParse`]).
pub fn parse_counts_with_unknown(text: &str, vocab: &ApiVocab) -> LogParse {
    let mut counts = vec![0u32; vocab.len()];
    let mut unknown = 0u64;
    let mut malformed = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(colon) = line.find(':') else {
            malformed += 1;
            continue;
        };
        let name = &line[..colon];
        if name.is_empty() {
            malformed += 1;
            continue;
        }
        match vocab.index_of(name) {
            Some(i) => counts[i] = counts[i].saturating_add(1),
            None => unknown += 1,
        }
    }
    LogParse {
        counts,
        unknown,
        malformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Family, OsVersion};

    fn vocab() -> ApiVocab {
        ApiVocab::standard()
    }

    fn prog_with(counts: &[(usize, u32)]) -> Program {
        let v = vocab();
        let mut c = vec![0u32; v.len()];
        for &(i, n) in counts {
            c[i] = n;
        }
        Program::new(Family::Injector, OsVersion::Win10, c)
    }

    #[test]
    fn render_parse_round_trip() {
        let p = prog_with(&[(0, 3), (100, 1), (490, 7)]);
        let text = render(&p, &vocab());
        let parsed = parse_counts(&text, &vocab());
        assert_eq!(&parsed, p.counts());
    }

    #[test]
    fn render_is_deterministic() {
        let p = prog_with(&[(5, 2), (50, 4)]);
        assert_eq!(render(&p, &vocab()), render(&p, &vocab()));
    }

    #[test]
    fn line_format_matches_table_ii() {
        let v = vocab();
        let idx = v.index_of("getprocaddress").unwrap();
        let p = prog_with(&[(idx, 1)]);
        let text = render(&p, &v);
        let line = text.lines().next().unwrap();
        // getprocaddress:HEXADDR (args)"tid"
        assert!(line.starts_with("getprocaddress:"), "line: {line}");
        assert!(line.contains('(') && line.contains(')'), "line: {line}");
        assert!(line.ends_with('"'), "line: {line}");
        let tid_part = line.rsplit('"').nth(1).unwrap();
        assert!(
            tid_part.parse::<u64>().is_ok(),
            "tid not numeric: {tid_part}"
        );
    }

    #[test]
    fn interleaves_calls_rather_than_grouping() {
        let p = prog_with(&[(1, 3), (2, 3)]);
        let v = vocab();
        let text = render(&p, &v);
        let names: Vec<&str> = text.lines().map(|l| l.split(':').next().unwrap()).collect();
        assert_eq!(names.len(), 6);
        // Round-robin: a b a b a b, never a a a b b b.
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn empty_program_renders_empty_log() {
        let v = vocab();
        let p = Program::new(Family::Office, OsVersion::Win7, vec![0; v.len()]);
        assert_eq!(render(&p, &v), "");
        assert_eq!(parse_counts("", &v), vec![0u32; v.len()]);
    }

    #[test]
    fn parser_counts_unknown_apis() {
        let v = vocab();
        let text = "notanapi:123 ()\"1\"\ngetprocaddress:456 ()\"1\"\n";
        let parse = parse_counts_with_unknown(text, &v);
        assert_eq!(parse.unknown, 1);
        assert_eq!(parse.malformed, 0);
        assert!(parse.is_clean());
        assert_eq!(parse.counts[v.index_of("getprocaddress").unwrap()], 1);
    }

    #[test]
    fn parser_skips_and_tallies_malformed_lines() {
        let v = vocab();
        // Two malformed lines (no separator; empty name), blank lines
        // are not counted as malformed.
        let text = "garbage line with no separator\n\n   \n:empty name\n";
        let parse = parse_counts_with_unknown(text, &v);
        assert!(parse.counts.iter().all(|&c| c == 0));
        assert_eq!(parse.unknown, 0);
        assert_eq!(parse.malformed, 2);
        assert!(!parse.is_clean());
    }

    #[test]
    fn malformed_tally_does_not_disturb_good_lines() {
        let v = vocab();
        let text = "getprocaddress:7FEF ()\"1\"\n%%corrupted%%\ngetprocaddress:7FF0 ()\"1\"\n";
        let parse = parse_counts_with_unknown(text, &v);
        assert_eq!(parse.counts[v.index_of("getprocaddress").unwrap()], 2);
        assert_eq!(parse.malformed, 1);
    }

    #[test]
    fn parser_is_case_insensitive_like_the_feature_pipeline() {
        let v = vocab();
        let text = "GetProcAddress:7FEF ()\"61468\"\n";
        let counts = parse_counts(text, &v);
        assert_eq!(counts[v.index_of("getprocaddress").unwrap()], 1);
    }

    #[test]
    fn inserted_api_calls_show_up_in_reparsed_log() {
        // The live grey-box loop: edit source -> re-render -> re-parse.
        let v = vocab();
        let idx = v.index_of("destroyicon").unwrap();
        let mut p = prog_with(&[(3, 2)]);
        assert_eq!(parse_counts(&render(&p, &v), &v)[idx], 0);
        p.insert_api_calls(idx, 8);
        assert_eq!(parse_counts(&render(&p, &v), &v)[idx], 8);
    }
}
