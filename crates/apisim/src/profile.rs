//! Behaviour profiles: expected API-call rates per program family.
//!
//! A profile assigns every vocabulary API an expected call rate; sampling
//! a program draws per-API counts from Poisson distributions scaled by a
//! log-normal program-size factor. Benign and malicious families share a
//! *common runtime baseline* (the loader/CRT calls visible in the paper's
//! Table II log excerpt appear in every program) and differ in a sparse
//! set of *signature APIs* — which is exactly the feature geometry the
//! JSMA attack exploits and the defenses must cope with.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};
use serde::{Deserialize, Serialize};

use crate::{ApiVocab, Family, OsVersion};

/// Expected API-call rates for one program family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorProfile {
    family: Family,
    rates: Vec<f64>,
}

/// Rate given to every API as sparse background noise.
const BACKGROUND_RATE: f64 = 0.02;

/// APIs every Windows process touches (cf. the paper's Table II excerpt),
/// with their baseline rates.
const COMMON_BASELINE: &[(&str, f64)] = &[
    ("getstartupinfow", 2.0),
    ("getfiletype", 2.5),
    ("getmodulehandlew", 4.0),
    ("getmodulehandlea", 2.0),
    ("getprocaddress", 12.0),
    ("getstdhandle", 2.5),
    ("freeenvironmentstringsw", 1.5),
    ("getcpinfo", 1.5),
    ("getlasterror", 8.0),
    ("heapalloc", 20.0),
    ("heapfree", 18.0),
    ("getprocessheap", 2.0),
    ("flsalloc", 1.0),
    ("tlsalloc", 1.0),
    ("tlsgetvalue", 6.0),
    ("entercriticalsection", 10.0),
    ("leavecriticalsection", 10.0),
    ("initializecriticalsection", 3.0),
    ("loadlibrarya", 3.0),
    ("loadlibraryw", 3.0),
    ("freelibrary", 2.0),
    ("getcommandlinea", 1.0),
    ("getcommandlinew", 1.0),
    ("multibytetowidechar", 5.0),
    ("widechartomultibyte", 5.0),
    ("lstrlena", 3.0),
    ("lstrlenw", 3.0),
    ("getenvironmentstringsw", 1.0),
    ("exitprocess", 1.0),
    ("sleep", 2.0),
    ("getcurrentprocess", 2.0),
    ("getcurrentthread", 1.5),
    ("gettickcount", 2.5),
    ("getsystemtimeasfiletime", 1.5),
    ("queryperformancecounter", 1.5),
    ("interlockedincrement", 4.0),
    ("interlockeddecrement", 4.0),
    ("getversionexa", 1.0),
    ("getversionexw", 1.0),
    ("setlasterror", 2.0),
    ("raiseexception", 0.3),
    ("setunhandledexceptionfilter", 0.8),
    ("getacp", 1.0),
    ("getlocaleinfoa", 1.0),
    ("getstringtypew", 1.5),
];

/// APIs common to (nearly all) *benign* software regardless of family:
/// the GUI message pump, resource loading, COM — interactive-software
/// plumbing that malware typically lacks. These give every detector a
/// shared clean-evidence direction, which is what makes adversarial
/// examples transfer between independently trained models (and is why
/// the paper's Figure 1 evasion adds GUI APIs like `destroyicon`).
const CLEAN_CLASS_BASELINE: &[(&str, f64)] = &[
    ("registerclassexw", 2.0),
    ("createwindowexw", 2.5),
    ("getmessagew", 5.0),
    ("dispatchmessagew", 5.0),
    ("translatemessage", 5.0),
    ("defwindowprocw", 1.0),
    ("loadiconw", 0.7),
    ("loadcursorw", 0.7),
    ("destroyicon", 0.5),
    ("begingpaint", 0.8),
    ("endpaint", 0.8),
    ("getclientrect", 0.8),
    ("findresourcew", 0.8),
    ("loadresource", 0.8),
    ("lockresource", 0.6),
    ("coinitialize", 0.5),
    ("cocreateinstance", 0.7),
    ("getfileversioninfow", 0.4),
    ("getstockobject", 0.5),
    ("getsystemmetrics", 0.8),
];

/// APIs common to (nearly all) *malware* regardless of family:
/// anti-debugging, self-location, persistence and infection markers.
const MALWARE_CLASS_BASELINE: &[(&str, f64)] = &[
    ("isdebuggerpresent", 2.5),
    ("checkremotedebuggerpresent", 0.8),
    ("getmodulefilenamea", 2.5),
    ("createmutexa", 2.5),
    ("openprocess", 0.8),
    ("createtoolhelp32snapshot", 0.8),
    ("virtualalloc", 1.2),
    ("virtualprotect", 0.6),
    ("regcreatekeyexa", 0.8),
    ("adjusttokenprivileges", 0.5),
    ("getcomputernamea", 0.5),
    ("exitprocess", 0.8),
];

/// Per-family signature APIs with their rates. These are the
/// class-evidence features the detector learns and the attacker perturbs.
fn family_signature(family: Family) -> &'static [(&'static str, f64)] {
    match family {
        Family::Office => &[
            ("createfilew", 10.0),
            ("readfile", 14.0),
            ("writefile", 9.0),
            ("closeclipboard", 1.0),
            ("openclipboard", 1.0),
            ("getclipboarddata", 1.0),
            ("createwindowexw", 5.0),
            ("showwindow", 3.0),
            ("updatewindow", 2.0),
            ("getdc", 3.0),
            ("releasedc", 3.0),
            ("textoutw", 4.0),
            ("createfontw", 2.0),
            ("getprivateprofilestringw", 3.0),
            ("writeprivateprofilestringw", 1.5),
            ("getwindowtextw", 2.0),
            ("setwindowtextw", 2.0),
            ("dispatchmessagew", 8.0),
            ("getmessagew", 8.0),
            ("translatemessage", 8.0),
            ("sendmessagew", 5.0),
            ("shgetfolderpathw", 1.0),
            ("findresourcew", 1.5),
            ("loadresource", 1.5),
            ("cocreateinstance", 2.0),
            ("coinitializeex", 1.0),
            ("sysallocstring", 3.0),
            ("variantinit", 2.0),
        ],
        Family::DevTool => &[
            ("createfilea", 12.0),
            ("readfile", 16.0),
            ("writefile", 12.0),
            ("writeconsolea", 6.0),
            ("writeconsolew", 4.0),
            ("readconsolea", 1.5),
            ("getconsolemode", 2.0),
            ("setconsolemode", 1.5),
            ("allocconsole", 0.8),
            ("findfirstfilea", 4.0),
            ("findnextfilea", 8.0),
            ("findclose", 4.0),
            ("getfullpathnamea", 3.0),
            ("getcurrentdirectorya", 2.0),
            ("setcurrentdirectorya", 1.5),
            ("createprocessa", 2.0),
            ("waitforsingleobject", 3.0),
            ("getexitcodeprocess", 1.5),
            ("createpipe", 0.0), // not in vocab; ignored harmlessly
            ("getenvironmentvariablea", 3.0),
            ("setenvironmentvariablea", 1.5),
            ("outputdebugstringa", 1.0),
            ("getfileattributesa", 3.0),
            ("createdirectorya", 1.0),
            ("getmodulefilenamea", 2.0),
        ],
        Family::MediaPlayer => &[
            ("createfilew", 8.0),
            ("readfile", 20.0),
            ("setfilepointer", 10.0),
            ("createcompatibledc", 4.0),
            ("createcompatiblebitmap", 3.0),
            ("bitblt", 8.0),
            ("stretchblt", 4.0),
            ("selectobject", 6.0),
            ("deleteobject", 6.0),
            ("getdibits", 3.0),
            ("setdibits", 2.0),
            ("createwindowexw", 3.0),
            ("getclientrect", 3.0),
            ("getwindowrect", 2.0),
            ("settimer", 2.0),
            ("killtimer", 1.5),
            ("timegettime", 4.0),
            ("dispatchmessagew", 6.0),
            ("peekmessagew", 8.0),
            ("loadimagew", 2.0),
            ("drawicon", 1.0),
            ("waitmessage", 2.0),
            ("windowfromdc", 1.0),
        ],
        Family::SystemUtility => &[
            ("regopenkeyexw", 8.0),
            ("regqueryvalueexw", 10.0),
            ("regclosekey", 8.0),
            ("regenumkeyexw", 4.0),
            ("regenumvaluew", 3.0),
            ("regsetvalueexw", 2.0),
            ("openscmanagerw", 1.5),
            ("openservicew", 2.0),
            ("queryservicestatus", 2.0),
            ("closeservicehandle", 2.5),
            ("getsysteminfo", 1.5),
            ("globalmemorystatusex", 1.5),
            ("getcomputernamew", 1.0),
            ("getusernamew", 1.0),
            ("getsystemdirectoryw", 1.5),
            ("getwindowsdirectoryw", 1.5),
            ("getdrivetypew", 2.0),
            ("getlogicaldrives", 1.0),
            ("getdiskfreespaceexa", 1.5),
            ("createtoolhelp32snapshot", 1.5),
            ("process32first", 1.0),
            ("process32next", 6.0),
            ("enumprocesses", 1.0),
            ("getfileversioninfow", 1.5),
            ("verqueryvaluew", 1.5),
            ("shellexecutew", 1.0),
        ],
        Family::Browser => &[
            ("wsastartup", 1.0),
            ("socket", 4.0),
            ("connect", 4.0),
            ("send", 12.0),
            ("recv", 16.0),
            ("closesocket", 4.0),
            ("gethostbyname", 3.0),
            ("getaddrinfo", 3.0),
            ("internetopenw", 1.0),
            ("internetconnectw", 2.0),
            ("httpopenrequestw", 3.0),
            ("httpsendrequestw", 3.0),
            ("internetreadfile", 10.0),
            ("internetclosehandle", 3.0),
            ("createwindowexw", 3.0),
            ("dispatchmessagew", 6.0),
            ("getmessagew", 6.0),
            ("cryptacquirecontextw", 1.0),
            ("cryptgenrandom", 1.5),
            ("createfilew", 5.0),
            ("writefile", 6.0),
            ("readfile", 8.0),
            ("getclipboarddata", 0.5),
            ("shgetknownfolderpath", 1.0),
        ],
        Family::Injector => &[
            ("openprocess", 6.0),
            ("virtualallocex", 5.0),
            ("writeprocessmemory", 8.0),
            ("readprocessmemory", 3.0),
            ("createremotethread", 4.0),
            ("virtualprotect", 4.0),
            ("virtualalloc", 5.0),
            ("getthreadcontext", 2.0),
            ("setthreadcontext", 2.0),
            ("suspendthread", 2.0),
            ("resumethread", 2.5),
            ("ntunmapviewofsection", 1.5),
            ("queueuserapc", 1.5),
            ("createtoolhelp32snapshot", 2.5),
            ("process32first", 1.5),
            ("process32next", 8.0),
            ("openprocesstoken", 2.0),
            ("adjusttokenprivileges", 2.0),
            ("lookupprivilegevaluea", 1.5),
            ("isdebuggerpresent", 1.5),
            ("checkremotedebuggerpresent", 1.0),
            ("ldrloaddll", 1.0),
            ("getmodulefilenamea", 2.0),
        ],
        Family::Dropper => &[
            ("internetopena", 2.0),
            ("internetopenurla", 3.0),
            ("internetreadfile", 10.0),
            ("urldownloadtofilea", 2.5),
            ("createfilea", 6.0),
            ("writefile", 14.0),
            ("winexec", 2.5),
            ("shellexecutea", 2.0),
            ("createprocessa", 3.0),
            ("movefileexa", 1.5),
            ("copyfilea", 2.0),
            ("gettemppatha", 2.0),
            ("gettempfilenamea", 2.0),
            ("setfileattributesa", 2.0),
            ("deletefilea", 2.0),
            ("regcreatekeyexa", 2.5),
            ("regsetvalueexa", 3.0),
            ("wsastartup", 1.0),
            ("socket", 2.0),
            ("connect", 2.0),
            ("recv", 4.0),
            ("isdebuggerpresent", 1.5),
            ("getmodulefilenamea", 2.5),
            ("exitprocess", 1.5),
        ],
        Family::Keylogger => &[
            ("setwindowshookexa", 2.5),
            ("setwindowshookexw", 1.5),
            ("callnexthookex", 8.0),
            ("unhookwindowshookex", 1.0),
            ("getasynckeystate", 20.0),
            ("getkeystate", 8.0),
            ("getkeyboardstate", 4.0),
            ("mapvirtualkeya", 4.0),
            ("getforegroundwindow", 6.0),
            ("getwindowtexta", 5.0),
            ("attachthreadinput", 1.5),
            ("getrawinputdata", 3.0),
            ("registerrawinputdevices", 1.0),
            ("createfilea", 3.0),
            ("writefile", 8.0),
            ("send", 3.0),
            ("socket", 1.5),
            ("connect", 1.5),
            ("gettickcount", 5.0),
            ("settimer", 2.0),
            ("regcreatekeyexa", 1.5),
            ("regsetvalueexa", 2.0),
            ("getcursorpos", 4.0),
        ],
        Family::Ransomware => &[
            ("cryptacquirecontexta", 2.0),
            ("cryptgenkey", 2.0),
            ("cryptderivekey", 1.5),
            ("cryptencrypt", 18.0),
            ("cryptimportkey", 1.5),
            ("cryptgenrandom", 2.5),
            ("findfirstfilew", 6.0),
            ("findnextfilew", 25.0),
            ("findclose", 6.0),
            ("createfilew", 16.0),
            ("readfile", 18.0),
            ("writefile", 20.0),
            ("movefileexa", 3.0),
            ("deletefilew", 8.0),
            ("setfileattributesw", 3.0),
            ("getlogicaldrives", 1.5),
            ("getdrivetypew", 3.0),
            ("getdiskfreespaceexa", 1.0),
            ("regcreatekeyexw", 1.5),
            ("regsetvalueexw", 2.0),
            ("wsastartup", 0.8),
            ("gethostbyname", 1.0),
            ("send", 2.0),
            ("terminateprocess", 1.5),
            ("openprocess", 2.0),
        ],
        Family::Backdoor => &[
            ("wsastartup", 1.5),
            ("wsasocketa", 2.5),
            ("socket", 3.0),
            ("bind", 2.0),
            ("listen", 1.5),
            ("accept", 2.0),
            ("connect", 3.0),
            ("send", 10.0),
            ("recv", 12.0),
            ("closesocket", 3.0),
            ("createprocessa", 3.5),
            ("createpipe", 0.0), // not in vocab; ignored harmlessly
            ("winexec", 1.5),
            ("shellexecutea", 1.5),
            ("regcreatekeyexa", 2.5),
            ("regsetvalueexa", 3.5),
            ("createservicea", 1.5),
            ("startservicea", 1.0),
            ("openscmanagera", 1.5),
            ("openprocesstoken", 1.5),
            ("adjusttokenprivileges", 1.5),
            ("logonusera", 0.8),
            ("getcomputernamea", 1.5),
            ("getusernamea", 1.5),
            ("isdebuggerpresent", 1.2),
            ("gethostname", 1.5),
        ],
    }
}

/// OS-specific extra rates (the corpus mixes Win7/XP/8/10 logs; newer OSes
/// surface slightly different runtime APIs).
fn os_adjustment(os: OsVersion) -> &'static [(&'static str, f64)] {
    match os {
        OsVersion::WinXp => &[
            ("getversion", 1.0),
            ("globalmemorystatus", 0.8),
            ("getprofilestringa", 0.6),
        ],
        OsVersion::Win7 => &[("getversionexw", 0.8), ("gettickcount", 1.0)],
        OsVersion::Win8 => &[
            ("gettickcount64", 1.0),
            ("getnativesysteminfo", 0.6),
            ("shgetknownfolderpath", 0.5),
        ],
        OsVersion::Win10 => &[
            ("gettickcount64", 1.5),
            ("getnativesysteminfo", 0.8),
            ("iswow64process", 0.8),
            ("shgetknownfolderpath", 0.8),
        ],
    }
}

impl BehaviorProfile {
    /// Builds the profile for `family` over `vocab`.
    ///
    /// APIs named in the family signature that are absent from `vocab` are
    /// silently skipped (this is what happens when an attacker's guessed
    /// vocabulary differs from the target's).
    pub fn for_family(family: Family, vocab: &ApiVocab) -> Self {
        let mut rates = vec![BACKGROUND_RATE; vocab.len()];
        for &(name, rate) in COMMON_BASELINE {
            if let Some(i) = vocab.index_of(name) {
                rates[i] += rate;
            }
        }
        let class_baseline = match family.class() {
            crate::Class::Clean => CLEAN_CLASS_BASELINE,
            crate::Class::Malware => MALWARE_CLASS_BASELINE,
        };
        for &(name, rate) in class_baseline {
            if let Some(i) = vocab.index_of(name) {
                rates[i] += rate;
            }
        }
        for &(name, rate) in family_signature(family) {
            if let Some(i) = vocab.index_of(name) {
                rates[i] += rate;
            }
        }
        BehaviorProfile { family, rates }
    }

    /// The family this profile models.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Expected call rate per vocabulary index.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Adds OS-specific rates in place.
    pub fn apply_os(&mut self, os: OsVersion, vocab: &ApiVocab) {
        for &(name, rate) in os_adjustment(os) {
            if let Some(i) = vocab.index_of(name) {
                self.rates[i] += rate;
            }
        }
    }

    /// Blends this profile toward `other`: `self = (1-w)·self + w·other`.
    /// Used for label-noise samples that straddle the class boundary.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different lengths or `w` is outside
    /// `[0, 1]`.
    pub fn blend_toward(&mut self, other: &BehaviorProfile, w: f64) {
        assert_eq!(
            self.rates.len(),
            other.rates.len(),
            "profile length mismatch"
        );
        assert!((0.0..=1.0).contains(&w), "blend weight must be in [0, 1]");
        for (a, &b) in self.rates.iter_mut().zip(other.rates.iter()) {
            *a = (1.0 - w) * *a + w * b;
        }
    }

    /// Samples per-API counts: `count_i ~ Poisson(rate_i * intensity)`.
    ///
    /// `intensity` is the program-size factor (see [`sample_intensity`]).
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not finite and positive.
    pub fn sample_counts(&self, intensity: f64, rng: &mut impl Rng) -> Vec<u32> {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "intensity must be positive and finite, got {intensity}"
        );
        self.rates
            .iter()
            .map(|&r| {
                let lambda = r * intensity;
                if lambda <= 0.0 {
                    0
                } else {
                    Poisson::new(lambda).expect("positive lambda").sample(rng) as u32
                }
            })
            .collect()
    }
}

/// Draws a log-normal program-size factor with median 1.
///
/// `sigma` controls dispersion; the default world uses 0.45, giving a
/// realistic heavy tail of both tiny and very chatty programs.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn sample_intensity(sigma: f64, rng: &mut impl Rng) -> f64 {
    assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
    if sigma == 0.0 {
        return 1.0;
    }
    LogNormal::new(0.0, sigma)
        .expect("valid lognormal")
        .sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn every_family_has_a_profile_with_common_baseline() {
        let vocab = ApiVocab::standard();
        let gpa = vocab.index_of("getprocaddress").unwrap();
        for f in Family::BENIGN.iter().chain(Family::MALWARE.iter()) {
            let p = BehaviorProfile::for_family(*f, &vocab);
            assert_eq!(p.rates().len(), vocab.len());
            assert!(p.rates()[gpa] > 10.0, "{f} lacks the common baseline");
            assert!(p.rates().iter().all(|&r| r >= BACKGROUND_RATE));
        }
    }

    #[test]
    fn injector_signature_distinguishes_it_from_office() {
        let vocab = ApiVocab::standard();
        let injector = BehaviorProfile::for_family(Family::Injector, &vocab);
        let office = BehaviorProfile::for_family(Family::Office, &vocab);
        let wpm = vocab.index_of("writeprocessmemory").unwrap();
        assert!(injector.rates()[wpm] > 5.0);
        assert!(office.rates()[wpm] < 0.1);
    }

    #[test]
    fn unknown_signature_names_are_skipped() {
        // "createpipe" appears in two signatures with rate 0.0 and is not
        // in the vocabulary; profile construction must not panic.
        let vocab = ApiVocab::standard();
        assert!(vocab.index_of("createpipe").is_none());
        let _ = BehaviorProfile::for_family(Family::Backdoor, &vocab);
    }

    #[test]
    fn sampled_counts_track_rates() {
        let vocab = ApiVocab::standard();
        let p = BehaviorProfile::for_family(Family::Ransomware, &vocab);
        let mut rng = rng(1);
        // Average many draws; empirical mean ≈ rate.
        let n = 200;
        let idx = vocab.index_of("cryptencrypt").unwrap();
        let total: u64 = (0..n)
            .map(|_| p.sample_counts(1.0, &mut rng)[idx] as u64)
            .sum();
        let mean = total as f64 / n as f64;
        let rate = p.rates()[idx];
        assert!(
            (mean - rate).abs() < rate * 0.2,
            "empirical mean {mean} too far from rate {rate}"
        );
    }

    #[test]
    fn intensity_scales_expected_counts() {
        let vocab = ApiVocab::standard();
        let p = BehaviorProfile::for_family(Family::Office, &vocab);
        let mut rng = rng(2);
        let total_small: u64 = (0..50)
            .map(|_| {
                p.sample_counts(0.5, &mut rng)
                    .iter()
                    .map(|&c| c as u64)
                    .sum::<u64>()
            })
            .sum();
        let total_big: u64 = (0..50)
            .map(|_| {
                p.sample_counts(2.0, &mut rng)
                    .iter()
                    .map(|&c| c as u64)
                    .sum::<u64>()
            })
            .sum();
        assert!(total_big > total_small * 2);
    }

    #[test]
    fn os_adjustment_adds_rates() {
        let vocab = ApiVocab::standard();
        let mut p = BehaviorProfile::for_family(Family::Office, &vocab);
        let idx = vocab.index_of("gettickcount64").unwrap();
        let before = p.rates()[idx];
        p.apply_os(OsVersion::Win10, &vocab);
        assert!(p.rates()[idx] > before);
    }

    #[test]
    fn blend_moves_rates_toward_other() {
        let vocab = ApiVocab::standard();
        let mut mal = BehaviorProfile::for_family(Family::Injector, &vocab);
        let ben = BehaviorProfile::for_family(Family::Office, &vocab);
        let wpm = vocab.index_of("writeprocessmemory").unwrap();
        let before = mal.rates()[wpm];
        mal.blend_toward(&ben, 0.5);
        assert!(mal.rates()[wpm] < before);
        assert!(mal.rates()[wpm] > ben.rates()[wpm]);
    }

    #[test]
    fn intensity_sampler_median_near_one() {
        let mut rng = rng(3);
        let mut vals: Vec<f64> = (0..1001)
            .map(|_| sample_intensity(0.45, &mut rng))
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[500];
        assert!((median - 1.0).abs() < 0.15, "median {median}");
        assert_eq!(sample_intensity(0.0, &mut rng), 1.0);
    }

    #[test]
    #[should_panic(expected = "intensity must be positive")]
    fn sample_counts_rejects_bad_intensity() {
        let vocab = ApiVocab::standard();
        let p = BehaviorProfile::for_family(Family::Office, &vocab);
        p.sample_counts(0.0, &mut rng(0));
    }
}
