use serde::{Deserialize, Serialize};

use crate::{ApiVocab, Class, Family, OsVersion};

/// A synthetic program sample: per-API call counts plus metadata.
///
/// `Program` plays the role of both the PE sample *and* its source code in
/// the reproduction: the paper's live grey-box test (Section III-B, third
/// experiment) has a researcher "add one single API call multiple times in
/// the source code" — here that edit is [`Program::insert_api_calls`],
/// after which the log re-renders and the detector re-scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    family: Family,
    os: OsVersion,
    counts: Vec<u32>,
    /// True for label-noise samples drawn from a blended profile.
    boundary_case: bool,
}

impl Program {
    /// Creates a program from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn new(family: Family, os: OsVersion, counts: Vec<u32>) -> Self {
        assert!(!counts.is_empty(), "program must have a count vector");
        Program {
            family,
            os,
            counts,
            boundary_case: false,
        }
    }

    /// Marks the program as a boundary case (blended-profile sample).
    pub(crate) fn with_boundary_flag(mut self, flag: bool) -> Self {
        self.boundary_case = flag;
        self
    }

    /// The behavioural family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The ground-truth class (derived from the family).
    pub fn class(&self) -> Class {
        self.family.class()
    }

    /// The OS the log was "captured" on.
    pub fn os(&self) -> OsVersion {
        self.os
    }

    /// Whether this sample was drawn from a blended (boundary) profile.
    pub fn is_boundary_case(&self) -> bool {
        self.boundary_case
    }

    /// Per-API call counts, aligned with the generating vocabulary.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of API call events.
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Number of distinct APIs called at least once.
    pub fn distinct_apis(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Adds `times` calls of the API at `api_index` — the "edit the source
    /// code and rebuild" step of the paper's live grey-box experiment.
    ///
    /// # Panics
    ///
    /// Panics if `api_index` is out of range.
    pub fn insert_api_calls(&mut self, api_index: usize, times: u32) {
        assert!(
            api_index < self.counts.len(),
            "API index {api_index} out of range ({} APIs)",
            self.counts.len()
        );
        self.counts[api_index] = self.counts[api_index].saturating_add(times);
    }

    /// Renders the program's sandbox log (Table II format). See
    /// [`log::render`](crate::log::render).
    pub fn render_log(&self, vocab: &ApiVocab) -> String {
        crate::log::render(self, vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> Program {
        Program::new(Family::Dropper, OsVersion::Win7, vec![0, 3, 1, 0, 2])
    }

    #[test]
    fn metadata_accessors() {
        let p = prog();
        assert_eq!(p.family(), Family::Dropper);
        assert_eq!(p.class(), Class::Malware);
        assert_eq!(p.os(), OsVersion::Win7);
        assert!(!p.is_boundary_case());
    }

    #[test]
    fn count_summaries() {
        let p = prog();
        assert_eq!(p.total_calls(), 6);
        assert_eq!(p.distinct_apis(), 3);
    }

    #[test]
    fn insert_api_calls_adds_and_never_removes() {
        let mut p = prog();
        p.insert_api_calls(0, 5);
        assert_eq!(p.counts()[0], 5);
        p.insert_api_calls(1, 2);
        assert_eq!(p.counts()[1], 5);
        assert_eq!(p.total_calls(), 13);
    }

    #[test]
    fn insert_saturates_instead_of_overflowing() {
        let mut p = Program::new(Family::Office, OsVersion::Win10, vec![u32::MAX]);
        p.insert_api_calls(0, 10);
        assert_eq!(p.counts()[0], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_bad_index() {
        prog().insert_api_calls(99, 1);
    }

    #[test]
    #[should_panic(expected = "must have a count vector")]
    fn rejects_empty_counts() {
        Program::new(Family::Office, OsVersion::Win7, vec![]);
    }
}
