use std::collections::HashMap;

use serde::{Deserialize, Deserializer, Serialize};

/// The number of API features the paper's detector uses.
pub const STANDARD_VOCAB_SIZE: usize = 491;

/// An ordered vocabulary of API names.
///
/// The paper's feature space is 491 API-call counts; Table III shows the
/// vocabulary is lowercase and alphabetically ordered (indices 475–484 are
/// `waitmessage` … `writeprofilestringa`). [`ApiVocab::standard`] rebuilds
/// a 491-name vocabulary with the same shape, containing every API name
/// the paper mentions (including `destroyicon` and `dllsload` from
/// Figure 1).
#[derive(Debug, Clone, Serialize)]
pub struct ApiVocab {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

// Manual Deserialize: the name→index map must be rebuilt (serde's skip
// would leave it empty, silently breaking every `index_of` lookup).
impl<'de> Deserialize<'de> for ApiVocab {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            names: Vec<String>,
        }
        let raw = Raw::deserialize(deserializer)?;
        ApiVocab::from_names(raw.names).map_err(serde::de::Error::custom)
    }
}

impl ApiVocab {
    /// The canonical 491-API vocabulary, alphabetically ordered.
    pub fn standard() -> Self {
        Self::from_names(standard_names()).expect("standard vocabulary is well-formed")
    }

    /// Builds a vocabulary from explicit names.
    ///
    /// Names are lowercased; the order given is preserved (callers wanting
    /// the paper's alphabetical layout should sort first).
    ///
    /// # Errors
    ///
    /// Returns an error message if `names` is empty or contains duplicates
    /// after lowercasing.
    pub fn from_names<I, S>(names: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names
            .into_iter()
            .map(|n| n.into().to_ascii_lowercase())
            .collect();
        if names.is_empty() {
            return Err("vocabulary must not be empty".to_string());
        }
        let mut index = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            if index.insert(n.clone(), i).is_some() {
                return Err(format!("duplicate API name: {n}"));
            }
        }
        Ok(ApiVocab { names, index })
    }

    /// Number of APIs in the vocabulary.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name at `index`, or `None` out of range.
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// The index of `name` (case-insensitive), or `None` if absent.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(&i) = self.index.get(name) {
            return Some(i);
        }
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Iterates over `(index, name)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    /// Borrows all names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A smaller, *different* vocabulary an attacker without feature
    /// knowledge might guess: the `fraction` alphabetically-first share of
    /// the standard names plus that many again of plausible-but-wrong
    /// names. Used by black-box experiments where attacker features differ
    /// from target features.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn attacker_guess(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let std_names = standard_names();
        let keep = ((std_names.len() as f64 * fraction) as usize).max(1);
        let mut names: Vec<String> = std_names.into_iter().take(keep).collect();
        for i in 0..keep {
            names.push(format!("ext_api_{i:03}"));
        }
        names.sort();
        names.dedup();
        Self::from_names(names).expect("attacker vocabulary is well-formed")
    }
}

impl PartialEq for ApiVocab {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

/// API names the paper explicitly shows (Tables II & III, Figure 1).
/// Every one of these must appear in the standard vocabulary.
pub(crate) const PAPER_APIS: &[&str] = &[
    "destroyicon",
    "dllsload",
    "freeenvironmentstringsw",
    "getcpinfo",
    "getfiletype",
    "getmodulehandlew",
    "getprocaddress",
    "getstartupinfow",
    "getstdhandle",
    "waitmessage",
    "windowfromdc",
    "winexec",
    "writeconsolea",
    "writeconsolew",
    "writefile",
    "writeprivateprofilestringa",
    "writeprivateprofilestringw",
    "writeprocessmemory",
    "writeprofilestringa",
];

/// Hand-curated real Win32 API names beyond the paper's own list; the
/// behaviour profiles reference many of these by name.
const CURATED_APIS: &[&str] = &[
    // process / injection
    "createprocessa",
    "createprocessw",
    "openprocess",
    "terminateprocess",
    "createremotethread",
    "virtualalloc",
    "virtualallocex",
    "virtualprotect",
    "virtualfree",
    "readprocessmemory",
    "ntunmapviewofsection",
    "queueuserapc",
    "setthreadcontext",
    "getthreadcontext",
    "suspendthread",
    "resumethread",
    "createthread",
    "exitthread",
    "getcurrentprocess",
    "getcurrentthread",
    "getexitcodeprocess",
    "waitforsingleobject",
    "waitformultipleobjects",
    "openthread",
    "ntqueryinformationprocess",
    "iswow64process",
    // modules / loading
    "loadlibrarya",
    "loadlibraryw",
    "loadlibraryexa",
    "loadlibraryexw",
    "freelibrary",
    "getmodulehandlea",
    "getmodulefilenamea",
    "getmodulefilenamew",
    "ldrloaddll",
    "getprocessheap",
    "heapalloc",
    "heapfree",
    "heapcreate",
    "heapdestroy",
    "heaprealloc",
    "heapsize",
    "localalloc",
    "localfree",
    "globalalloc",
    "globalfree",
    "globallock",
    "globalunlock",
    // files
    "createfilea",
    "createfilew",
    "readfile",
    "writefileex",
    "deletefilea",
    "deletefilew",
    "copyfilea",
    "copyfilew",
    "movefilea",
    "movefilew",
    "movefileexa",
    "movefileexw",
    "getfilesize",
    "getfilesizeex",
    "setfilepointer",
    "setfilepointerex",
    "setendoffile",
    "flushfilebuffers",
    "findfirstfilea",
    "findfirstfilew",
    "findnextfilea",
    "findnextfilew",
    "findclose",
    "getfileattributesa",
    "getfileattributesw",
    "setfileattributesa",
    "setfileattributesw",
    "gettempfilenamea",
    "gettempfilenamew",
    "gettemppatha",
    "gettemppathw",
    "createdirectorya",
    "createdirectoryw",
    "removedirectorya",
    "removedirectoryw",
    "getcurrentdirectorya",
    "getcurrentdirectoryw",
    "setcurrentdirectorya",
    "setcurrentdirectoryw",
    "getfullpathnamea",
    "getfullpathnamew",
    "getlongpathnamea",
    "getlongpathnamew",
    "getshortpathnamea",
    "getdrivetypea",
    "getdrivetypew",
    "getlogicaldrives",
    "getdiskfreespacea",
    "getdiskfreespaceexa",
    "lockfile",
    "unlockfile",
    "createfilemappinga",
    "createfilemappingw",
    "mapviewoffile",
    "unmapviewoffile",
    "openfilemappinga",
    // registry
    "regopenkeya",
    "regopenkeyw",
    "regopenkeyexa",
    "regopenkeyexw",
    "regcreatekeya",
    "regcreatekeyw",
    "regcreatekeyexa",
    "regcreatekeyexw",
    "regclosekey",
    "regqueryvaluea",
    "regqueryvaluew",
    "regqueryvalueexa",
    "regqueryvalueexw",
    "regsetvaluea",
    "regsetvaluew",
    "regsetvalueexa",
    "regsetvalueexw",
    "regdeletekeya",
    "regdeletekeyw",
    "regdeletevaluea",
    "regdeletevaluew",
    "regenumkeya",
    "regenumkeyw",
    "regenumkeyexa",
    "regenumkeyexw",
    "regenumvaluea",
    "regenumvaluew",
    "regflushkey",
    // network
    "socket",
    "connect",
    "bind",
    "listen",
    "accept",
    "send",
    "recv",
    "sendto",
    "recvfrom",
    "closesocket",
    "gethostbyname",
    "gethostname",
    "getaddrinfo",
    "inet_addr",
    "inet_ntoa",
    "htons",
    "ntohs",
    "wsastartup",
    "wsacleanup",
    "wsasocketa",
    "wsasocketw",
    "wsaconnect",
    "wsasend",
    "wsarecv",
    "internetopena",
    "internetopenw",
    "internetopenurla",
    "internetopenurlw",
    "internetconnecta",
    "internetconnectw",
    "internetreadfile",
    "internetwritefile",
    "internetclosehandle",
    "httpopenrequesta",
    "httpopenrequestw",
    "httpsendrequesta",
    "httpsendrequestw",
    "urldownloadtofilea",
    "urldownloadtofilew",
    "winhttpopen",
    "winhttpconnect",
    "winhttpsendrequest",
    "winhttpreceiveresponse",
    "winhttpreaddata",
    "winhttpclosehandle",
    // crypto
    "cryptacquirecontexta",
    "cryptacquirecontextw",
    "cryptreleasecontext",
    "cryptcreatehash",
    "crypthashdata",
    "cryptdestroyhash",
    "cryptgenkey",
    "cryptderivekey",
    "cryptdestroykey",
    "cryptencrypt",
    "cryptdecrypt",
    "cryptgenrandom",
    "cryptimportkey",
    "cryptexportkey",
    // ui / window
    "createwindowexa",
    "createwindowexw",
    "destroywindow",
    "showwindow",
    "updatewindow",
    "findwindowa",
    "findwindoww",
    "findwindowexa",
    "getforegroundwindow",
    "setforegroundwindow",
    "getwindowtexta",
    "getwindowtextw",
    "setwindowtexta",
    "setwindowtextw",
    "getwindowrect",
    "getclientrect",
    "getdc",
    "releasedc",
    "begingpaint",
    "endpaint",
    "messageboxa",
    "messageboxw",
    "defwindowproca",
    "defwindowprocw",
    "registerclassa",
    "registerclassw",
    "registerclassexa",
    "registerclassexw",
    "postmessagea",
    "postmessagew",
    "sendmessagea",
    "sendmessagew",
    "getmessagea",
    "getmessagew",
    "peekmessagea",
    "peekmessagew",
    "translatemessage",
    "dispatchmessagea",
    "dispatchmessagew",
    "postquitmessage",
    "loadicona",
    "loadiconw",
    "loadcursora",
    "loadcursorw",
    "loadimagea",
    "loadimagew",
    "loadbitmapa",
    "loadbitmapw",
    "createicon",
    "drawicon",
    "drawiconex",
    "destroycursor",
    "setcursor",
    "getcursorpos",
    "setcursorpos",
    "showcursor",
    "clipcursor",
    // hooks / input capture (keylogger signatures)
    "setwindowshookexa",
    "setwindowshookexw",
    "unhookwindowshookex",
    "callnexthookex",
    "getasynckeystate",
    "getkeystate",
    "getkeyboardstate",
    "mapvirtualkeya",
    "mapvirtualkeyw",
    "keybd_event",
    "mouse_event",
    "attachthreadinput",
    "getrawinputdata",
    "registerrawinputdevices",
    // services
    "openscmanagera",
    "openscmanagerw",
    "openservicea",
    "openservicew",
    "createservicea",
    "createservicew",
    "startservicea",
    "startservicew",
    "controlservice",
    "deleteservice",
    "closeservicehandle",
    "queryserviceconfiga",
    "queryservicestatus",
    "changeserviceconfiga",
    // tokens / privileges
    "openprocesstoken",
    "openthreadtoken",
    "adjusttokenprivileges",
    "lookupprivilegevaluea",
    "lookupprivilegevaluew",
    "gettokeninformation",
    "duplicatetoken",
    "duplicatetokenex",
    "impersonateloggedonuser",
    "reverttoself",
    "logonusera",
    "logonuserw",
    "createprocessasusera",
    // system info
    "getsysteminfo",
    "getnativesysteminfo",
    "getversion",
    "getversionexa",
    "getversionexw",
    "getcomputernamea",
    "getcomputernamew",
    "getusernamea",
    "getusernamew",
    "getsystemdirectorya",
    "getsystemdirectoryw",
    "getwindowsdirectorya",
    "getwindowsdirectoryw",
    "getsystemtime",
    "getlocaltime",
    "getsystemtimeasfiletime",
    "gettickcount",
    "gettickcount64",
    "queryperformancecounter",
    "queryperformancefrequency",
    "getsystemmetrics",
    "globalmemorystatus",
    "globalmemorystatusex",
    "getenvironmentvariablea",
    "getenvironmentvariablew",
    "setenvironmentvariablea",
    "setenvironmentvariablew",
    "getenvironmentstrings",
    "getenvironmentstringsw",
    "expandenvironmentstringsa",
    "expandenvironmentstringsw",
    "getcommandlinea",
    "getcommandlinew",
    "getstartupinfoa",
    // processes enumeration / debugging (evasion signatures)
    "createtoolhelp32snapshot",
    "process32first",
    "process32next",
    "module32first",
    "module32next",
    "thread32first",
    "thread32next",
    "enumprocesses",
    "enumprocessmodules",
    "getmodulebasenamea",
    "isdebuggerpresent",
    "checkremotedebuggerpresent",
    "outputdebugstringa",
    "outputdebugstringw",
    "debugactiveprocess",
    "debugbreak",
    "setunhandledexceptionfilter",
    "unhandledexceptionfilter",
    // shell
    "shellexecutea",
    "shellexecutew",
    "shellexecuteexa",
    "shellexecuteexw",
    "shgetfolderpatha",
    "shgetfolderpathw",
    "shgetspecialfolderpatha",
    "shfileoperationa",
    "shfileoperationw",
    "shgetknownfolderpath",
    // string / locale
    "lstrlena",
    "lstrlenw",
    "lstrcpya",
    "lstrcpyw",
    "lstrcata",
    "lstrcatw",
    "lstrcmpa",
    "lstrcmpw",
    "lstrcmpia",
    "lstrcmpiw",
    "multibytetowidechar",
    "widechartomultibyte",
    "comparestringa",
    "comparestringw",
    "getlocaleinfoa",
    "getlocaleinfow",
    "getacp",
    "getoemcp",
    "getuserdefaultlcid",
    "getsystemdefaultlangid",
    "charuppera",
    "charupperw",
    "charlowera",
    "charlowerw",
    "isvalidcodepage",
    "getstringtypea",
    "getstringtypew",
    "foldstringa",
    "foldstringw",
    // console / std
    "allocconsole",
    "freeconsole",
    "getconsolewindow",
    "setconsoletitlea",
    "setconsoletitlew",
    "readconsolea",
    "readconsolew",
    "getconsolemode",
    "setconsolemode",
    "setstdhandle",
    "getconsolecp",
    "getconsoleoutputcp",
    // time / sync
    "sleep",
    "sleepex",
    "createeventa",
    "createeventw",
    "setevent",
    "resetevent",
    "createmutexa",
    "createmutexw",
    "releasemutex",
    "opensemaphorea",
    "createsemaphorea",
    "createsemaphorew",
    "releasesemaphore",
    "entercriticalsection",
    "leavecriticalsection",
    "initializecriticalsection",
    "deletecriticalsection",
    "createwaitabletimera",
    "setwaitabletimer",
    "cancelwaitabletimer",
    "settimer",
    "killtimer",
    "timegettime",
    "getmessagetime",
    // misc runtime (Table II common calls)
    "flsalloc",
    "flsfree",
    "flsgetvalue",
    "flssetvalue",
    "tlsalloc",
    "tlsfree",
    "tlsgetvalue",
    "tlssetvalue",
    "getlasterror",
    "setlasterror",
    "raiseexception",
    "rtlunwind",
    "interlockedincrement",
    "interlockeddecrement",
    "interlockedexchange",
    "interlockedcompareexchange",
    "exitprocess",
    "fatalappexita",
    "fatalappexitw",
    "freeenvironmentstringsa",
    "getcpinfoexa",
    "getcpinfoexw",
    // clipboard / misc ui
    "openclipboard",
    "closeclipboard",
    "getclipboarddata",
    "setclipboarddata",
    "emptyclipboard",
    "isclipboardformatavailable",
    "registerclipboardformata",
    // gdi
    "bitblt",
    "stretchblt",
    "createcompatibledc",
    "createcompatiblebitmap",
    "selectobject",
    "deleteobject",
    "deletedc",
    "getdibits",
    "setdibits",
    "getpixel",
    "setpixel",
    "textouta",
    "textoutw",
    "settextcolor",
    "setbkcolor",
    "createfonta",
    "createfontw",
    "createfontindirecta",
    "getstockobject",
    "createsolidbrush",
    "createpen",
    "rectangle",
    "ellipse",
    "polygon",
    "polyline",
    "lineto",
    "moveto",
    "movetoex",
    // profile strings (paper's w-block neighbourhood)
    "getprivateprofilestringa",
    "getprivateprofilestringw",
    "getprivateprofileinta",
    "getprivateprofileintw",
    "getprofilestringa",
    "getprofilestringw",
    "getprofileinta",
    "getprofileintw",
    "writeprivateprofilesectiona",
    "writeprivateprofilesectionw",
    // ole / com
    "coinitialize",
    "coinitializeex",
    "couninitialize",
    "cocreateinstance",
    "cocreateguid",
    "cotaskmemalloc",
    "cotaskmemfree",
    "olerun",
    "variantinit",
    "variantclear",
    "sysallocstring",
    "sysfreestring",
    // verification / resources
    "getfileversioninfoa",
    "getfileversioninfow",
    "getfileversioninfosizea",
    "verqueryvaluea",
    "verqueryvaluew",
    "findresourcea",
    "findresourcew",
    "loadresource",
    "lockresource",
    "sizeofresource",
    "freeresource",
    "enumresourcetypesa",
    "enumresourcenamesa",
    "updateresourcea",
    "beginupdateresourcea",
    "endupdateresourcea",
];

/// Builds the canonical 491-name vocabulary: paper names + curated names,
/// deduplicated, padded deterministically if short, truncated from the
/// middle (never dropping paper names) if long, then sorted.
pub(crate) fn standard_names() -> Vec<String> {
    let mut names: Vec<String> = PAPER_APIS
        .iter()
        .chain(CURATED_APIS.iter())
        .map(|s| s.to_string())
        .collect();
    names.sort();
    names.dedup();

    use std::collections::HashSet;
    let must_keep: HashSet<&str> = PAPER_APIS.iter().copied().collect();

    // Pad with plausible synthetic names if the curated list is short.
    let mut pad = 0usize;
    while names.len() < STANDARD_VOCAB_SIZE {
        let candidate = format!("ntquerysysteminformation{pad:02}");
        if !names.contains(&candidate) {
            names.push(candidate);
        }
        pad += 1;
    }
    // Trim evenly from non-paper names if the curated list is long.
    while names.len() > STANDARD_VOCAB_SIZE {
        let excess = names.len() - STANDARD_VOCAB_SIZE;
        let step = (names.len() / excess).max(1);
        let mut removed = false;
        let mut i = step / 2;
        while i < names.len() && names.len() > STANDARD_VOCAB_SIZE {
            if !must_keep.contains(names[i].as_str()) {
                names.remove(i);
                removed = true;
            }
            i += step;
        }
        if !removed {
            // Degenerate fallback: remove the first removable name.
            if let Some(pos) = names.iter().position(|n| !must_keep.contains(n.as_str())) {
                names.remove(pos);
            } else {
                break;
            }
        }
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_exactly_491_names() {
        let v = ApiVocab::standard();
        assert_eq!(v.len(), STANDARD_VOCAB_SIZE);
    }

    #[test]
    fn standard_contains_every_paper_api() {
        let v = ApiVocab::standard();
        for api in PAPER_APIS {
            assert!(
                v.index_of(api).is_some(),
                "paper API {api} missing from standard vocabulary"
            );
        }
    }

    #[test]
    fn standard_is_sorted_and_unique() {
        let v = ApiVocab::standard();
        for w in v.names().windows(2) {
            assert!(w[0] < w[1], "not strictly sorted: {} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn paper_w_apis_cluster_near_the_end() {
        // Table III shows the w-block at indices 475-484; alphabetical
        // ordering must put writeprocessmemory et al. in the final stretch.
        let v = ApiVocab::standard();
        let idx = v.index_of("writeprocessmemory").unwrap();
        assert!(idx > v.len() * 9 / 10, "index {idx} not near the end");
    }

    #[test]
    fn index_round_trips() {
        let v = ApiVocab::standard();
        for (i, name) in v.iter() {
            assert_eq!(v.index_of(name), Some(i));
            assert_eq!(v.name(i), Some(name));
        }
        assert_eq!(v.name(v.len()), None);
        assert_eq!(v.index_of("definitely_not_an_api"), None);
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let v = ApiVocab::standard();
        assert_eq!(v.index_of("GetProcAddress"), v.index_of("getprocaddress"));
    }

    #[test]
    fn from_names_rejects_duplicates_and_empty() {
        assert!(ApiVocab::from_names(Vec::<String>::new()).is_err());
        assert!(ApiVocab::from_names(vec!["a", "A"]).is_err());
        assert!(ApiVocab::from_names(vec!["a", "b"]).is_ok());
    }

    #[test]
    fn standard_is_deterministic() {
        assert_eq!(ApiVocab::standard(), ApiVocab::standard());
    }

    #[test]
    fn attacker_guess_differs_from_standard() {
        let guess = ApiVocab::attacker_guess(0.5);
        let std_v = ApiVocab::standard();
        assert_ne!(guess, std_v);
        // Some overlap exists (shared alphabetic prefix of real names).
        let overlap = guess
            .names()
            .iter()
            .filter(|n| std_v.index_of(n).is_some())
            .count();
        assert!(overlap > 0);
        // And some fabricated names do not exist in the real vocabulary.
        assert!(guess.index_of("ext_api_000").is_some());
        assert!(std_v.index_of("ext_api_000").is_none());
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn attacker_guess_rejects_bad_fraction() {
        ApiVocab::attacker_guess(0.0);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn deserialized_vocab_has_working_index() {
        let v = ApiVocab::standard();
        let json = serde_json::to_string(&v).unwrap();
        let back: ApiVocab = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        // The regression this guards: index must be rebuilt, not empty.
        assert_eq!(
            back.index_of("getprocaddress"),
            v.index_of("getprocaddress")
        );
        assert!(back.index_of("getprocaddress").is_some());
    }

    #[test]
    fn deserialization_rejects_duplicate_names() {
        let json = r#"{"names": ["a", "a"]}"#;
        assert!(serde_json::from_str::<ApiVocab>(json).is_err());
    }
}
