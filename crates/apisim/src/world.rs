use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::profile::{sample_intensity, BehaviorProfile};
use crate::{ApiVocab, Class, Dataset, DatasetSpec, Family, OsVersion, Program};

/// Configuration of the synthetic world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Fraction of samples drawn from a blended (boundary) profile. These
    /// keep the detector below 100% accuracy, as in the paper (baseline
    /// TPR 0.883 / TNR 0.964, Table VI).
    pub boundary_fraction: f64,
    /// How far boundary samples blend toward the opposite class, in
    /// `[0, 1]`.
    pub boundary_blend: f64,
    /// Log-normal σ of the program-size factor.
    pub intensity_sigma: f64,
    /// Probability weights of each OS version (XP, 7, 8, 10), normalized
    /// internally.
    pub os_mix: [f64; 4],
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            boundary_fraction: 0.12,
            boundary_blend: 0.75,
            intensity_sigma: 0.45,
            os_mix: [0.1, 0.45, 0.15, 0.3],
        }
    }
}

impl WorldConfig {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.boundary_fraction),
            "boundary_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.boundary_blend),
            "boundary_blend must be in [0, 1]"
        );
        assert!(
            self.intensity_sigma >= 0.0 && self.intensity_sigma.is_finite(),
            "intensity_sigma must be >= 0"
        );
        assert!(
            self.os_mix.iter().all(|&w| w >= 0.0) && self.os_mix.iter().sum::<f64>() > 0.0,
            "os_mix must be non-negative and not all zero"
        );
    }
}

/// The seeded generator of synthetic programs.
///
/// A `World` owns the vocabulary and one [`BehaviorProfile`] per family
/// (per OS). The same `World` value always generates the same data given
/// the same RNG seed.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    vocab: ApiVocab,
    /// Profiles indexed by (family, os); os-adjusted at construction.
    profiles: Vec<((Family, OsVersion), BehaviorProfile)>,
}

impl World {
    /// Builds a world over the standard 491-API vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see field docs).
    pub fn new(config: WorldConfig) -> Self {
        Self::with_vocab(config, ApiVocab::standard())
    }

    /// Builds a world over a custom vocabulary (used by the black-box
    /// framework, where the attacker's feature space differs).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn with_vocab(config: WorldConfig, vocab: ApiVocab) -> Self {
        config.validate();
        let mut profiles = Vec::new();
        for family in Family::BENIGN.iter().chain(Family::MALWARE.iter()) {
            for os in OsVersion::ALL {
                let mut p = BehaviorProfile::for_family(*family, &vocab);
                p.apply_os(os, &vocab);
                profiles.push(((*family, os), p));
            }
        }
        World {
            config,
            vocab,
            profiles,
        }
    }

    /// The vocabulary programs are generated against.
    pub fn vocab(&self) -> &ApiVocab {
        &self.vocab
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    fn profile(&self, family: Family, os: OsVersion) -> &BehaviorProfile {
        self.profiles
            .iter()
            .find(|((f, o), _)| *f == family && *o == os)
            .map(|(_, p)| p)
            .expect("all (family, os) profiles are built in new()")
    }

    fn sample_os(&self, rng: &mut impl Rng) -> OsVersion {
        let total: f64 = self.config.os_mix.iter().sum();
        let mut draw = rng.gen::<f64>() * total;
        for (os, &w) in OsVersion::ALL.iter().zip(self.config.os_mix.iter()) {
            if draw < w {
                return *os;
            }
            draw -= w;
        }
        OsVersion::Win10
    }

    /// Samples one program of the given class (random family of that
    /// class, random OS, with the configured boundary-case probability).
    pub fn sample_program(&self, class: Class, rng: &mut impl Rng) -> Program {
        let families = Family::of_class(class);
        let family = families[rng.gen_range(0..families.len())];
        self.sample_program_of(family, rng)
    }

    /// Samples one program of a specific family.
    pub fn sample_program_of(&self, family: Family, rng: &mut impl Rng) -> Program {
        let os = self.sample_os(rng);
        let boundary = rng.gen::<f64>() < self.config.boundary_fraction;
        let intensity = sample_intensity(self.config.intensity_sigma, rng);
        let counts = if boundary {
            // Blend toward a random family of the opposite class.
            let opposite = match family.class() {
                Class::Clean => Class::Malware,
                Class::Malware => Class::Clean,
            };
            let others = Family::of_class(opposite);
            let other = others[rng.gen_range(0..others.len())];
            let mut p = self.profile(family, os).clone();
            p.blend_toward(self.profile(other, os), self.config.boundary_blend);
            p.sample_counts(intensity, rng)
        } else {
            self.profile(family, os).sample_counts(intensity, rng)
        };
        Program::new(family, os, counts).with_boundary_flag(boundary)
    }

    /// Samples `n_clean + n_malware` programs, clean first.
    pub fn sample_batch(
        &self,
        n_clean: usize,
        n_malware: usize,
        rng: &mut impl Rng,
    ) -> Vec<Program> {
        let mut out = Vec::with_capacity(n_clean + n_malware);
        for _ in 0..n_clean {
            out.push(self.sample_program(Class::Clean, rng));
        }
        for _ in 0..n_malware {
            out.push(self.sample_program(Class::Malware, rng));
        }
        out
    }

    /// Builds a full train/validation/test dataset per `spec`, with each
    /// split drawn from an independent RNG stream (the paper's test set
    /// comes from a source independent of training).
    pub fn build_dataset(&self, spec: &DatasetSpec, seed: u64) -> Dataset {
        let mut train_rng = crate::rng(seed.wrapping_mul(3).wrapping_add(1));
        let mut val_rng = crate::rng(seed.wrapping_mul(3).wrapping_add(2));
        let mut test_rng = crate::rng(seed.wrapping_mul(3).wrapping_add(3));
        Dataset::new(
            self.sample_batch(spec.train_clean, spec.train_malware, &mut train_rng),
            self.sample_batch(spec.val_clean, spec.val_malware, &mut val_rng),
            self.sample_batch(spec.test_clean, spec.test_malware, &mut test_rng),
        )
    }
}

impl Default for World {
    fn default() -> Self {
        World::new(WorldConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let world = World::default();
        let a = world.sample_program(Class::Malware, &mut rng(7));
        let b = world.sample_program(Class::Malware, &mut rng(7));
        assert_eq!(a, b);
        let c = world.sample_program(Class::Malware, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_class_matches_request() {
        let world = World::default();
        let mut r = rng(1);
        for _ in 0..20 {
            assert_eq!(
                world.sample_program(Class::Clean, &mut r).class(),
                Class::Clean
            );
            assert_eq!(
                world.sample_program(Class::Malware, &mut r).class(),
                Class::Malware
            );
        }
    }

    #[test]
    fn counts_have_vocab_length_and_plausible_mass() {
        let world = World::default();
        let p = world.sample_program(Class::Clean, &mut rng(2));
        assert_eq!(p.counts().len(), world.vocab().len());
        assert!(p.total_calls() > 20, "program suspiciously quiet");
        assert!(p.distinct_apis() > 10);
    }

    #[test]
    fn classes_are_separable_on_signature_apis() {
        let world = World::default();
        let mut r = rng(3);
        let v = world.vocab();
        let wpm = v.index_of("writeprocessmemory").unwrap();
        let mal_total: u64 = (0..60)
            .map(|_| world.sample_program_of(Family::Injector, &mut r).counts()[wpm] as u64)
            .sum();
        let clean_total: u64 = (0..60)
            .map(|_| world.sample_program(Class::Clean, &mut r).counts()[wpm] as u64)
            .sum();
        assert!(
            mal_total > clean_total * 3,
            "mal {mal_total} clean {clean_total}"
        );
    }

    #[test]
    fn boundary_fraction_controls_boundary_cases() {
        let config = WorldConfig {
            boundary_fraction: 0.0,
            ..Default::default()
        };
        let world = World::new(config);
        let mut r = rng(4);
        assert!((0..50).all(|_| !world
            .sample_program(Class::Clean, &mut r)
            .is_boundary_case()));

        let config = WorldConfig {
            boundary_fraction: 1.0,
            ..Default::default()
        };
        let world = World::new(config);
        let mut r = rng(4);
        assert!((0..50).all(|_| world
            .sample_program(Class::Clean, &mut r)
            .is_boundary_case()));
    }

    #[test]
    fn os_mix_respected_in_the_extreme() {
        let config = WorldConfig {
            os_mix: [0.0, 0.0, 0.0, 1.0],
            ..Default::default()
        };
        let world = World::new(config);
        let mut r = rng(5);
        for _ in 0..20 {
            assert_eq!(
                world.sample_program(Class::Clean, &mut r).os(),
                OsVersion::Win10
            );
        }
    }

    #[test]
    fn batch_layout_is_clean_then_malware() {
        let world = World::default();
        let batch = world.sample_batch(3, 2, &mut rng(6));
        assert_eq!(batch.len(), 5);
        assert!(batch[..3].iter().all(|p| p.class() == Class::Clean));
        assert!(batch[3..].iter().all(|p| p.class() == Class::Malware));
    }

    #[test]
    #[should_panic(expected = "boundary_fraction")]
    fn invalid_config_panics() {
        let config = WorldConfig {
            boundary_fraction: 1.5,
            ..Default::default()
        };
        World::new(config);
    }
}
