//! Property-based tests for the synthetic API world: log round-trips,
//! program-edit semantics, vocabulary laws, and generation determinism.

use maleva_apisim::{ApiVocab, Class, Family, OsVersion, Program, World, WorldConfig};
use proptest::prelude::*;

fn vocab() -> ApiVocab {
    ApiVocab::standard()
}

/// Strategy: a sparse count vector over the standard vocabulary.
fn sparse_counts() -> impl Strategy<Value = Vec<(usize, u32)>> {
    prop::collection::vec((0usize..491, 1u32..50), 0..20)
}

fn program_from(sparse: &[(usize, u32)]) -> Program {
    let mut counts = vec![0u32; 491];
    for &(i, c) in sparse {
        counts[i] = counts[i].saturating_add(c);
    }
    Program::new(Family::Dropper, OsVersion::Win7, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_round_trips_any_counts(sparse in sparse_counts()) {
        let v = vocab();
        let p = program_from(&sparse);
        let text = p.render_log(&v);
        let parsed = maleva_apisim::log::parse_counts(&text, &v);
        prop_assert_eq!(&parsed, p.counts());
    }

    #[test]
    fn log_line_count_equals_total_calls(sparse in sparse_counts()) {
        let v = vocab();
        let p = program_from(&sparse);
        let text = p.render_log(&v);
        prop_assert_eq!(text.lines().count() as u64, p.total_calls());
    }

    #[test]
    fn insert_api_calls_is_additive(sparse in sparse_counts(),
                                    api in 0usize..491,
                                    a in 1u32..20, b in 1u32..20) {
        let mut once = program_from(&sparse);
        once.insert_api_calls(api, a + b);
        let mut twice = program_from(&sparse);
        twice.insert_api_calls(api, a);
        twice.insert_api_calls(api, b);
        prop_assert_eq!(once.counts(), twice.counts());
    }

    #[test]
    fn insert_never_decreases_any_count(sparse in sparse_counts(),
                                        api in 0usize..491,
                                        n in 1u32..30) {
        let before = program_from(&sparse);
        let mut after = before.clone();
        after.insert_api_calls(api, n);
        for (b, a) in before.counts().iter().zip(after.counts().iter()) {
            prop_assert!(a >= b);
        }
        prop_assert_eq!(after.total_calls(), before.total_calls() + n as u64);
    }

    #[test]
    fn parser_ignores_arbitrary_garbage_lines(garbage in "[a-z0-9 ]{0,40}") {
        let v = vocab();
        // Garbage without a colon is tallied as malformed (unless blank)
        // and parses to nothing — never panics, never miscounts known
        // APIs.
        let parse = maleva_apisim::log::parse_counts_with_unknown(&garbage, &v);
        prop_assert!(parse.counts.iter().all(|&c| c == 0) || garbage.contains(':'));
        let blank = garbage.trim().is_empty();
        prop_assert_eq!(parse.malformed > 0, !blank);
    }

    #[test]
    fn sampling_is_deterministic(seed in 0u64..10_000) {
        let world = World::new(WorldConfig::default());
        let a = world.sample_program(Class::Malware, &mut maleva_apisim::rng(seed));
        let b = world.sample_program(Class::Malware, &mut maleva_apisim::rng(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sampled_programs_are_wellformed(seed in 0u64..5_000) {
        let world = World::new(WorldConfig::default());
        let mut rng = maleva_apisim::rng(seed);
        for class in [Class::Clean, Class::Malware] {
            let p = world.sample_program(class, &mut rng);
            prop_assert_eq!(p.class(), class);
            prop_assert_eq!(p.counts().len(), 491);
            prop_assert!(p.total_calls() > 0, "empty program");
        }
    }

    #[test]
    fn vocab_indices_bijective(idx in 0usize..491) {
        let v = vocab();
        let name = v.name(idx).expect("in range").to_string();
        prop_assert_eq!(v.index_of(&name), Some(idx));
        prop_assert_eq!(v.index_of(&name.to_ascii_uppercase()), Some(idx));
    }
}
