use serde::{Deserialize, Serialize};

use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, EvasionAttack, Jsma};

/// A **squeeze-aware** JSMA: the adaptive attacker of the paper's
/// conclusion ("It is an open challenge to design a defense against a
/// powerful adaptive attack").
///
/// Feature squeezing with a low-mass trim (see
/// `maleva_defense::Squeezer::TrimLow`) erases adversarial feature
/// additions smaller than its threshold, so the model's prediction
/// "snaps back" and the L1 gap flags the sample. An attacker who *knows*
/// the squeezer simply plants perturbations **above** the trim
/// threshold: the squeezed input then equals the raw input on every
/// perturbed feature, the prediction gap vanishes, and the detector goes
/// blind — while the classifier itself is still evaded.
///
/// Implementation: run standard JSMA with an effective per-feature step
/// of `max(θ, trim_threshold + margin)` by post-processing each chosen
/// feature up to the survival level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqueezeAwareJsma {
    /// The underlying JSMA configuration.
    pub inner: Jsma,
    /// The squeezer's trim threshold the attacker must clear.
    pub trim_threshold: f64,
    /// Safety margin above the threshold.
    pub margin: f64,
}

impl SqueezeAwareJsma {
    /// Wraps a JSMA so every planted perturbation survives a `TrimLow`
    /// squeezer with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `trim_threshold` is not in `[0, 1]` or `margin` is
    /// negative.
    pub fn new(inner: Jsma, trim_threshold: f64, margin: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&trim_threshold),
            "trim threshold must be in [0, 1], got {trim_threshold}"
        );
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        SqueezeAwareJsma {
            inner,
            trim_threshold,
            margin,
        }
    }

    /// The per-feature value floor a perturbed feature is raised to.
    pub fn survival_level(&self) -> f64 {
        (self.trim_threshold + self.margin).min(1.0)
    }
}

impl EvasionAttack for SqueezeAwareJsma {
    fn name(&self) -> &str {
        "jsma-squeeze-aware"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        let base = self.inner.craft(net, sample)?;
        let level = self.survival_level();
        let mut adversarial = base.adversarial.clone();
        for &j in &base.perturbed_features {
            // Raise every planted feature above the trim threshold so the
            // squeezer cannot erase it. (Add-only is preserved: we only
            // ever raise.)
            if adversarial[j] < level {
                adversarial[j] = level;
            }
        }
        let evaded =
            net.predict(&maleva_linalg::Matrix::row_vector(&adversarial))?[0] == crate::CLEAN_CLASS;
        Ok(AttackOutcome::new(
            sample,
            adversarial,
            base.perturbed_features,
            evaded,
            base.iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_detector;

    #[test]
    fn perturbed_features_clear_the_trim_threshold() {
        let (net, mal, _) = trained_detector(12, 80);
        let attack = SqueezeAwareJsma::new(Jsma::new(0.1, 0.5), 0.3, 0.01);
        for r in 0..mal.rows().min(8) {
            let o = attack.craft(&net, mal.row(r)).unwrap();
            for &j in &o.perturbed_features {
                assert!(
                    o.adversarial[j] >= 0.31 - 1e-12,
                    "feature {j} at {} would be trimmed",
                    o.adversarial[j]
                );
            }
        }
    }

    #[test]
    fn still_addonly_and_in_box() {
        let (net, mal, _) = trained_detector(12, 81);
        let attack = SqueezeAwareJsma::new(Jsma::new(0.2, 0.5), 0.4, 0.05);
        use crate::EvasionAttack as _;
        let (adv, _) = attack.craft_batch(&net, &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
        for r in 0..mal.rows() {
            for (o, a) in mal.row(r).iter().zip(adv.row(r).iter()) {
                assert!(a + 1e-12 >= *o);
            }
        }
    }

    #[test]
    fn survival_level_saturates_at_one() {
        let attack = SqueezeAwareJsma::new(Jsma::new(0.1, 0.1), 0.99, 0.5);
        assert_eq!(attack.survival_level(), 1.0);
    }

    #[test]
    #[should_panic(expected = "trim threshold must be in [0, 1]")]
    fn rejects_bad_threshold() {
        SqueezeAwareJsma::new(Jsma::new(0.1, 0.1), 1.5, 0.0);
    }
}
