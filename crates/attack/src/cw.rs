use serde::{Deserialize, Serialize};

use maleva_linalg::{norm, Matrix};
use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, EvasionAttack, CLEAN_CLASS, MALWARE_CLASS};

/// A Carlini–Wagner-style targeted L2 attack (the paper cites C&W as
/// "one of the strongest attacks"), adapted to the malware feature box.
///
/// Minimizes `‖δ‖₂² + c · f(x + δ)` by projected gradient descent, where
/// `f` is the logit-margin loss
/// `f(x) = max(Z_malware(x) − Z_clean(x), −κ)` — zero once the sample is
/// classified clean with margin `κ`, so the optimizer then spends its
/// remaining steps *shrinking* the perturbation. Projection enforces the
/// `[0, 1]` box and (optionally) the add-only constraint after every
/// step.
///
/// Unlike JSMA this perturbs densely — it is the minimal-L2 end of the
/// attack spectrum, where JSMA is the minimal-L0 end; comparing the two
/// is exactly the paper's motivation for picking JSMA ("minimum number
/// of features").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarliniWagnerL2 {
    /// Trade-off constant between perturbation size and attack loss.
    pub c: f64,
    /// Confidence margin κ: the attack pushes until
    /// `Z_clean − Z_malware ≥ κ`.
    pub kappa: f64,
    /// Gradient-descent steps.
    pub steps: usize,
    /// Step size.
    pub lr: f64,
    /// Enforce the malware-domain add-only constraint.
    pub add_only: bool,
}

impl CarliniWagnerL2 {
    /// Creates the attack with the given trade-off constant and default
    /// κ = 0, 100 steps, lr = 0.05, add-only enabled.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive and finite.
    pub fn new(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "c must be positive and finite, got {c}"
        );
        CarliniWagnerL2 {
            c,
            kappa: 0.0,
            steps: 100,
            lr: 0.05,
            add_only: true,
        }
    }

    /// Sets the confidence margin κ (high-confidence adversarial
    /// examples transfer better).
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is negative.
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        assert!(kappa >= 0.0, "kappa must be non-negative, got {kappa}");
        self.kappa = kappa;
        self
    }

    /// Sets the optimization budget.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `lr <= 0`.
    pub fn with_budget(mut self, steps: usize, lr: f64) -> Self {
        assert!(steps > 0, "steps must be positive");
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.steps = steps;
        self.lr = lr;
        self
    }

    /// Enables or disables the add-only constraint.
    pub fn with_add_only(mut self, add_only: bool) -> Self {
        self.add_only = add_only;
        self
    }
}

impl EvasionAttack for CarliniWagnerL2 {
    fn name(&self) -> &str {
        "cw-l2"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        if sample.len() != net.input_dim() {
            return Err(NnError::InputShape {
                expected: net.input_dim(),
                actual: sample.len(),
            });
        }
        let mut x = sample.to_vec();
        let mut best: Option<Vec<f64>> = None;
        let mut best_l2 = f64::INFINITY;
        let mut iterations = 0usize;

        for _ in 0..self.steps {
            iterations += 1;
            let xm = Matrix::row_vector(&x);
            let z = net.logits(&xm)?;
            let margin = z.get(0, MALWARE_CLASS) - z.get(0, CLEAN_CLASS);

            if margin <= -self.kappa {
                // Successful with requested confidence: remember the
                // smallest perturbation seen, then keep optimizing purely
                // on the L2 term (loss gradient of f is 0 here).
                let l2 = norm::l2_distance(sample, &x);
                if l2 < best_l2 {
                    best_l2 = l2;
                    best = Some(x.clone());
                }
            }

            // Gradient of the objective w.r.t. x:
            //   2·δ  +  c · d f / d x      (f-gradient zero once satisfied)
            let mut grad: Vec<f64> = x
                .iter()
                .zip(sample.iter())
                .map(|(&xi, &si)| 2.0 * (xi - si))
                .collect();
            if margin > -self.kappa {
                // d(Z_mal − Z_clean)/dx via one backward pass.
                let mut seed = Matrix::zeros(1, net.num_classes());
                seed.set(0, MALWARE_CLASS, 1.0);
                seed.set(0, CLEAN_CLASS, -1.0);
                let g = net.input_gradient(&xm, &seed)?;
                for (gi, j) in grad.iter_mut().zip(0..x.len()) {
                    *gi += self.c * g.get(0, j);
                }
            }

            // Projected descent step.
            for (j, xi) in x.iter_mut().enumerate() {
                let lo = if self.add_only { sample[j] } else { 0.0 };
                *xi = (*xi - self.lr * grad[j]).clamp(lo, 1.0);
            }
        }

        // Final candidate: prefer the best successful perturbation; fall
        // back to the final iterate.
        let adversarial = best.unwrap_or(x);
        let evaded = net.predict(&Matrix::row_vector(&adversarial))?[0] == CLEAN_CLASS;
        let perturbed: Vec<usize> = adversarial
            .iter()
            .zip(sample.iter())
            .enumerate()
            .filter(|(_, (a, s))| (*a - *s).abs() > 1e-9)
            .map(|(j, _)| j)
            .collect();
        Ok(AttackOutcome::new(
            sample,
            adversarial,
            perturbed,
            evaded,
            iterations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection_rate;
    use crate::testutil::trained_detector;
    use crate::Jsma;

    #[test]
    fn cw_reduces_detection_rate() {
        let (net, mal, _) = trained_detector(12, 60);
        let cw = CarliniWagnerL2::new(5.0).with_budget(150, 0.05);
        let (adv, outcomes) = cw.craft_batch(&net, &mal).unwrap();
        let before = detection_rate(&net, &mal).unwrap();
        let after = detection_rate(&net, &adv).unwrap();
        assert!(after < before - 0.3, "CW detection {before} -> {after}");
        assert!(outcomes.iter().filter(|o| o.evaded).count() > mal.rows() / 2);
    }

    #[test]
    fn cw_respects_box_and_addonly() {
        let (net, mal, _) = trained_detector(12, 61);
        let cw = CarliniWagnerL2::new(5.0);
        let (adv, _) = cw.craft_batch(&net, &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
        for r in 0..mal.rows() {
            for (o, a) in mal.row(r).iter().zip(adv.row(r).iter()) {
                assert!(a + 1e-12 >= *o, "add-only violated");
            }
        }
    }

    #[test]
    fn cw_perturbs_more_features_but_smaller_l2_than_jsma() {
        // The L0/L2 trade: C&W spreads a smaller total perturbation over
        // more features than JSMA spends reaching the same flip.
        let (net, mal, _) = trained_detector(12, 62);
        let cw = CarliniWagnerL2::new(5.0).with_budget(200, 0.05);
        let jsma = Jsma::new(0.5, 1.0);
        let (_, co) = cw.craft_batch(&net, &mal).unwrap();
        let (_, jo) = jsma.craft_batch(&net, &mal).unwrap();
        let evaded_pairs: Vec<(&crate::AttackOutcome, &crate::AttackOutcome)> = co
            .iter()
            .zip(jo.iter())
            .filter(|(c, j)| c.evaded && j.evaded)
            .collect();
        assert!(!evaded_pairs.is_empty(), "need joint evasions to compare");
        let mean = |f: &dyn Fn(&crate::AttackOutcome) -> f64, side: bool| -> f64 {
            evaded_pairs
                .iter()
                .map(|(c, j)| f(if side { c } else { j }))
                .sum::<f64>()
                / evaded_pairs.len() as f64
        };
        let cw_l2 = mean(&|o| o.l2_distance, true);
        let jsma_l2 = mean(&|o| o.l2_distance, false);
        assert!(
            cw_l2 <= jsma_l2 + 1e-9,
            "C&W should find smaller-L2 evasions: {cw_l2} vs {jsma_l2}"
        );
    }

    #[test]
    fn higher_kappa_gives_higher_confidence() {
        let (net, mal, _) = trained_detector(12, 63);
        let low = CarliniWagnerL2::new(5.0)
            .with_kappa(0.0)
            .with_budget(150, 0.05);
        let high = CarliniWagnerL2::new(5.0)
            .with_kappa(2.0)
            .with_budget(150, 0.05);
        let sample = mal.row(0);
        let lo = low.craft(&net, sample).unwrap();
        let hi = high.craft(&net, sample).unwrap();
        if lo.evaded && hi.evaded {
            let margin = |adv: &[f64]| {
                let z = net.logits(&Matrix::row_vector(adv)).unwrap();
                z.get(0, 0) - z.get(0, 1) // clean minus malware
            };
            assert!(margin(&hi.adversarial) >= margin(&lo.adversarial) - 1e-9);
        }
    }

    #[test]
    fn wrong_width_errors() {
        let (net, _, _) = trained_detector(12, 64);
        assert!(CarliniWagnerL2::new(1.0).craft(&net, &[0.0; 4]).is_err());
    }

    #[test]
    #[should_panic(expected = "c must be positive")]
    fn rejects_bad_c() {
        CarliniWagnerL2::new(0.0);
    }
}
