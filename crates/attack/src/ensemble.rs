use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, CLEAN_CLASS};

/// JSMA driven by an **ensemble of substitute models**: the saliency map
/// is the mean probability-Jacobian over all members, and "evaded" means
/// a majority of members classify the sample as clean.
///
/// This is the standard transferability booster from the literature the
/// paper cites (Liu et al., "Delving into transferable adversarial
/// examples"): averaging gradients across independently trained
/// substitutes cancels model-specific quirks, leaving the *shared*
/// adversarial directions that are most likely to also exist in the
/// unseen target.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleJsma {
    /// Perturbation magnitude per modified feature.
    pub theta: f64,
    /// Maximum fraction of features that may be modified.
    pub gamma: f64,
    /// Keep perturbing until the budget is exhausted (high confidence).
    pub exhaust_budget: bool,
}

impl EnsembleJsma {
    /// Creates the ensemble attack (high-confidence mode on by default —
    /// the whole point is transfer).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not positive-finite or `gamma` is outside
    /// `[0, 1]`.
    pub fn new(theta: f64, gamma: f64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0,
            "theta must be positive and finite, got {theta}"
        );
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        EnsembleJsma {
            theta,
            gamma,
            exhaust_budget: true,
        }
    }

    /// Switches to stop-at-first-evasion mode.
    pub fn with_early_stop(mut self) -> Self {
        self.exhaust_budget = false;
        self
    }

    /// The feature budget for `dim` features.
    pub fn max_features(&self, dim: usize) -> usize {
        (self.gamma * dim as f64).floor() as usize
    }

    /// Crafts one adversarial example against the member ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if members disagree on input width or the
    /// sample width is wrong.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn craft(&self, members: &[&Network], sample: &[f64]) -> Result<AttackOutcome, NnError> {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let dim = sample.len();
        for m in members {
            if m.input_dim() != dim {
                return Err(NnError::InputShape {
                    expected: m.input_dim(),
                    actual: dim,
                });
            }
        }
        let budget = self.max_features(dim);
        let mut x = sample.to_vec();
        let mut perturbed = vec![false; dim];
        let mut order = Vec::new();
        let mut iterations = 0usize;

        let majority_clean = |x: &[f64]| -> Result<bool, NnError> {
            let xm = Matrix::row_vector(x);
            let mut clean_votes = 0usize;
            for m in members {
                if m.predict(&xm)?[0] == CLEAN_CLASS {
                    clean_votes += 1;
                }
            }
            Ok(clean_votes * 2 > members.len())
        };

        let mut evaded = majority_clean(&x)?;
        while (!evaded || self.exhaust_budget) && order.len() < budget {
            iterations += 1;
            // Mean saliency toward clean over all members.
            let mut mean = vec![0.0f64; dim];
            for m in members {
                let jac = m.probability_jacobian(&x, 1.0)?;
                for (acc, j) in mean.iter_mut().zip(0..dim) {
                    *acc += jac.get(CLEAN_CLASS, j);
                }
            }
            let n = members.len() as f64;
            for v in &mut mean {
                *v /= n;
            }
            let mut best: Option<(usize, f64)> = None;
            for (j, &s) in mean.iter().enumerate() {
                if perturbed[j] || x[j] >= 1.0 - 1e-12 {
                    continue;
                }
                if s > 0.0 && best.is_none_or(|(_, bv)| s > bv) {
                    best = Some((j, s));
                }
            }
            let Some((j, _)) = best else { break };
            x[j] = (x[j] + self.theta).min(1.0);
            perturbed[j] = true;
            order.push(j);
            evaded = majority_clean(&x)?;
        }
        Ok(AttackOutcome::new(sample, x, order, evaded, iterations))
    }

    /// Crafts adversarial examples for every row of `batch`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on width mismatches.
    pub fn craft_batch(
        &self,
        members: &[&Network],
        batch: &Matrix,
    ) -> Result<(Matrix, Vec<AttackOutcome>), NnError> {
        let mut rows = Vec::with_capacity(batch.rows());
        let mut outcomes = Vec::with_capacity(batch.rows());
        for r in 0..batch.rows() {
            let o = self.craft(members, batch.row(r))?;
            rows.push(o.adversarial.clone());
            outcomes.push(o);
        }
        Ok((Matrix::from_rows(&rows).expect("uniform rows"), outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection_rate;
    use crate::testutil::trained_detector;

    #[test]
    fn ensemble_attack_evades_all_members() {
        let (a, mal, _) = trained_detector(12, 70);
        let (b, _, _) = trained_detector(12, 71);
        let (c, _, _) = trained_detector(12, 72);
        let members = [&a, &b, &c];
        let attack = EnsembleJsma::new(0.5, 0.5);
        let (adv, outcomes) = attack.craft_batch(&members, &mal).unwrap();
        assert!(outcomes.iter().filter(|o| o.evaded).count() > mal.rows() / 2);
        // Each member's detection drops substantially.
        for m in members {
            let before = detection_rate(m, &mal).unwrap();
            let after = detection_rate(m, &adv).unwrap();
            assert!(after < before - 0.3, "member detection {before} -> {after}");
        }
    }

    #[test]
    fn ensemble_respects_constraints() {
        let (a, mal, _) = trained_detector(12, 73);
        let (b, _, _) = trained_detector(12, 74);
        let attack = EnsembleJsma::new(0.4, 0.25);
        let (adv, outcomes) = attack.craft_batch(&[&a, &b], &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
        for (r, o) in outcomes.iter().enumerate() {
            assert!(o.features_modified() <= 3); // floor(0.25 * 12)
            for (orig, x) in mal.row(r).iter().zip(o.adversarial.iter()) {
                assert!(x >= orig);
            }
        }
    }

    #[test]
    fn single_member_ensemble_behaves_like_jsma_hc() {
        let (a, mal, _) = trained_detector(12, 75);
        let ens = EnsembleJsma::new(0.3, 0.5);
        let jsma = crate::Jsma::new(0.3, 0.5).with_high_confidence();
        use crate::EvasionAttack;
        let eo = ens.craft(&[&a], mal.row(0)).unwrap();
        let jo = jsma.craft(&a, mal.row(0)).unwrap();
        assert_eq!(eo.adversarial, jo.adversarial);
        assert_eq!(eo.perturbed_features, jo.perturbed_features);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let attack = EnsembleJsma::new(0.1, 0.1);
        let _ = attack.craft(&[], &[0.0; 4]);
    }

    #[test]
    fn mismatched_member_width_errors() {
        let (a, mal, _) = trained_detector(12, 76);
        let (b, _, _) = trained_detector(15, 77);
        let attack = EnsembleJsma::new(0.3, 0.2);
        assert!(attack.craft(&[&a, &b], mal.row(0)).is_err());
    }
}
