use serde::{Deserialize, Serialize};

use maleva_linalg::Matrix;
use maleva_nn::{loss, Network, NnError};

use crate::{AttackOutcome, EvasionAttack, CLEAN_CLASS};

/// Targeted Fast Gradient Sign Method (Goodfellow et al. 2015), adapted to
/// the malware domain.
///
/// FGSM is not the paper's attack (the paper motivates choosing JSMA for
/// its minimal-feature perturbations) but is the canonical baseline the
/// adversarial-training defense is usually introduced with; it is included
/// for the attack-method ablations. The targeted variant steps *down* the
/// loss toward the clean class:
///
/// `x' = clamp(x − ε · sign(∂CE(f(x), clean)/∂x))`
///
/// Under the add-only constraint, negative components of the step (which
/// would remove API evidence) are zeroed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fgsm {
    /// Step size ε.
    pub epsilon: f64,
    /// If `true`, features may only increase (paper's domain constraint).
    pub add_only: bool,
}

impl Fgsm {
    /// Creates a targeted FGSM with the add-only constraint enabled.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        Fgsm {
            epsilon,
            add_only: true,
        }
    }

    /// Enables or disables the add-only constraint.
    pub fn with_add_only(mut self, add_only: bool) -> Self {
        self.add_only = add_only;
        self
    }
}

impl EvasionAttack for Fgsm {
    fn name(&self) -> &str {
        "fgsm"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        let x = Matrix::row_vector(sample);
        let logits = net.logits(&x)?;
        // Loss toward the target (clean) class; its input-gradient points
        // away from clean, so we step against it.
        let grad_logits = loss::cross_entropy_grad(&logits, &[CLEAN_CLASS], 1.0)?;
        let grad_input = net.input_gradient(&x, &grad_logits)?;

        let mut adv = sample.to_vec();
        let mut perturbed = Vec::new();
        for (j, v) in adv.iter_mut().enumerate() {
            let step = -self.epsilon * grad_input.get(0, j).signum();
            if grad_input.get(0, j) == 0.0 {
                continue;
            }
            if self.add_only && step < 0.0 {
                continue;
            }
            let before = *v;
            *v = (*v + step).clamp(0.0, 1.0);
            if (*v - before).abs() > 1e-15 {
                perturbed.push(j);
            }
        }
        let evaded = net.predict(&Matrix::row_vector(&adv))?[0] == CLEAN_CLASS;
        Ok(AttackOutcome::new(sample, adv, perturbed, evaded, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection_rate;
    use crate::testutil::trained_detector;

    #[test]
    fn fgsm_reduces_detection_rate() {
        let (net, mal, _) = trained_detector(12, 20);
        let fgsm = Fgsm::new(0.5);
        let (adv, _) = fgsm.craft_batch(&net, &mal).unwrap();
        let before = detection_rate(&net, &mal).unwrap();
        let after = detection_rate(&net, &adv).unwrap();
        assert!(after < before, "detection {before} -> {after}");
    }

    #[test]
    fn add_only_respects_monotonicity() {
        let (net, mal, _) = trained_detector(12, 21);
        let fgsm = Fgsm::new(0.3);
        let outcome = fgsm.craft(&net, mal.row(0)).unwrap();
        for (o, a) in mal.row(0).iter().zip(outcome.adversarial.iter()) {
            assert!(a >= o);
        }
    }

    #[test]
    fn unconstrained_fgsm_is_at_least_as_strong() {
        let (net, mal, _) = trained_detector(12, 22);
        let constrained = Fgsm::new(0.4);
        let free = Fgsm::new(0.4).with_add_only(false);
        let (adv_c, _) = constrained.craft_batch(&net, &mal).unwrap();
        let (adv_f, _) = free.craft_batch(&net, &mal).unwrap();
        let dc = detection_rate(&net, &adv_c).unwrap();
        let df = detection_rate(&net, &adv_f).unwrap();
        assert!(df <= dc + 1e-9, "free {df} vs constrained {dc}");
    }

    #[test]
    fn stays_in_unit_box() {
        let (net, mal, _) = trained_detector(12, 23);
        let fgsm = Fgsm::new(2.0).with_add_only(false);
        let (adv, _) = fgsm.craft_batch(&net, &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn single_iteration_always() {
        let (net, mal, _) = trained_detector(12, 24);
        let outcome = Fgsm::new(0.2).craft(&net, mal.row(0)).unwrap();
        assert_eq!(outcome.iterations, 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        Fgsm::new(-0.1);
    }
}
