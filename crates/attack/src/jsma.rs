use serde::{Deserialize, Serialize};

use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, EvasionAttack, CLEAN_CLASS};

/// How JSMA selects which feature(s) to perturb each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SaliencyPolicy {
    /// The paper's policy: the single feature with the maximum positive
    /// gradient toward the target class ("select the most important
    /// feature associated with the maximum gradient based on the saliency
    /// map").
    #[default]
    SingleMaxGradient,
    /// The original Papernot JSMA: the *pair* of features maximizing the
    /// product saliency `(∂Ft/∂xj + ∂Ft/∂xk)·|Σ_{i≠t}(∂Fi/∂xj + ∂Fi/∂xk)|`.
    /// Kept as an ablation of the paper's simplification.
    PairwiseProduct,
}

/// The Jacobian-based Saliency Map Attack with the paper's malware-domain
/// constraints.
///
/// Each iteration computes the Jacobian of the class probabilities with
/// respect to the input (paper Equation 1), selects the eligible
/// feature(s) with the highest saliency toward the clean class, and adds
/// `θ` to them (clamped to the `[0,1]` feature box). A feature is
/// *eligible* if it has not been perturbed yet and — under the add-only
/// constraint — is not already saturated at 1. The attack stops when the
/// crafting model classifies the sample as clean or when `⌊γ·M⌋` distinct
/// features have been perturbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jsma {
    /// Perturbation magnitude per modified feature.
    pub theta: f64,
    /// Maximum fraction of features that may be modified.
    pub gamma: f64,
    /// Saliency selection policy.
    pub policy: SaliencyPolicy,
    /// If `true` (the paper's setting), features may only increase —
    /// adding API calls never deletes existing behaviour.
    pub add_only: bool,
    /// Softmax temperature used when computing probability Jacobians.
    pub temperature: f64,
    /// If `true` (default), stop as soon as the crafting model is evaded
    /// (standard JSMA). If `false`, keep perturbing until the feature
    /// budget is exhausted, producing *high-confidence* adversarial
    /// examples — the standard lever for improving transferability in
    /// grey-box attacks (cf. the transferable-adversarial-examples
    /// literature the paper cites).
    pub stop_on_success: bool,
}

impl Jsma {
    /// Creates the paper-standard JSMA: single-max-gradient saliency,
    /// add-only, temperature 1.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not positive-finite or `gamma` is not in
    /// `[0, 1]`.
    pub fn new(theta: f64, gamma: f64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0,
            "theta must be positive and finite, got {theta}"
        );
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        Jsma {
            theta,
            gamma,
            policy: SaliencyPolicy::SingleMaxGradient,
            add_only: true,
            temperature: 1.0,
            stop_on_success: true,
        }
    }

    /// Switches to high-confidence crafting: exhaust the feature budget
    /// even after the crafting model is already evaded.
    pub fn with_high_confidence(mut self) -> Self {
        self.stop_on_success = false;
        self
    }

    /// Switches the saliency policy.
    pub fn with_policy(mut self, policy: SaliencyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables the add-only constraint (ablation).
    pub fn with_add_only(mut self, add_only: bool) -> Self {
        self.add_only = add_only;
        self
    }

    /// The feature budget for an input of `dim` features: `⌊γ·dim⌋`
    /// (γ = 0.025 over 491 features ⇒ 12, the paper's mapping).
    pub fn max_features(&self, dim: usize) -> usize {
        (self.gamma * dim as f64).floor() as usize
    }

    /// One saliency evaluation: returns the best eligible feature (or
    /// pair) and whether any positive-saliency choice exists.
    fn select_features(
        &self,
        net: &Network,
        x: &[f64],
        perturbed: &[bool],
    ) -> Result<Vec<usize>, NnError> {
        let jac = net.probability_jacobian(x, self.temperature)?;
        let dim = x.len();
        let eligible = |j: usize| !perturbed[j] && (!self.add_only || x[j] < 1.0 - 1e-12);
        // With clean as the target class: saliency is the gradient of
        // F_clean; the "other classes decrease" condition of full JSMA is
        // automatic for 2 classes (∂F1 = −∂F0) and enforced generally here.
        let toward = |j: usize| jac.get(CLEAN_CLASS, j);
        let away = |j: usize| -> f64 {
            (0..net.num_classes())
                .filter(|&c| c != CLEAN_CLASS)
                .map(|c| jac.get(c, j))
                .sum()
        };
        match self.policy {
            SaliencyPolicy::SingleMaxGradient => {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..dim {
                    if !eligible(j) {
                        continue;
                    }
                    let s = toward(j);
                    if s > 0.0 && away(j) <= 0.0 && best.is_none_or(|(_, bv)| s > bv) {
                        best = Some((j, s));
                    }
                }
                Ok(best.map(|(j, _)| vec![j]).unwrap_or_default())
            }
            SaliencyPolicy::PairwiseProduct => {
                let mut best: Option<((usize, usize), f64)> = None;
                // Restrict the pair search to the top candidates by
                // |gradient| to stay O(k²) instead of O(dim²).
                let mut candidates: Vec<usize> = (0..dim).filter(|&j| eligible(j)).collect();
                candidates
                    .sort_by(|&a, &b| toward(b).partial_cmp(&toward(a)).expect("NaN saliency"));
                candidates.truncate(32);
                for (ai, &a) in candidates.iter().enumerate() {
                    for &b in candidates.iter().skip(ai + 1) {
                        let t = toward(a) + toward(b);
                        let o = away(a) + away(b);
                        if t > 0.0 && o <= 0.0 {
                            let s = t * o.abs().max(f64::MIN_POSITIVE);
                            if best.is_none_or(|(_, bv)| s > bv) {
                                best = Some(((a, b), s));
                            }
                        }
                    }
                }
                Ok(best.map(|((a, b), _)| vec![a, b]).unwrap_or_default())
            }
        }
    }
}

impl EvasionAttack for Jsma {
    fn name(&self) -> &str {
        "jsma"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        let mut span = maleva_obs::Span::enter("jsma.craft");
        let mut x = sample.to_vec();
        let dim = x.len();
        let budget = self.max_features(dim);
        let mut perturbed = vec![false; dim];
        let mut order = Vec::new();
        let mut iterations = 0usize;

        let classify = |net: &Network, x: &[f64]| -> Result<usize, NnError> {
            let m = maleva_linalg::Matrix::row_vector(x);
            Ok(net.predict(&m)?[0])
        };

        let mut evaded = classify(net, &x)? == CLEAN_CLASS;
        while (!evaded || !self.stop_on_success) && order.len() < budget {
            iterations += 1;
            let chosen = self.select_features(net, &x, &perturbed)?;
            if chosen.is_empty() {
                break; // no admissible saliency direction remains
            }
            for &j in &chosen {
                if order.len() >= budget {
                    break;
                }
                let lo = if self.add_only { x[j] } else { 0.0 };
                x[j] = (x[j] + self.theta).clamp(lo, 1.0);
                perturbed[j] = true;
                order.push(j);
            }
            evaded = classify(net, &x)? == CLEAN_CLASS;
        }
        let outcome = AttackOutcome::new(sample, x, order, evaded, iterations);
        span.record("iterations", outcome.iterations as u64);
        span.record("features_modified", outcome.features_modified() as u64);
        span.record("l2_distance", outcome.l2_distance);
        span.record("evaded", outcome.evaded);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection_rate;
    use crate::testutil::trained_detector;
    use maleva_linalg::Matrix;

    #[test]
    fn jsma_reduces_detection_rate() {
        let (net, mal, _) = trained_detector(12, 3);
        assert!(detection_rate(&net, &mal).unwrap() > 0.9);
        let jsma = Jsma::new(0.5, 0.5);
        let (adv, outcomes) = jsma.craft_batch(&net, &mal).unwrap();
        let dr = detection_rate(&net, &adv).unwrap();
        assert!(dr < 0.3, "detection rate after attack: {dr}");
        assert!(outcomes.iter().filter(|o| o.evaded).count() > mal.rows() / 2);
    }

    #[test]
    fn respects_feature_budget() {
        let (net, mal, _) = trained_detector(12, 4);
        for gamma in [0.0, 0.1, 0.25] {
            let jsma = Jsma::new(0.5, gamma);
            let budget = jsma.max_features(12);
            let (_, outcomes) = jsma.craft_batch(&net, &mal).unwrap();
            for o in &outcomes {
                assert!(
                    o.features_modified() <= budget,
                    "γ={gamma}: modified {} > budget {budget}",
                    o.features_modified()
                );
            }
        }
    }

    #[test]
    fn gamma_zero_is_a_noop() {
        let (net, mal, _) = trained_detector(12, 5);
        let jsma = Jsma::new(0.5, 0.0);
        let outcome = jsma.craft(&net, mal.row(0)).unwrap();
        assert_eq!(outcome.adversarial, mal.row(0).to_vec());
        assert_eq!(outcome.l2_distance, 0.0);
    }

    #[test]
    fn add_only_never_decreases_features() {
        let (net, mal, _) = trained_detector(12, 6);
        let jsma = Jsma::new(0.4, 0.5);
        for r in 0..mal.rows() {
            let original = mal.row(r);
            let outcome = jsma.craft(&net, original).unwrap();
            for (o, a) in original.iter().zip(outcome.adversarial.iter()) {
                assert!(a >= o, "add-only violated: {a} < {o}");
            }
        }
    }

    #[test]
    fn unconstrained_variant_may_decrease_features() {
        // Build an input where the clean direction requires *lowering* a
        // malware-signal feature that is already at its max.
        let (net, mal, _) = trained_detector(12, 7);
        let jsma = Jsma::new(0.4, 0.5).with_add_only(false);
        let mut saturated = mal.row(0).to_vec();
        for v in saturated.iter_mut().take(6) {
            *v = 1.0; // saturate all malware-signal features
        }
        let outcome = jsma.craft(&net, &saturated).unwrap();
        // The unconstrained attack is allowed to go below the original,
        // but regardless must stay inside the box.
        assert!(outcome
            .adversarial
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn stays_in_unit_box() {
        let (net, mal, _) = trained_detector(12, 8);
        let jsma = Jsma::new(0.9, 1.0);
        let (adv, _) = jsma.craft_batch(&net, &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn perturbed_features_are_distinct() {
        let (net, mal, _) = trained_detector(12, 9);
        let jsma = Jsma::new(0.3, 1.0);
        let outcome = jsma.craft(&net, mal.row(1)).unwrap();
        let mut sorted = outcome.perturbed_features.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outcome.perturbed_features.len());
    }

    #[test]
    fn pairwise_policy_also_attacks() {
        let (net, mal, _) = trained_detector(12, 10);
        let jsma = Jsma::new(0.5, 0.5).with_policy(SaliencyPolicy::PairwiseProduct);
        let (adv, _) = jsma.craft_batch(&net, &mal).unwrap();
        let dr = detection_rate(&net, &adv).unwrap();
        assert!(dr < 0.5, "pairwise JSMA detection rate: {dr}");
    }

    #[test]
    fn already_clean_input_is_untouched() {
        let (net, _, clean) = trained_detector(12, 11);
        let jsma = Jsma::new(0.5, 0.5);
        let outcome = jsma.craft(&net, clean.row(0)).unwrap();
        assert!(outcome.evaded);
        assert_eq!(outcome.iterations, 0);
        assert_eq!(outcome.features_modified(), 0);
    }

    #[test]
    fn larger_theta_needs_fewer_features() {
        let (net, mal, _) = trained_detector(12, 12);
        let small = Jsma::new(0.1, 1.0);
        let large = Jsma::new(0.8, 1.0);
        let (_, so) = small.craft_batch(&net, &mal).unwrap();
        let (_, lo) = large.craft_batch(&net, &mal).unwrap();
        let avg = |os: &[AttackOutcome]| {
            os.iter().map(|o| o.features_modified() as f64).sum::<f64>() / os.len() as f64
        };
        assert!(avg(&lo) <= avg(&so));
    }

    #[test]
    fn rejects_bad_parameters() {
        let r = std::panic::catch_unwind(|| Jsma::new(0.0, 0.5));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| Jsma::new(0.1, 1.5));
        assert!(r.is_err());
    }

    #[test]
    fn wrong_width_sample_errors() {
        let (net, _, _) = trained_detector(12, 13);
        let jsma = Jsma::new(0.1, 0.5);
        assert!(jsma.craft(&net, &[0.0; 5]).is_err());
        assert!(jsma.craft_batch(&net, &Matrix::zeros(2, 5)).is_err());
    }
}
