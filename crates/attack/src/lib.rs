//! Evasion attacks against DNN malware detectors.
//!
//! The paper's attack (Section II-B-1) is the **Jacobian-based Saliency
//! Map Approach** (JSMA, Papernot et al. 2016) with two domain
//! constraints: only API calls may be *added* (never removed, so the
//! malware keeps working), and the feature box is `[0, 1]`. Two knobs set
//! the attack strength:
//!
//! * `θ` (theta) — the perturbation magnitude added to each modified
//!   feature;
//! * `γ` (gamma) — the maximum *fraction* of features that may be
//!   modified; `⌊γ·M⌋` features for `M = 491` (γ = 0.025 ⇒ 12 features,
//!   exactly the paper's operating point).
//!
//! Alongside [`Jsma`] the crate ships the paper's **random-noise
//! baseline** ([`RandomAddition`]; "randomly adding features does not
//! decrease the detection rates") and a targeted **FGSM**
//! ([`Fgsm`]) as an extension, plus [`sweep`] — the security-evaluation-
//! curve runner behind Figures 3 and 4.
//!
//! # Example
//!
//! ```
//! use maleva_linalg::Matrix;
//! use maleva_nn::{Activation, NetworkBuilder, Trainer, TrainConfig};
//! use maleva_attack::{EvasionAttack, Jsma};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A detector over 8 features, trained so feature 0 signals malware.
//! let x = Matrix::from_rows(&[
//!     vec![0.9, 0.1, 0.0, 0.0, 0.2, 0.0, 0.1, 0.0],
//!     vec![0.0, 0.2, 0.1, 0.3, 0.0, 0.1, 0.0, 0.2],
//! ])?;
//! let mut net = NetworkBuilder::new(8)
//!     .layer(8, Activation::ReLU)
//!     .layer(2, Activation::Identity)
//!     .seed(3)
//!     .build()?;
//! Trainer::new(TrainConfig::new().epochs(100).batch_size(2).learning_rate(0.1))
//!     .fit(&mut net, &x, &[1, 0])?;
//!
//! let jsma = Jsma::new(0.5, 0.5);
//! let outcome = jsma.craft(&net, x.row(0))?;
//! assert!(outcome.perturbed_features.len() <= 4); // γ·M = 4
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod adaptive;
mod cw;
mod ensemble;
mod fgsm;
mod jsma;
mod outcome;
pub mod parallel;
pub mod perturbation;
mod random;
pub mod sweep;

pub use adaptive::SqueezeAwareJsma;
pub use cw::CarliniWagnerL2;
pub use ensemble::EnsembleJsma;
pub use fgsm::Fgsm;
pub use jsma::{Jsma, SaliencyPolicy};
pub use outcome::AttackOutcome;
pub use parallel::{
    craft_batch_parallel, craft_batch_parallel_with, BatchPolicy, BatchReport, FailureBudget,
    RowOutcome,
};
pub use random::RandomAddition;

use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

/// The clean class index (the evasion target; paper Equation 1 perturbs
/// toward class 0).
pub const CLEAN_CLASS: usize = 0;

/// The malware class index.
pub const MALWARE_CLASS: usize = 1;

/// A targeted evasion attack: given a detector and one malware feature
/// vector, produce an adversarial feature vector.
pub trait EvasionAttack {
    /// Short display name ("jsma", "fgsm", "random").
    fn name(&self) -> &str;

    /// Crafts an adversarial example for `sample` against `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the sample width does not match the network.
    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError>;

    /// Crafts adversarial examples for every row of `batch`, returning
    /// the adversarial batch and per-sample outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the batch width does not match the network.
    fn craft_batch(
        &self,
        net: &Network,
        batch: &Matrix,
    ) -> Result<(Matrix, Vec<AttackOutcome>), NnError> {
        let mut rows = Vec::with_capacity(batch.rows());
        let mut outcomes = Vec::with_capacity(batch.rows());
        for r in 0..batch.rows() {
            let outcome = self.craft(net, batch.row(r))?;
            rows.push(outcome.adversarial.clone());
            outcomes.push(outcome);
        }
        let adv = Matrix::from_rows(&rows).expect("uniform adversarial rows");
        Ok((adv, outcomes))
    }
}

/// Fraction of `batch` rows that `net` classifies as malware — the
/// "detection rate" axis of every security evaluation curve.
///
/// # Errors
///
/// Returns [`NnError`] if the batch width does not match the network.
pub fn detection_rate(net: &Network, batch: &Matrix) -> Result<f64, NnError> {
    let preds = net.predict(batch)?;
    Ok(preds.iter().filter(|&&p| p == MALWARE_CLASS).count() as f64 / preds.len().max(1) as f64)
}

#[cfg(test)]
pub(crate) mod testutil {
    use maleva_linalg::Matrix;
    use maleva_nn::{Activation, Network, NetworkBuilder, TrainConfig, Trainer};

    /// A small trained detector mirroring the malware-domain geometry:
    /// the first third of the features are a *weak* malware signal, the
    /// middle third a *strong* clean signal, the rest a shared common
    /// baseline. The classifier therefore leans on the clean-evidence
    /// features — which is what makes the add-only attack (add benign-
    /// looking API calls) viable, exactly as in the paper.
    pub fn trained_detector(dim: usize, seed: u64) -> (Network, Matrix, Matrix) {
        let n = 48;
        let third = dim / 3;
        let mut mal_rows = Vec::new();
        let mut clean_rows = Vec::new();
        for i in 0..n {
            let j = (i % 5) as f64 * 0.03;
            let mal: Vec<f64> = (0..dim)
                .map(|f| {
                    if f < third {
                        0.35 + j // weak malware signature
                    } else if f < 2 * third {
                        0.02 + j * 0.3 // clean signature absent
                    } else {
                        0.3 + j // common baseline
                    }
                })
                .collect();
            let clean: Vec<f64> = (0..dim)
                .map(|f| {
                    if f < third {
                        0.2 + j * 0.5 // malware APIs moderately present in clean too
                    } else if f < 2 * third {
                        0.5 + j // strong clean signature
                    } else {
                        0.3 + j // common baseline
                    }
                })
                .collect();
            mal_rows.push(mal);
            clean_rows.push(clean);
        }
        let mal = Matrix::from_rows(&mal_rows).unwrap();
        let clean = Matrix::from_rows(&clean_rows).unwrap();
        let x = mal.vstack(&clean).unwrap();
        let mut labels = vec![1usize; n];
        labels.extend(vec![0usize; n]);
        let mut net = NetworkBuilder::new(dim)
            .layer(16, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap();
        Trainer::new(
            TrainConfig::new()
                .epochs(60)
                .batch_size(16)
                .learning_rate(0.02)
                .seed(seed),
        )
        .fit(&mut net, &x, &labels)
        .unwrap();
        (net, mal, clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::trained_detector;

    #[test]
    fn detection_rate_on_trained_detector() {
        let (net, mal, clean) = trained_detector(10, 1);
        assert!(detection_rate(&net, &mal).unwrap() > 0.95);
        assert!(detection_rate(&net, &clean).unwrap() < 0.05);
    }

    #[test]
    fn craft_batch_preserves_shape() {
        let (net, mal, _) = trained_detector(10, 2);
        let jsma = Jsma::new(0.3, 0.5);
        let (adv, outcomes) = jsma.craft_batch(&net, &mal).unwrap();
        assert_eq!(adv.shape(), mal.shape());
        assert_eq!(outcomes.len(), mal.rows());
    }
}
