use maleva_linalg::norm;
use serde::{Deserialize, Serialize};

/// The result of crafting one adversarial example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The adversarial feature vector (same length as the input).
    pub adversarial: Vec<f64>,
    /// Indices of the features the attack modified, in modification order.
    pub perturbed_features: Vec<usize>,
    /// Whether the *crafting* model classifies the result as the target
    /// (clean) class. Transfer success against other models is evaluated
    /// separately.
    pub evaded: bool,
    /// Number of saliency/gradient iterations performed.
    pub iterations: usize,
    /// L2 distance between the original and adversarial vectors — the
    /// paper's perturbation metric (Figure 5).
    pub l2_distance: f64,
}

impl AttackOutcome {
    /// Builds an outcome, computing the L2 distance from the originals.
    ///
    /// # Panics
    ///
    /// Panics if `original.len() != adversarial.len()`.
    pub fn new(
        original: &[f64],
        adversarial: Vec<f64>,
        perturbed_features: Vec<usize>,
        evaded: bool,
        iterations: usize,
    ) -> Self {
        let l2_distance = norm::l2_distance(original, &adversarial);
        AttackOutcome {
            adversarial,
            perturbed_features,
            evaded,
            iterations,
            l2_distance,
        }
    }

    /// Number of distinct features modified.
    pub fn features_modified(&self) -> usize {
        self.perturbed_features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_is_computed_from_difference() {
        let outcome = AttackOutcome::new(&[0.0, 0.0], vec![3.0, 4.0], vec![0, 1], true, 2);
        assert_eq!(outcome.l2_distance, 5.0);
        assert_eq!(outcome.features_modified(), 2);
    }

    #[test]
    fn unmodified_outcome_has_zero_distance() {
        let outcome = AttackOutcome::new(&[0.5], vec![0.5], vec![], false, 0);
        assert_eq!(outcome.l2_distance, 0.0);
        assert!(!outcome.evaded);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        AttackOutcome::new(&[0.0], vec![1.0, 2.0], vec![], false, 0);
    }
}
