//! Multi-threaded adversarial crafting.
//!
//! Crafting is embarrassingly parallel across samples — each JSMA run
//! touches only its own row — so sweeps over thousands of malware
//! samples scale with cores. Results are **bit-identical** to the
//! sequential path: rows are partitioned deterministically and written
//! back in order, and every attack in this crate derives its randomness
//! (if any) from the sample contents, not from shared state.

use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, EvasionAttack};

/// Crafts adversarial examples for every row of `batch` using up to
/// `threads` worker threads. Equivalent to
/// [`EvasionAttack::craft_batch`] but parallel; the output is
/// bit-identical.
///
/// # Errors
///
/// Returns the first [`NnError`] any worker hits (by row order).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn craft_batch_parallel<A>(
    attack: &A,
    net: &Network,
    batch: &Matrix,
    threads: usize,
) -> Result<(Matrix, Vec<AttackOutcome>), NnError>
where
    A: EvasionAttack + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = batch.rows();
    if n == 0 || threads == 1 {
        return attack.craft_batch(net, batch);
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);

    let mut results: Vec<Option<Result<AttackOutcome, NnError>>> = Vec::new();
    results.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut rest: &mut [Option<Result<AttackOutcome, NnError>>] = &mut results;
        let mut start = 0usize;
        while start < n {
            let len = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let begin = start;
            scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    *slot = Some(attack.craft(net, batch.row(begin + offset)));
                }
            });
            start += len;
        }
    });

    let mut rows = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    for slot in results {
        let outcome = slot.expect("every row visited")?;
        rows.push(outcome.adversarial.clone());
        outcomes.push(outcome);
    }
    Ok((
        Matrix::from_rows(&rows).expect("uniform adversarial rows"),
        outcomes,
    ))
}

/// A reasonable worker count: the number of available CPUs, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_detector;
    use crate::Jsma;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (net, mal, _) = trained_detector(12, 90);
        let jsma = Jsma::new(0.3, 0.25);
        let (seq_adv, seq_out) = jsma.craft_batch(&net, &mal).unwrap();
        for threads in [1, 2, 3, 8] {
            let (par_adv, par_out) =
                craft_batch_parallel(&jsma, &net, &mal, threads).unwrap();
            assert_eq!(par_adv, seq_adv, "threads = {threads}");
            assert_eq!(par_out, seq_out, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (net, mal, _) = trained_detector(12, 91);
        let small = mal.select_rows(&[0, 1]);
        let jsma = Jsma::new(0.3, 0.25);
        let (adv, outcomes) = craft_batch_parallel(&jsma, &net, &small, 64).unwrap();
        assert_eq!(adv.rows(), 2);
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn errors_propagate() {
        let (net, _, _) = trained_detector(12, 92);
        let jsma = Jsma::new(0.3, 0.25);
        let bad = Matrix::zeros(4, 5); // wrong width
        assert!(craft_batch_parallel(&jsma, &net, &bad, 2).is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (net, mal, _) = trained_detector(12, 93);
        let _ = craft_batch_parallel(&Jsma::new(0.1, 0.1), &net, &mal, 0);
    }
}
