//! Multi-threaded, fault-tolerant adversarial crafting.
//!
//! Crafting is embarrassingly parallel across samples — each JSMA run
//! touches only its own row — so sweeps over thousands of malware
//! samples scale with cores. Results are **bit-identical** to the
//! sequential path: rows are partitioned deterministically and written
//! back in order, and every attack in this crate derives its randomness
//! (if any) from the sample contents, not from shared state.
//!
//! Long attack sweeps are also where a single bad sample can waste hours
//! of work, so the batch runner is fault-tolerant:
//!
//! * every `craft` call runs under [`std::panic::catch_unwind`], so a
//!   panicking sample is recorded as [`RowOutcome::Panicked`] instead of
//!   tearing down the whole sweep;
//! * per-row errors are recorded, not short-circuited, and a
//!   [`FailureBudget`] decides whether the batch as a whole aborts or
//!   degrades gracefully (failed rows carry the unperturbed input);
//! * retryable numeric errors (see [`NnError::is_retryable`]) get a
//!   bounded number of retries before being recorded.
//!
//! The strict entry point [`craft_batch_parallel`] keeps the original
//! "first error wins" contract on top of the fault-tolerant core.

use std::panic::{catch_unwind, AssertUnwindSafe};

use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};
use maleva_obs::trace::Span;

use crate::{AttackOutcome, EvasionAttack};

/// Process-wide attack counters in the shared `maleva-obs` registry.
fn attack_counters() -> &'static (
    std::sync::Arc<maleva_obs::Counter>,
    std::sync::Arc<maleva_obs::Counter>,
) {
    static COUNTERS: std::sync::OnceLock<(
        std::sync::Arc<maleva_obs::Counter>,
        std::sync::Arc<maleva_obs::Counter>,
    )> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = maleva_obs::metrics::global();
        (
            registry.counter("attack_rows_total", "Adversarial rows attempted."),
            registry.counter("attack_rows_evaded_total", "Rows that evaded the detector."),
        )
    })
}

/// What happened to one row of a fault-tolerant batch run.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOutcome {
    /// The attack completed (successfully evading or not — see
    /// [`AttackOutcome::evaded`]).
    Ok(AttackOutcome),
    /// The attack returned an error (after any configured retries).
    Err(NnError),
    /// The attack panicked; the payload message is captured.
    Panicked {
        /// The panic payload rendered as a string (`"<non-string panic>"`
        /// when the payload was not a string).
        message: String,
    },
}

impl RowOutcome {
    /// True for [`RowOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RowOutcome::Ok(_))
    }

    /// The successful outcome, if any.
    pub fn outcome(&self) -> Option<&AttackOutcome> {
        match self {
            RowOutcome::Ok(o) => Some(o),
            _ => None,
        }
    }
}

/// Whether a batch with failed rows aborts or degrades.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureBudget {
    /// Abort (return [`NnError::BatchFailure`]) when the fraction of
    /// failed rows exceeds `fraction` (in `[0, 1]`). `fraction: 0.0`
    /// tolerates no failures at all.
    AbortAbove {
        /// Maximum tolerated failed fraction.
        fraction: f64,
    },
    /// Never abort: failed rows carry the unperturbed input row in the
    /// adversarial matrix and are reported in [`BatchReport::rows`].
    Degrade,
}

/// Policy knobs for [`craft_batch_parallel_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Worker thread count (must be positive; see [`default_threads`]).
    pub threads: usize,
    /// Abort-vs-degrade policy for failed rows.
    pub failure_budget: FailureBudget,
    /// Extra attempts for rows failing with a retryable numeric error
    /// (see [`NnError::is_retryable`]). Panics are never retried.
    pub max_retries: usize,
}

impl BatchPolicy {
    /// Degrade-gracefully policy with [`default_threads`] workers and no
    /// retries.
    pub fn new() -> Self {
        BatchPolicy {
            threads: default_threads(),
            failure_budget: FailureBudget::Degrade,
            max_retries: 0,
        }
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the failure budget.
    pub fn failure_budget(mut self, budget: FailureBudget) -> Self {
        self.failure_budget = budget;
        self
    }

    /// Sets the retry bound for retryable numeric errors.
    pub fn max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.threads == 0 {
            return Err(NnError::InvalidConfig {
                detail: "need at least one thread".to_string(),
            });
        }
        if let FailureBudget::AbortAbove { fraction } = self.failure_budget {
            if !(0.0..=1.0).contains(&fraction) {
                return Err(NnError::InvalidConfig {
                    detail: format!("failure budget fraction must be in [0, 1], got {fraction}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of a fault-tolerant batch run: per-row outcomes plus the
/// adversarial batch, with failed rows carrying the unperturbed input.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One row per input row: the adversarial vector for successful rows,
    /// the unperturbed input for failed ones.
    pub adversarial: Matrix,
    /// Per-row outcome, in input order.
    pub rows: Vec<RowOutcome>,
}

impl BatchReport {
    /// Number of rows the attack completed on.
    pub fn ok_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of rows that returned an error.
    pub fn err_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, RowOutcome::Err(_)))
            .count()
    }

    /// Number of rows whose attack panicked.
    pub fn panicked_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, RowOutcome::Panicked { .. }))
            .count()
    }

    /// Total failed rows (errors + panics).
    pub fn failed_count(&self) -> usize {
        self.rows.len() - self.ok_count()
    }

    /// Failed fraction in `[0, 1]`; 0 for an empty batch.
    pub fn failure_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.failed_count() as f64 / self.rows.len() as f64
        }
    }

    /// The successful outcomes, in row order (failed rows skipped).
    pub fn outcomes(&self) -> impl Iterator<Item = &AttackOutcome> {
        self.rows.iter().filter_map(|r| r.outcome())
    }

    /// Converts to the strict `(adversarial, outcomes)` shape, failing on
    /// the first non-[`RowOutcome::Ok`] row (by row order). Panicked rows
    /// surface as [`NnError::BatchFailure`].
    ///
    /// # Errors
    ///
    /// The first row-level error, or [`NnError::BatchFailure`] for a
    /// panicked row.
    pub fn into_strict(self) -> Result<(Matrix, Vec<AttackOutcome>), NnError> {
        let total = self.rows.len();
        let mut outcomes = Vec::with_capacity(total);
        for (i, row) in self.rows.into_iter().enumerate() {
            match row {
                RowOutcome::Ok(o) => outcomes.push(o),
                RowOutcome::Err(e) => return Err(e),
                RowOutcome::Panicked { message } => {
                    return Err(NnError::BatchFailure {
                        failed: 1,
                        total,
                        detail: format!("attack panicked on row {i}: {message}"),
                    })
                }
            }
        }
        Ok((self.adversarial, outcomes))
    }
}

/// Crafts one row under `catch_unwind`, retrying retryable errors up to
/// `max_retries` extra times.
fn craft_row<A>(
    attack: &A,
    net: &Network,
    row_index: usize,
    sample: &[f64],
    max_retries: usize,
) -> RowOutcome
where
    A: EvasionAttack + Sync,
{
    let mut span = Span::enter("attack.row");
    span.record("row", row_index as u64);
    let mut attempt = 0;
    loop {
        match catch_unwind(AssertUnwindSafe(|| attack.craft(net, sample))) {
            Ok(Ok(outcome)) => {
                if span.is_active() {
                    let (rows_total, rows_evaded) = attack_counters();
                    rows_total.inc();
                    if outcome.evaded {
                        rows_evaded.inc();
                    }
                    span.record("outcome", "ok");
                    span.record("evaded", outcome.evaded);
                    span.record("retries", attempt as u64);
                }
                return RowOutcome::Ok(outcome);
            }
            Ok(Err(e)) => {
                if e.is_retryable() && attempt < max_retries {
                    attempt += 1;
                    continue;
                }
                if span.is_active() {
                    attack_counters().0.inc();
                    span.record("outcome", "err");
                }
                return RowOutcome::Err(e);
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                if span.is_active() {
                    attack_counters().0.inc();
                    span.record("outcome", "panicked");
                }
                return RowOutcome::Panicked { message };
            }
        }
    }
}

/// Crafts adversarial examples for every row of `batch` under the given
/// fault-tolerance policy. Row outcomes and the adversarial matrix are
/// bit-identical for any positive thread count.
///
/// # Errors
///
/// * [`NnError::InvalidConfig`] for a zero thread count or an
///   out-of-range failure budget.
/// * [`NnError::BatchFailure`] when an [`FailureBudget::AbortAbove`]
///   budget is exceeded.
pub fn craft_batch_parallel_with<A>(
    attack: &A,
    net: &Network,
    batch: &Matrix,
    policy: &BatchPolicy,
) -> Result<BatchReport, NnError>
where
    A: EvasionAttack + Sync,
{
    policy.validate()?;
    let n = batch.rows();
    let threads = policy.threads.min(n.max(1));

    let mut batch_span = Span::enter("attack.batch");
    batch_span.record("attack", attack.name().to_string());
    batch_span.record("rows", n as u64);
    batch_span.record("threads", threads as u64);

    let mut results: Vec<Option<RowOutcome>> = Vec::new();
    results.resize_with(n, || None);

    if threads <= 1 {
        for (r, slot) in results.iter_mut().enumerate() {
            *slot = Some(craft_row(attack, net, r, batch.row(r), policy.max_retries));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest: &mut [Option<RowOutcome>] = &mut results;
            let mut start = 0usize;
            while start < n {
                let len = chunk.min(n - start);
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                let begin = start;
                scope.spawn(move || {
                    for (offset, slot) in head.iter_mut().enumerate() {
                        *slot = Some(craft_row(
                            attack,
                            net,
                            begin + offset,
                            batch.row(begin + offset),
                            policy.max_retries,
                        ));
                    }
                });
                start += len;
            }
        });
    }

    let rows: Vec<RowOutcome> = results
        .into_iter()
        .map(|slot| slot.expect("every row visited"))
        .collect();

    if batch_span.is_active() {
        let ok = rows.iter().filter(|r| r.is_ok()).count();
        let panicked = rows
            .iter()
            .filter(|r| matches!(r, RowOutcome::Panicked { .. }))
            .count();
        let evaded = rows
            .iter()
            .filter_map(|r| r.outcome())
            .filter(|o| o.evaded)
            .count();
        batch_span.record("ok", ok as u64);
        batch_span.record("err", (rows.len() - ok - panicked) as u64);
        batch_span.record("panicked", panicked as u64);
        batch_span.record("evaded", evaded as u64);
    }

    let failed = rows.iter().filter(|r| !r.is_ok()).count();
    if let FailureBudget::AbortAbove { fraction } = policy.failure_budget {
        if n > 0 && failed as f64 / n as f64 > fraction {
            let first = rows
                .iter()
                .enumerate()
                .find(|(_, r)| !r.is_ok())
                .map(|(i, r)| match r {
                    RowOutcome::Err(e) => format!("first failure at row {i}: {e}"),
                    RowOutcome::Panicked { message } => {
                        format!("first panic at row {i}: {message}")
                    }
                    RowOutcome::Ok(_) => unreachable!("filtered to failures"),
                })
                .unwrap_or_default();
            return Err(NnError::BatchFailure {
                failed,
                total: n,
                detail: format!("budget allows {fraction:.3}; {first}"),
            });
        }
    }

    // Failed rows degrade to the unperturbed input so downstream shape
    // invariants (one adversarial row per input row) hold.
    let adv_rows: Vec<Vec<f64>> = rows
        .iter()
        .enumerate()
        .map(|(r, row)| match row {
            RowOutcome::Ok(o) => o.adversarial.clone(),
            _ => batch.row(r).to_vec(),
        })
        .collect();
    let adversarial = if n == 0 {
        Matrix::zeros(0, batch.cols())
    } else {
        Matrix::from_rows(&adv_rows).map_err(NnError::Linalg)?
    };
    Ok(BatchReport { adversarial, rows })
}

/// Crafts adversarial examples for every row of `batch` using up to
/// `threads` worker threads. Equivalent to
/// [`EvasionAttack::craft_batch`] but parallel; the output is
/// bit-identical.
///
/// This is the strict entry point: any row-level failure fails the whole
/// batch. Use [`craft_batch_parallel_with`] for per-row outcomes and
/// graceful degradation.
///
/// # Errors
///
/// * [`NnError::InvalidConfig`] if `threads == 0`.
/// * The first row-level [`NnError`] (by row order).
/// * [`NnError::BatchFailure`] if a row's attack panicked.
pub fn craft_batch_parallel<A>(
    attack: &A,
    net: &Network,
    batch: &Matrix,
    threads: usize,
) -> Result<(Matrix, Vec<AttackOutcome>), NnError>
where
    A: EvasionAttack + Sync,
{
    let policy = BatchPolicy::new()
        .threads(threads)
        .failure_budget(FailureBudget::Degrade);
    craft_batch_parallel_with(attack, net, batch, &policy)?.into_strict()
}

/// A reasonable worker count: the number of available CPUs, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_detector;
    use crate::Jsma;

    /// An attack that misbehaves on selected rows: panics on rows whose
    /// feature-0 value is `PANIC_MARK`, errors on `ERR_MARK`, and
    /// delegates to JSMA otherwise.
    struct Faulty {
        inner: Jsma,
    }

    const PANIC_MARK: f64 = -77.0;
    const ERR_MARK: f64 = -88.0;

    impl EvasionAttack for Faulty {
        fn name(&self) -> &str {
            "faulty"
        }

        fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
            if sample[0] == PANIC_MARK {
                panic!("injected panic for testing");
            }
            if sample[0] == ERR_MARK {
                return Err(NnError::NumericDivergence {
                    epoch: 0,
                    batch: 0,
                    detail: "injected numeric error".to_string(),
                });
            }
            self.inner.craft(net, sample)
        }
    }

    fn with_marked_rows(base: &Matrix, marks: &[(usize, f64)]) -> Matrix {
        let mut rows: Vec<Vec<f64>> = base.rows_iter().map(|r| r.to_vec()).collect();
        for &(i, mark) in marks {
            rows[i][0] = mark;
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (net, mal, _) = trained_detector(12, 90);
        let jsma = Jsma::new(0.3, 0.25);
        let (seq_adv, seq_out) = jsma.craft_batch(&net, &mal).unwrap();
        for threads in [1, 2, 3, 8] {
            let (par_adv, par_out) = craft_batch_parallel(&jsma, &net, &mal, threads).unwrap();
            assert_eq!(par_adv, seq_adv, "threads = {threads}");
            assert_eq!(par_out, seq_out, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (net, mal, _) = trained_detector(12, 91);
        let small = mal.select_rows(&[0, 1]);
        let jsma = Jsma::new(0.3, 0.25);
        let (adv, outcomes) = craft_batch_parallel(&jsma, &net, &small, 64).unwrap();
        assert_eq!(adv.rows(), 2);
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn errors_propagate() {
        let (net, _, _) = trained_detector(12, 92);
        let jsma = Jsma::new(0.3, 0.25);
        let bad = Matrix::zeros(4, 5); // wrong width
        assert!(craft_batch_parallel(&jsma, &net, &bad, 2).is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn zero_threads_is_invalid_config() {
        let (net, mal, _) = trained_detector(12, 93);
        let err = craft_batch_parallel(&Jsma::new(0.1, 0.1), &net, &mal, 0).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err:?}");
        let policy = BatchPolicy::new().threads(0);
        let err = craft_batch_parallel_with(&Jsma::new(0.1, 0.1), &net, &mal, &policy).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_budget_is_invalid_config() {
        let (net, mal, _) = trained_detector(12, 93);
        let policy = BatchPolicy::new().failure_budget(FailureBudget::AbortAbove { fraction: 1.5 });
        let err = craft_batch_parallel_with(&Jsma::new(0.1, 0.1), &net, &mal, &policy).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn panicking_row_is_isolated_and_other_rows_match_sequential() {
        let (net, mal, _) = trained_detector(12, 94);
        let jsma = Jsma::new(0.3, 0.25);
        let (seq_adv, _) = jsma.craft_batch(&net, &mal).unwrap();
        let bad_row = 2;
        let marked = with_marked_rows(&mal, &[(bad_row, PANIC_MARK)]);
        let faulty = Faulty {
            inner: Jsma::new(0.3, 0.25),
        };
        for threads in [1, 3] {
            let policy = BatchPolicy::new().threads(threads);
            let report = craft_batch_parallel_with(&faulty, &net, &marked, &policy).unwrap();
            assert_eq!(report.panicked_count(), 1, "threads = {threads}");
            assert!(matches!(
                &report.rows[bad_row],
                RowOutcome::Panicked { message } if message.contains("injected")
            ));
            // The failed row carries the unperturbed (marked) input...
            assert_eq!(report.adversarial.row(bad_row), marked.row(bad_row));
            // ...and every other row is bit-identical to the sequential run.
            for r in 0..mal.rows() {
                if r != bad_row {
                    assert_eq!(
                        report.adversarial.row(r),
                        seq_adv.row(r),
                        "row {r}, threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn failure_budget_aborts_when_exceeded() {
        let (net, mal, _) = trained_detector(12, 95);
        let faulty = Faulty {
            inner: Jsma::new(0.3, 0.25),
        };
        let marked = with_marked_rows(&mal, &[(0, ERR_MARK), (1, PANIC_MARK)]);
        // 2 failures out of n rows; a zero budget must abort...
        let strict = BatchPolicy::new()
            .threads(2)
            .failure_budget(FailureBudget::AbortAbove { fraction: 0.0 });
        let err = craft_batch_parallel_with(&faulty, &net, &marked, &strict).unwrap_err();
        match err {
            NnError::BatchFailure { failed, total, .. } => {
                assert_eq!(failed, 2);
                assert_eq!(total, mal.rows());
            }
            other => panic!("expected BatchFailure, got {other:?}"),
        }
        // ...while a generous budget degrades.
        let lax = BatchPolicy::new()
            .threads(2)
            .failure_budget(FailureBudget::AbortAbove { fraction: 0.9 });
        let report = craft_batch_parallel_with(&faulty, &net, &marked, &lax).unwrap();
        assert_eq!(report.failed_count(), 2);
        assert_eq!(report.err_count(), 1);
        assert_eq!(report.panicked_count(), 1);
        assert_eq!(report.ok_count(), mal.rows() - 2);
        assert!(report.failure_fraction() > 0.0);
    }

    #[test]
    fn retryable_errors_are_retried_up_to_the_bound() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct FlakyOnce {
            inner: Jsma,
            calls: AtomicUsize,
        }
        impl EvasionAttack for FlakyOnce {
            fn name(&self) -> &str {
                "flaky"
            }
            fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
                // Fail the very first call with a retryable error.
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    return Err(NnError::NumericDivergence {
                        epoch: 0,
                        batch: 0,
                        detail: "transient".to_string(),
                    });
                }
                self.inner.craft(net, sample)
            }
        }

        let (net, mal, _) = trained_detector(12, 96);
        let small = mal.select_rows(&[0, 1]);
        let flaky = FlakyOnce {
            inner: Jsma::new(0.3, 0.25),
            calls: AtomicUsize::new(0),
        };
        // One retry turns the transient failure into a success.
        let policy = BatchPolicy::new().threads(1).max_retries(1);
        let report = craft_batch_parallel_with(&flaky, &net, &small, &policy).unwrap();
        assert_eq!(report.ok_count(), 2);

        // Without retries the same failure is recorded.
        let flaky = FlakyOnce {
            inner: Jsma::new(0.3, 0.25),
            calls: AtomicUsize::new(0),
        };
        let policy = BatchPolicy::new().threads(1).max_retries(0);
        let report = craft_batch_parallel_with(&flaky, &net, &small, &policy).unwrap();
        assert_eq!(report.err_count(), 1);
    }

    #[test]
    fn empty_batch_reports_empty() {
        let (net, mal, _) = trained_detector(12, 97);
        let empty = mal.select_rows(&[]);
        let report =
            craft_batch_parallel_with(&Jsma::new(0.3, 0.25), &net, &empty, &BatchPolicy::new())
                .unwrap();
        assert_eq!(report.rows.len(), 0);
        assert_eq!(report.failure_fraction(), 0.0);
    }
}
