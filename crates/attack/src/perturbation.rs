//! L2 perturbation geometry — the paper's Figure 5.
//!
//! To understand where adversarial examples sit relative to the decision
//! boundary, the paper measures mean L2 distances between three
//! populations: (1) malware ↔ its adversarial examples, (2) malware ↔
//! clean, (3) clean ↔ adversarial examples. The paper's finding — and the
//! invariant the integration tests pin — is the ordering
//! `d(mal, adv) < d(mal, clean) < d(clean, adv)`: adversarial examples
//! live in a blind spot *near the malware* yet classified clean, far from
//! the actual clean population.

use maleva_eval::SecurityCurve;
use maleva_linalg::{norm, Matrix};
use maleva_nn::{Network, NnError};
use serde::{Deserialize, Serialize};

use crate::sweep::SweepAxis;
use crate::{EvasionAttack, Jsma};

/// Mean L2 distances between the three populations of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Stats {
    /// Mean row-wise distance malware ↔ its own adversarial example.
    pub malware_to_adversarial: f64,
    /// Mean cross-pair distance malware ↔ clean.
    pub malware_to_clean: f64,
    /// Mean cross-pair distance clean ↔ adversarial examples.
    pub clean_to_adversarial: f64,
}

impl L2Stats {
    /// Whether the paper's geometric ordering holds:
    /// `d(mal, adv) ≤ d(mal, clean) ≤ d(clean, adv)` within `tol`.
    pub fn paper_ordering_holds(&self, tol: f64) -> bool {
        self.malware_to_adversarial <= self.malware_to_clean + tol
            && self.malware_to_clean <= self.clean_to_adversarial + tol
    }
}

/// Computes [`L2Stats`] for aligned malware/adversarial batches and an
/// unaligned clean batch. Cross-population means are estimated over at
/// most `max_pairs` deterministic pairs.
///
/// Returns `None` if shapes are inconsistent or any batch is empty.
pub fn l2_stats(
    malware: &Matrix,
    adversarial: &Matrix,
    clean: &Matrix,
    max_pairs: usize,
) -> Option<L2Stats> {
    Some(L2Stats {
        malware_to_adversarial: norm::rowwise_l2_mean(malware, adversarial)?,
        malware_to_clean: norm::pairwise_l2_mean(malware, clean, max_pairs)?,
        clean_to_adversarial: norm::pairwise_l2_mean(clean, adversarial, max_pairs)?,
    })
}

/// Runs the Figure 5 sweep: for each strength point, craft adversarial
/// examples with JSMA against `craft_net` and report the three mean L2
/// distances as curve series (`mal-adv`, `mal-clean`, `clean-adv`).
///
/// # Errors
///
/// Returns [`NnError`] if batch widths mismatch the network.
///
/// # Panics
///
/// Panics if either batch is empty.
pub fn l2_sweep(
    craft_net: &Network,
    malware: &Matrix,
    clean: &Matrix,
    axis: &SweepAxis,
    max_pairs: usize,
) -> Result<SecurityCurve, NnError> {
    assert!(malware.rows() > 0 && clean.rows() > 0, "empty batch");
    let values = axis.values().to_vec();
    let mut mal_adv = Vec::with_capacity(values.len());
    let mut mal_clean = Vec::with_capacity(values.len());
    let mut clean_adv = Vec::with_capacity(values.len());

    for i in 0..values.len() {
        let (theta, gamma) = match axis {
            SweepAxis::Gamma { theta, values } => (*theta, values[i]),
            SweepAxis::Theta { gamma, values } => (values[i], *gamma),
        };
        let adv = if theta <= 0.0 || gamma <= 0.0 {
            malware.clone()
        } else {
            Jsma::new(theta, gamma).craft_batch(craft_net, malware)?.0
        };
        let stats = l2_stats(malware, &adv, clean, max_pairs).expect("batches validated non-empty");
        mal_adv.push(stats.malware_to_adversarial);
        mal_clean.push(stats.malware_to_clean);
        clean_adv.push(stats.clean_to_adversarial);
    }

    let mut curve = SecurityCurve::new(axis.label(), values);
    curve.push_series("mal-adv", mal_adv);
    curve.push_series("mal-clean", mal_clean);
    curve.push_series("clean-adv", clean_adv);
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_detector;

    #[test]
    fn stats_capture_known_geometry() {
        // Adversarial examples sit in a blind spot: displaced from the
        // malware along a dimension orthogonal to the malware-clean axis,
        // so they are near malware and *far* from clean.
        let malware = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.9, 0.1, 0.0]]).unwrap();
        let adversarial = Matrix::from_rows(&[vec![1.0, 0.0, 0.5], vec![0.9, 0.1, 0.5]]).unwrap();
        let clean = Matrix::from_rows(&[vec![0.0, 1.0, 0.0], vec![0.1, 0.9, 0.0]]).unwrap();
        let s = l2_stats(&malware, &adversarial, &clean, 100).unwrap();
        assert!((s.malware_to_adversarial - 0.5).abs() < 1e-9);
        assert!(s.malware_to_clean > 1.0);
        assert!(s.clean_to_adversarial > s.malware_to_clean);
        assert!(s.paper_ordering_holds(1e-9));
    }

    #[test]
    fn stats_none_on_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(l2_stats(&a, &b, &a, 10).is_none());
    }

    #[test]
    fn sweep_distances_grow_with_strength() {
        let (net, mal, clean) = trained_detector(16, 50);
        let axis = SweepAxis::Theta {
            gamma: 0.5,
            values: vec![0.0, 0.2, 0.6],
        };
        let curve = l2_sweep(&net, &mal, &clean, &axis, 500).unwrap();
        let ma = &curve.series_named("mal-adv").unwrap().values;
        assert_eq!(ma[0], 0.0, "no perturbation at strength 0");
        assert!(ma[2] > ma[1], "distance must grow with theta: {ma:?}");
        // mal-clean does not depend on the attack at all.
        let mc = &curve.series_named("mal-clean").unwrap().values;
        assert!((mc[0] - mc[2]).abs() < 1e-12);
    }

    #[test]
    fn sweep_reproduces_paper_ordering() {
        let (net, mal, clean) = trained_detector(16, 51);
        // Keep the perturbation sparse (1 feature) so the adversarial
        // example stays close to its malware origin, as in the paper's
        // operating points.
        let axis = SweepAxis::Gamma {
            theta: 0.3,
            values: vec![0.0625],
        };
        let curve = l2_sweep(&net, &mal, &clean, &axis, 500).unwrap();
        let ma = curve.series_named("mal-adv").unwrap().values[0];
        let mc = curve.series_named("mal-clean").unwrap().values[0];
        let ca = curve.series_named("clean-adv").unwrap().values[0];
        // In this low-dimensional fixture the attack moves *along* the
        // malware-clean axis, so only the first inequality of the paper's
        // ordering is guaranteed here; the full ordering (clean-adv
        // largest) is a high-dimensional blind-spot effect checked by the
        // 491-feature integration tests.
        assert!(ma < mc, "mal-adv {ma} should be < mal-clean {mc}");
        assert!(ma < ca, "mal-adv {ma} should be < clean-adv {ca}");
    }
}
