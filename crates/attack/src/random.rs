use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

use crate::{AttackOutcome, EvasionAttack, CLEAN_CLASS};

/// The paper's control experiment: add `θ` to `⌊γ·M⌋` *randomly chosen*
/// features instead of saliency-chosen ones.
///
/// Figure 3's commentary: "Randomly adding features does not decrease the
/// detection rates. … The JSMA perturbation is different from random
/// noise." This baseline makes every security evaluation curve carry its
/// own control series.
///
/// The RNG is derived deterministically from the configured seed and the
/// sample contents, so crafting is reproducible and batch-order
/// independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomAddition {
    /// Perturbation magnitude per modified feature.
    pub theta: f64,
    /// Maximum fraction of features to modify.
    pub gamma: f64,
    /// Base seed for the per-sample RNG derivation.
    pub seed: u64,
}

impl RandomAddition {
    /// Creates the random-addition baseline.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not positive-finite or `gamma` is not in
    /// `[0, 1]`.
    pub fn new(theta: f64, gamma: f64, seed: u64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0,
            "theta must be positive and finite, got {theta}"
        );
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        RandomAddition { theta, gamma, seed }
    }

    fn sample_rng(&self, sample: &[f64]) -> ChaCha8Rng {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        for v in sample {
            v.to_bits().hash(&mut h);
        }
        ChaCha8Rng::seed_from_u64(h.finish())
    }
}

impl EvasionAttack for RandomAddition {
    fn name(&self) -> &str {
        "random"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        // Validate width against the network exactly like the real attacks.
        if sample.len() != net.input_dim() {
            return Err(NnError::InputShape {
                expected: net.input_dim(),
                actual: sample.len(),
            });
        }
        let mut rng = self.sample_rng(sample);
        let dim = sample.len();
        let budget = (self.gamma * dim as f64).floor() as usize;
        let mut adv = sample.to_vec();
        let mut chosen = Vec::with_capacity(budget);
        let mut tried = 0usize;
        while chosen.len() < budget && tried < dim * 4 {
            tried += 1;
            let j = rng.gen_range(0..dim);
            if chosen.contains(&j) || adv[j] >= 1.0 - 1e-12 {
                continue; // add-only: skip saturated features
            }
            adv[j] = (adv[j] + self.theta).min(1.0);
            chosen.push(j);
        }
        let evaded = net.predict(&Matrix::row_vector(&adv))?[0] == CLEAN_CLASS;
        Ok(AttackOutcome::new(sample, adv, chosen, evaded, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection_rate;
    use crate::testutil::trained_detector;
    use crate::{EvasionAttack, Jsma};

    #[test]
    fn random_addition_is_much_weaker_than_jsma() {
        let (net, mal, _) = trained_detector(12, 30);
        let random = RandomAddition::new(0.5, 0.5, 7);
        let jsma = Jsma::new(0.5, 0.5);
        let (adv_r, _) = random.craft_batch(&net, &mal).unwrap();
        let (adv_j, _) = jsma.craft_batch(&net, &mal).unwrap();
        let dr_r = detection_rate(&net, &adv_r).unwrap();
        let dr_j = detection_rate(&net, &adv_j).unwrap();
        assert!(
            dr_r > dr_j + 0.2,
            "random should be far weaker: random {dr_r} vs jsma {dr_j}"
        );
    }

    #[test]
    fn respects_budget_and_box() {
        let (net, mal, _) = trained_detector(12, 31);
        let random = RandomAddition::new(0.4, 0.25, 1);
        let (adv, outcomes) = random.craft_batch(&net, &mal).unwrap();
        assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
        for o in outcomes {
            assert!(o.features_modified() <= 3); // floor(0.25 * 12)
        }
    }

    #[test]
    fn deterministic_per_sample() {
        let (net, mal, _) = trained_detector(12, 32);
        let random = RandomAddition::new(0.4, 0.5, 9);
        let a = random.craft(&net, mal.row(0)).unwrap();
        let b = random.craft(&net, mal.row(0)).unwrap();
        assert_eq!(a, b);
        let c = random.craft(&net, mal.row(1)).unwrap();
        assert_ne!(a.perturbed_features, c.perturbed_features);
    }

    #[test]
    fn add_only_monotone() {
        let (net, mal, _) = trained_detector(12, 33);
        let random = RandomAddition::new(0.4, 1.0, 2);
        let o = random.craft(&net, mal.row(2)).unwrap();
        for (orig, adv) in mal.row(2).iter().zip(o.adversarial.iter()) {
            assert!(adv >= orig);
        }
    }

    #[test]
    fn wrong_width_errors() {
        let (net, _, _) = trained_detector(12, 34);
        let random = RandomAddition::new(0.4, 0.5, 3);
        assert!(random.craft(&net, &[0.0; 3]).is_err());
    }
}
