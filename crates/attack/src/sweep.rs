//! Security-evaluation-curve sweeps: detection rate as a function of
//! attack strength (the machinery behind Figures 3 and 4).

use maleva_eval::SecurityCurve;
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

use crate::{detection_rate, EvasionAttack, Jsma, RandomAddition};

/// Which attack-strength knob a sweep varies.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Vary γ (number of perturbed features) at fixed θ — Figure 3(a) /
    /// 4(a): `θ = 0.1, γ ∈ [0 : 0.005 : 0.030]`.
    Gamma {
        /// Fixed perturbation magnitude.
        theta: f64,
        /// γ values to sweep.
        values: Vec<f64>,
    },
    /// Vary θ (perturbation magnitude) at fixed γ — Figure 3(b) / 4(b):
    /// `γ = 0.025, θ ∈ [0 : 0.0125 : 0.15]`.
    Theta {
        /// Fixed feature-budget fraction.
        gamma: f64,
        /// θ values to sweep.
        values: Vec<f64>,
    },
}

impl SweepAxis {
    /// The paper's Figure 3(a) axis: θ = 0.1, γ from 0 to 0.030 in steps
    /// of 0.005 (adding 0, 2, 4, … 14 features over 491).
    pub fn paper_gamma() -> Self {
        SweepAxis::Gamma {
            theta: 0.1,
            values: (0..=6).map(|i| i as f64 * 0.005).collect(),
        }
    }

    /// The paper's Figure 3(b) axis: γ = 0.025, θ from 0 to 0.15 in steps
    /// of 0.0125.
    pub fn paper_theta() -> Self {
        SweepAxis::Theta {
            gamma: 0.025,
            values: (0..=12).map(|i| i as f64 * 0.0125).collect(),
        }
    }

    /// The strength values being swept.
    pub fn values(&self) -> &[f64] {
        match self {
            SweepAxis::Gamma { values, .. } | SweepAxis::Theta { values, .. } => values,
        }
    }

    /// Axis label for curve rendering.
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::Gamma { .. } => "gamma",
            SweepAxis::Theta { .. } => "theta",
        }
    }

    /// The `(theta, gamma)` pair at one sweep point.
    fn point(&self, i: usize) -> (f64, f64) {
        match self {
            SweepAxis::Gamma { theta, values } => (*theta, values[i]),
            SweepAxis::Theta { gamma, values } => (values[i], *gamma),
        }
    }
}

/// Runs a JSMA security sweep.
///
/// Adversarial examples are crafted once per strength point against
/// `craft_net`, then scored by each named evaluator network. For a
/// white-box curve pass the same network as crafter and sole evaluator;
/// for a grey-box curve craft on the substitute and evaluate on both
/// substitute and target. When `random_seed` is `Some`, a matching
/// [`RandomAddition`] control series (evaluated on the first evaluator)
/// is appended — the paper's "random noise" comparison.
///
/// # Errors
///
/// Returns [`NnError`] if the malware batch width mismatches any network.
///
/// # Panics
///
/// Panics if `evaluators` is empty or `malware` has no rows.
pub fn security_sweep(
    craft_net: &Network,
    evaluators: &[(&str, &Network)],
    malware: &Matrix,
    axis: &SweepAxis,
    random_seed: Option<u64>,
) -> Result<SecurityCurve, NnError> {
    // The default template is the paper-standard JSMA; theta/gamma are
    // overridden per sweep point.
    security_sweep_with(
        &Jsma::new(1.0, 1.0),
        craft_net,
        evaluators,
        malware,
        axis,
        random_seed,
    )
}

/// Like [`security_sweep`], but crafting with the given [`Jsma`] template
/// (its `policy`, `add_only` and `stop_on_success` are respected; `theta`
/// and `gamma` are overridden at each sweep point). Grey-box transfer
/// curves use a high-confidence template.
///
/// # Errors
///
/// Returns [`NnError`] if the malware batch width mismatches any network.
///
/// # Panics
///
/// Panics if `evaluators` is empty or `malware` has no rows.
pub fn security_sweep_with(
    template: &Jsma,
    craft_net: &Network,
    evaluators: &[(&str, &Network)],
    malware: &Matrix,
    axis: &SweepAxis,
    random_seed: Option<u64>,
) -> Result<SecurityCurve, NnError> {
    assert!(!evaluators.is_empty(), "need at least one evaluator");
    assert!(malware.rows() > 0, "empty malware batch");

    let values = axis.values().to_vec();
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(values.len()); evaluators.len()];
    let mut random_series: Vec<f64> = Vec::new();

    for (i, &value) in values.iter().enumerate() {
        let (theta, gamma) = axis.point(i);
        let mut span = maleva_obs::Span::enter("sweep.point");
        span.record(axis.label(), value);
        span.record("theta", theta);
        span.record("gamma", gamma);
        let adv = if theta <= 0.0 || gamma <= 0.0 {
            malware.clone() // strength 0: unperturbed
        } else {
            let mut jsma = template.clone();
            jsma.theta = theta;
            jsma.gamma = gamma;
            crate::parallel::craft_batch_parallel(
                &jsma,
                craft_net,
                malware,
                crate::parallel::default_threads(),
            )?
            .0
        };
        for (s, (_, net)) in series.iter_mut().zip(evaluators.iter()) {
            s.push(detection_rate(net, &adv)?);
        }
        if let Some(&rate) = series.first().and_then(|s| s.last()) {
            span.record("detection_rate", rate);
        }
        if let Some(seed) = random_seed {
            let adv_r = if theta <= 0.0 || gamma <= 0.0 {
                malware.clone()
            } else {
                RandomAddition::new(theta, gamma, seed)
                    .craft_batch(craft_net, malware)?
                    .0
            };
            random_series.push(detection_rate(evaluators[0].1, &adv_r)?);
        }
    }

    let mut curve = SecurityCurve::new(axis.label(), values);
    for ((name, _), s) in evaluators.iter().zip(series) {
        curve.push_series(format!("jsma:{name}"), s);
    }
    if random_seed.is_some() {
        curve.push_series(format!("random:{}", evaluators[0].0), random_series);
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_detector;

    #[test]
    fn paper_axes_match_figure_3() {
        let g = SweepAxis::paper_gamma();
        assert_eq!(g.values().len(), 7);
        assert!((g.values()[6] - 0.030).abs() < 1e-12);
        let t = SweepAxis::paper_theta();
        assert_eq!(t.values().len(), 13);
        assert!((t.values()[12] - 0.15).abs() < 1e-12);
        assert_eq!(g.label(), "gamma");
        assert_eq!(t.label(), "theta");
    }

    #[test]
    fn whitebox_sweep_decreases_with_gamma_and_random_stays_flat() {
        let (net, mal, _) = trained_detector(16, 40);
        let axis = SweepAxis::Gamma {
            theta: 0.5,
            values: vec![0.0, 0.125, 0.25, 0.5],
        };
        let curve = security_sweep(&net, &[("whitebox", &net)], &mal, &axis, Some(5)).unwrap();
        let jsma = curve.series_named("jsma:whitebox").unwrap();
        assert!(
            (jsma.values[0] - 1.0).abs() < 0.05,
            "strength 0 ≈ clean baseline"
        );
        assert!(
            jsma.values[3] < jsma.values[0] - 0.5,
            "detection must collapse: {:?}",
            jsma.values
        );
        let random = curve.series_named("random:whitebox").unwrap();
        assert!(
            random.values[3] > jsma.values[3] + 0.2,
            "random baseline should stay much higher: random {:?} jsma {:?}",
            random.values,
            jsma.values
        );
    }

    #[test]
    fn theta_sweep_strength_zero_is_baseline() {
        let (net, mal, _) = trained_detector(16, 41);
        let axis = SweepAxis::Theta {
            gamma: 0.5,
            values: vec![0.0, 0.5],
        };
        let curve = security_sweep(&net, &[("m", &net)], &mal, &axis, None).unwrap();
        let s = curve.series_named("jsma:m").unwrap();
        let baseline = crate::detection_rate(&net, &mal).unwrap();
        assert!((s.values[0] - baseline).abs() < 1e-12);
        assert!(s.values[1] < baseline);
    }

    #[test]
    fn multiple_evaluators_produce_multiple_series() {
        let (a, mal, _) = trained_detector(16, 42);
        let (b, _, _) = trained_detector(16, 43);
        let axis = SweepAxis::Gamma {
            theta: 0.5,
            values: vec![0.0, 0.25],
        };
        let curve =
            security_sweep(&a, &[("substitute", &a), ("target", &b)], &mal, &axis, None).unwrap();
        assert!(curve.series_named("jsma:substitute").is_some());
        assert!(curve.series_named("jsma:target").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one evaluator")]
    fn empty_evaluators_panics() {
        let (net, mal, _) = trained_detector(8, 44);
        let _ = security_sweep(
            &net,
            &[],
            &mal,
            &SweepAxis::Gamma {
                theta: 0.1,
                values: vec![0.0],
            },
            None,
        );
    }
}
