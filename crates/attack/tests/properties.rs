//! Property-based tests for the attack implementations: domain
//! constraints must hold for arbitrary inputs and parameters.

use maleva_attack::{
    craft_batch_parallel_with, AttackOutcome, BatchPolicy, EvasionAttack, FailureBudget, Fgsm,
    Jsma, RandomAddition, RowOutcome, SaliencyPolicy,
};
use maleva_linalg::Matrix;
use maleva_nn::{Activation, Network, NetworkBuilder, NnError};
use proptest::prelude::*;

const DIM: usize = 12;

fn net(seed: u64) -> Network {
    NetworkBuilder::new(DIM)
        .layer(8, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
        .expect("net")
}

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, DIM)
}

/// Sentinel values in column 0, outside the `sample()` range, that make
/// [`Sabotaged`] misbehave on exactly that row.
const PANIC_MARK: f64 = 2.0;
const ERR_MARK: f64 = 3.0;

/// A JSMA wrapper that panics or errors on marked rows and behaves
/// exactly like plain JSMA on everything else.
struct Sabotaged {
    inner: Jsma,
}

impl EvasionAttack for Sabotaged {
    fn name(&self) -> &str {
        "sabotaged-jsma"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        if sample[0] == PANIC_MARK {
            panic!("sabotaged row");
        }
        if sample[0] == ERR_MARK {
            return Err(NnError::InvalidConfig {
                detail: "sabotaged row".into(),
            });
        }
        self.inner.craft(net, sample)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jsma_stays_in_box_and_is_monotone(x in sample(),
                                         theta in 0.01f64..1.0,
                                         gamma in 0.0f64..1.0,
                                         seed in 0u64..100,
                                         hc in any::<bool>()) {
        let net = net(seed);
        let mut jsma = Jsma::new(theta, gamma);
        if hc {
            jsma = jsma.with_high_confidence();
        }
        let o = jsma.craft(&net, &x).expect("craft");
        prop_assert!(o.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
        for (orig, adv) in x.iter().zip(o.adversarial.iter()) {
            prop_assert!(adv + 1e-12 >= *orig, "add-only violated");
        }
        prop_assert!(o.features_modified() <= jsma.max_features(DIM));
    }

    #[test]
    fn jsma_budget_is_floor_of_gamma_m(gamma in 0.0f64..1.0) {
        let jsma = Jsma::new(0.1, gamma);
        prop_assert_eq!(jsma.max_features(491), (gamma * 491.0).floor() as usize);
    }

    #[test]
    fn pairwise_jsma_obeys_constraints(x in sample(), seed in 0u64..50) {
        let net = net(seed);
        let jsma = Jsma::new(0.3, 0.5).with_policy(SaliencyPolicy::PairwiseProduct);
        let o = jsma.craft(&net, &x).expect("craft");
        prop_assert!(o.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
        let mut dedup = o.perturbed_features.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), o.perturbed_features.len(), "duplicate features");
    }

    #[test]
    fn fgsm_addonly_is_monotone(x in sample(), eps in 0.01f64..0.8, seed in 0u64..50) {
        let net = net(seed);
        let o = Fgsm::new(eps).craft(&net, &x).expect("craft");
        for (orig, adv) in x.iter().zip(o.adversarial.iter()) {
            prop_assert!(adv + 1e-12 >= *orig);
            prop_assert!(adv - orig <= eps + 1e-12, "step exceeds epsilon");
        }
    }

    #[test]
    fn random_addition_is_reproducible_and_bounded(x in sample(),
                                                   theta in 0.01f64..0.9,
                                                   gamma in 0.0f64..1.0,
                                                   seed in 0u64..100) {
        let net = net(7);
        let attack = RandomAddition::new(theta, gamma, seed);
        let a = attack.craft(&net, &x).expect("craft");
        let b = attack.craft(&net, &x).expect("craft");
        prop_assert_eq!(&a, &b, "same seed+sample must agree");
        prop_assert!(a.features_modified() <= (gamma * DIM as f64).floor() as usize);
        prop_assert!(a.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn l2_distance_is_bounded_by_theta_sqrt_k(x in sample(),
                                              theta in 0.01f64..1.0,
                                              seed in 0u64..50) {
        let net = net(seed);
        let o = Jsma::new(theta, 1.0).with_high_confidence().craft(&net, &x).expect("craft");
        let bound = theta * (o.features_modified() as f64).sqrt();
        prop_assert!(o.l2_distance <= bound + 1e-9);
    }

    #[test]
    fn faulty_rows_are_isolated_and_healthy_rows_match_sequential(
        rows in prop::collection::vec(sample(), 2..7),
        faults in prop::collection::vec(0u8..3, 2..7),
        threads in 1usize..5,
        seed in 0u64..50,
    ) {
        // A row whose attack panics or errors must be reported as exactly
        // that, degrade to the unperturbed input, and leave every other
        // row bit-identical to a sequential single-row craft.
        let net = net(seed);
        let jsma = Jsma::new(0.3, 0.5);
        let mut marked = rows.clone();
        for (row, &f) in marked.iter_mut().zip(faults.iter()) {
            match f {
                1 => row[0] = PANIC_MARK,
                2 => row[0] = ERR_MARK,
                _ => {}
            }
        }
        let batch = Matrix::from_rows(&marked).expect("batch");
        let policy = BatchPolicy::new()
            .threads(threads)
            .failure_budget(FailureBudget::Degrade);
        let report = craft_batch_parallel_with(&Sabotaged { inner: jsma.clone() }, &net, &batch, &policy)
            .expect("degrade policy never aborts");

        prop_assert_eq!(report.rows.len(), marked.len());
        for (r, outcome) in report.rows.iter().enumerate() {
            match faults.get(r).copied().unwrap_or(0) {
                1 => {
                    prop_assert!(
                        matches!(outcome, RowOutcome::Panicked { .. }),
                        "row {r} should be Panicked, got {outcome:?}"
                    );
                    prop_assert_eq!(batch.row(r), report.adversarial.row(r));
                }
                2 => {
                    prop_assert!(
                        matches!(outcome, RowOutcome::Err(_)),
                        "row {r} should be Err, got {outcome:?}"
                    );
                    prop_assert_eq!(batch.row(r), report.adversarial.row(r));
                }
                _ => {
                    let reference = jsma.craft(&net, batch.row(r)).expect("sequential");
                    match outcome {
                        RowOutcome::Ok(o) => prop_assert_eq!(o, &reference),
                        other => prop_assert!(false, "row {r} should be Ok, got {other:?}"),
                    }
                    prop_assert_eq!(report.adversarial.row(r), reference.adversarial.as_slice());
                }
            }
        }
    }

    #[test]
    fn evaded_flag_matches_model_prediction(x in sample(), seed in 0u64..50) {
        let net = net(seed);
        let o = Jsma::new(0.4, 0.5).craft(&net, &x).expect("craft");
        let pred = net
            .predict(&maleva_linalg::Matrix::row_vector(&o.adversarial))
            .expect("predict")[0];
        prop_assert_eq!(o.evaded, pred == 0);
    }
}
