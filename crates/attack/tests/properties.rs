//! Property-based tests for the attack implementations: domain
//! constraints must hold for arbitrary inputs and parameters.

use maleva_attack::{EvasionAttack, Fgsm, Jsma, RandomAddition, SaliencyPolicy};
use maleva_nn::{Activation, Network, NetworkBuilder};
use proptest::prelude::*;

const DIM: usize = 12;

fn net(seed: u64) -> Network {
    NetworkBuilder::new(DIM)
        .layer(8, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
        .expect("net")
}

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, DIM)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jsma_stays_in_box_and_is_monotone(x in sample(),
                                         theta in 0.01f64..1.0,
                                         gamma in 0.0f64..1.0,
                                         seed in 0u64..100,
                                         hc in any::<bool>()) {
        let net = net(seed);
        let mut jsma = Jsma::new(theta, gamma);
        if hc {
            jsma = jsma.with_high_confidence();
        }
        let o = jsma.craft(&net, &x).expect("craft");
        prop_assert!(o.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
        for (orig, adv) in x.iter().zip(o.adversarial.iter()) {
            prop_assert!(adv + 1e-12 >= *orig, "add-only violated");
        }
        prop_assert!(o.features_modified() <= jsma.max_features(DIM));
    }

    #[test]
    fn jsma_budget_is_floor_of_gamma_m(gamma in 0.0f64..1.0) {
        let jsma = Jsma::new(0.1, gamma);
        prop_assert_eq!(jsma.max_features(491), (gamma * 491.0).floor() as usize);
    }

    #[test]
    fn pairwise_jsma_obeys_constraints(x in sample(), seed in 0u64..50) {
        let net = net(seed);
        let jsma = Jsma::new(0.3, 0.5).with_policy(SaliencyPolicy::PairwiseProduct);
        let o = jsma.craft(&net, &x).expect("craft");
        prop_assert!(o.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
        let mut dedup = o.perturbed_features.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), o.perturbed_features.len(), "duplicate features");
    }

    #[test]
    fn fgsm_addonly_is_monotone(x in sample(), eps in 0.01f64..0.8, seed in 0u64..50) {
        let net = net(seed);
        let o = Fgsm::new(eps).craft(&net, &x).expect("craft");
        for (orig, adv) in x.iter().zip(o.adversarial.iter()) {
            prop_assert!(adv + 1e-12 >= *orig);
            prop_assert!(adv - orig <= eps + 1e-12, "step exceeds epsilon");
        }
    }

    #[test]
    fn random_addition_is_reproducible_and_bounded(x in sample(),
                                                   theta in 0.01f64..0.9,
                                                   gamma in 0.0f64..1.0,
                                                   seed in 0u64..100) {
        let net = net(7);
        let attack = RandomAddition::new(theta, gamma, seed);
        let a = attack.craft(&net, &x).expect("craft");
        let b = attack.craft(&net, &x).expect("craft");
        prop_assert_eq!(&a, &b, "same seed+sample must agree");
        prop_assert!(a.features_modified() <= (gamma * DIM as f64).floor() as usize);
        prop_assert!(a.adversarial.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn l2_distance_is_bounded_by_theta_sqrt_k(x in sample(),
                                              theta in 0.01f64..1.0,
                                              seed in 0u64..50) {
        let net = net(seed);
        let o = Jsma::new(theta, 1.0).with_high_confidence().craft(&net, &x).expect("craft");
        let bound = theta * (o.features_modified() as f64).sqrt();
        prop_assert!(o.l2_distance <= bound + 1e-9);
    }

    #[test]
    fn evaded_flag_matches_model_prediction(x in sample(), seed in 0u64..50) {
        let net = net(seed);
        let o = Jsma::new(0.4, 0.5).craft(&net, &x).expect("craft");
        let pred = net
            .predict(&maleva_linalg::Matrix::row_vector(&o.adversarial))
            .expect("predict")[0];
        prop_assert_eq!(o.evaded, pred == 0);
    }
}
