//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! saliency policy, add-only constraint, feature transformation,
//! distillation temperature, and PCA K. Each ablation measures the
//! *cost* of the variant; the corresponding effectiveness numbers are
//! printed by `repro --exp ablations`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use maleva_attack::{EvasionAttack, Jsma, SaliencyPolicy};
use maleva_core::models::{self, ModelScale};
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_features::{CountTransform, FeaturePipeline};
use maleva_nn::{TrainConfig, Trainer};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 300).expect("ctx"))
}

/// Ablation 1 & 2: saliency policy and add-only constraint.
fn bench_jsma_variants(c: &mut Criterion) {
    let ctx = ctx();
    let batch = ctx.attack_batch();
    let sample = batch.row(0);
    let mut group = c.benchmark_group("ablation/jsma_variant");
    group.sample_size(20);
    let variants: Vec<(&str, Jsma)> = vec![
        ("paper_single_addonly", Jsma::new(0.2, 0.05)),
        (
            "pairwise_addonly",
            Jsma::new(0.2, 0.05).with_policy(SaliencyPolicy::PairwiseProduct),
        ),
        (
            "single_unconstrained",
            Jsma::new(0.2, 0.05).with_add_only(false),
        ),
        (
            "single_high_confidence",
            Jsma::new(0.2, 0.05).with_high_confidence(),
        ),
    ];
    for (name, jsma) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(jsma.craft(ctx.target(), sample).expect("craft")));
        });
    }
    group.finish();
}

/// Ablation 3: feature transformation cost (Raw vs Log1p vs Binary).
fn bench_transform_variants(c: &mut Criterion) {
    let ctx = ctx();
    let programs = ctx.dataset.train();
    let mut group = c.benchmark_group("ablation/feature_transform");
    for transform in [
        CountTransform::Raw,
        CountTransform::Log1p,
        CountTransform::Binary,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{transform:?}")),
            &transform,
            |b, &t| {
                b.iter(|| {
                    let p = FeaturePipeline::fit(t, programs);
                    black_box(p.transform_batch(programs))
                });
            },
        );
    }
    group.finish();
}

/// Ablation 4: distillation temperature (training cost is
/// temperature-independent; this pins that fact).
fn bench_temperature_variants(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("ablation/distill_temperature");
    group.sample_size(10);
    for t in [1.0, 20.0, 50.0] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let mut net = models::target_model(491, ModelScale::Tiny, 7).expect("model");
                let config = TrainConfig::new().epochs(1).batch_size(32).temperature(t);
                black_box(
                    Trainer::new(config)
                        .fit(&mut net, &ctx.x_train, &ctx.y_train)
                        .expect("fit"),
                )
            });
        });
    }
    group.finish();
}

/// Ablation 5: PCA K sweep (fit + transform cost grows with K).
fn bench_pca_k_variants(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("ablation/pca_k");
    group.sample_size(10);
    for k in [2usize, 10, 19, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let pca = maleva_linalg::Pca::fit(&ctx.x_train, k).expect("fit");
                black_box(pca.transform(&ctx.x_test).expect("transform"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_jsma_variants,
    bench_transform_variants,
    bench_temperature_variants,
    bench_pca_k_variants
);
criterion_main!(benches);
