//! Attack benchmarks: per-sample adversarial crafting cost against the
//! real 491-feature detector — the inner loop of Figures 3 and 4.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use maleva_attack::{EvasionAttack, Fgsm, Jsma, RandomAddition, SaliencyPolicy};
use maleva_core::{ExperimentContext, ExperimentScale};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 100).expect("ctx"))
}

fn bench_jsma_single(c: &mut Criterion) {
    let ctx = ctx();
    let batch = ctx.attack_batch();
    let sample = batch.row(0);
    let mut group = c.benchmark_group("attack/jsma");
    group.sample_size(20);
    group.bench_function("single_max_gradient", |b| {
        let jsma = Jsma::new(0.2, 0.025);
        b.iter(|| black_box(jsma.craft(ctx.target(), sample).expect("craft")));
    });
    group.bench_function("high_confidence", |b| {
        let jsma = Jsma::new(0.2, 0.025).with_high_confidence();
        b.iter(|| black_box(jsma.craft(ctx.target(), sample).expect("craft")));
    });
    group.bench_function("pairwise_product", |b| {
        let jsma = Jsma::new(0.2, 0.025).with_policy(SaliencyPolicy::PairwiseProduct);
        b.iter(|| black_box(jsma.craft(ctx.target(), sample).expect("craft")));
    });
    group.finish();
}

fn bench_other_attacks(c: &mut Criterion) {
    let ctx = ctx();
    let batch = ctx.attack_batch();
    let sample = batch.row(1);
    let mut group = c.benchmark_group("attack/baselines");
    group.sample_size(20);
    group.bench_function("fgsm", |b| {
        let fgsm = Fgsm::new(0.1);
        b.iter(|| black_box(fgsm.craft(ctx.target(), sample).expect("craft")));
    });
    group.bench_function("random_addition", |b| {
        let random = RandomAddition::new(0.2, 0.025, 9);
        b.iter(|| black_box(random.craft(ctx.target(), sample).expect("craft")));
    });
    group.finish();
}

fn bench_jacobian(c: &mut Criterion) {
    // The gradient computation at the heart of JSMA (paper Equation 1).
    let ctx = ctx();
    let batch = ctx.attack_batch();
    let sample = batch.row(2).to_vec();
    let mut group = c.benchmark_group("attack/gradients");
    group.sample_size(30);
    group.bench_function("probability_jacobian_491", |b| {
        b.iter(|| {
            black_box(
                ctx.target()
                    .probability_jacobian(&sample, 1.0)
                    .expect("jac"),
            )
        });
    });
    group.bench_function("input_jacobian_491", |b| {
        b.iter(|| black_box(ctx.target().input_jacobian(&sample).expect("jac")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_jsma_single,
    bench_other_attacks,
    bench_jacobian
);
criterion_main!(benches);
