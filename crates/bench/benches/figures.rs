//! Per-figure/table regeneration benchmarks: the cost of producing each
//! of the paper's evaluation artifacts at micro scale. The actual values
//! are printed by the `repro` binary; these benches track how expensive
//! each regeneration is.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use maleva_attack::sweep::SweepAxis;
use maleva_core::{defenses, greybox, live, whitebox, ExperimentContext, ExperimentScale};
use maleva_nn::Network;
use std::sync::OnceLock;

fn state() -> &'static (ExperimentContext, Network) {
    static STATE: OnceLock<(ExperimentContext, Network)> = OnceLock::new();
    STATE.get_or_init(|| {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 200).expect("ctx");
        let substitute = greybox::train_substitute(&ctx, 200).expect("substitute");
        (ctx, substitute)
    })
}

const MICRO_SAMPLES: usize = 10;

fn micro_gamma_axis() -> SweepAxis {
    SweepAxis::Gamma {
        theta: 0.2,
        values: vec![0.0, 0.02, 0.05],
    }
}

fn micro_theta_axis() -> SweepAxis {
    SweepAxis::Theta {
        gamma: 0.025,
        values: vec![0.0, 0.1, 0.2],
    }
}

fn bench_fig3(c: &mut Criterion) {
    let (ctx, _) = state();
    let mut group = c.benchmark_group("figure3/whitebox_curve");
    group.sample_size(10);
    group.bench_function("fig3a_gamma_sweep", |b| {
        b.iter(|| {
            black_box(whitebox::curve(ctx, MICRO_SAMPLES, micro_gamma_axis()).expect("curve"))
        });
    });
    group.bench_function("fig3b_theta_sweep", |b| {
        b.iter(|| {
            black_box(whitebox::curve(ctx, MICRO_SAMPLES, micro_theta_axis()).expect("curve"))
        });
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let (ctx, substitute) = state();
    let mut group = c.benchmark_group("figure4/greybox_transfer");
    group.sample_size(10);
    group.bench_function("fig4a_gamma_sweep", |b| {
        b.iter(|| {
            black_box(
                greybox::transfer_curve(ctx, substitute, MICRO_SAMPLES, micro_gamma_axis())
                    .expect("curve"),
            )
        });
    });
    group.bench_function("fig4b_theta_sweep", |b| {
        b.iter(|| {
            black_box(
                greybox::transfer_curve(ctx, substitute, MICRO_SAMPLES, micro_theta_axis())
                    .expect("curve"),
            )
        });
    });
    group.bench_function("fig4c_binary_features", |b| {
        b.iter(|| {
            black_box(
                greybox::binary_feature_experiment(ctx, 4, MICRO_SAMPLES, &[0.0, 0.05])
                    .expect("report"),
            )
        });
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let (ctx, substitute) = state();
    let mut group = c.benchmark_group("figure5/l2_distances");
    group.sample_size(10);
    group.bench_function("fig5a_gamma_sweep", |b| {
        b.iter(|| {
            black_box(
                greybox::l2_curves(ctx, substitute, MICRO_SAMPLES, micro_gamma_axis())
                    .expect("curve"),
            )
        });
    });
    group.bench_function("fig5b_theta_sweep", |b| {
        b.iter(|| {
            black_box(
                greybox::l2_curves(ctx, substitute, MICRO_SAMPLES, micro_theta_axis())
                    .expect("curve"),
            )
        });
    });
    group.finish();
}

fn bench_live(c: &mut Criterion) {
    let (ctx, substitute) = state();
    let mut group = c.benchmark_group("live_greybox");
    group.sample_size(10);
    group.bench_function("insert_api_8x", |b| {
        b.iter(|| black_box(live::live_greybox_test(ctx, substitute, 8).expect("live")));
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let (ctx, _) = state();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    // Table I: dataset regeneration.
    group.bench_function("table1_dataset_tiny", |b| {
        b.iter(|| {
            black_box(
                ctx.world
                    .build_dataset(&maleva_apisim::DatasetSpec::tiny(), 9),
            )
        });
    });
    // Tables V & VI: the full defense comparison (six model trainings).
    let (ctx2, substitute) = state();
    let config = defenses::DefenseConfig {
        theta: 0.5,
        gamma: 0.1,
        distill_temperature: 20.0,
        pca_k: 10,
        squeeze_fpr: 0.05,
        advex_train_fraction: 0.5,
        high_confidence: true,
    };
    group.bench_function("table6_defense_comparison", |b| {
        b.iter(|| {
            black_box(defenses::compare_defenses(ctx2, substitute, &config).expect("defenses"))
        });
    });
    group.finish();
}

fn bench_figure2_blackbox(c: &mut Criterion) {
    let (ctx, _) = state();
    let mut group = c.benchmark_group("figure2/blackbox");
    group.sample_size(10);
    let config = maleva_core::blackbox::BlackboxConfig {
        seed_corpus: 30,
        augmentation_rounds: 1,
        vocab_overlap: 0.6,
        gamma: 0.05,
        eval_samples: 10,
        query_budget: 0,
        seed: 5,
    };
    group.bench_function("oracle_framework_micro", |b| {
        b.iter(|| black_box(maleva_core::blackbox::run(ctx, &config).expect("blackbox")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_live,
    bench_tables,
    bench_figure2_blackbox
);
criterion_main!(benches);
