//! Kernel benchmarks: the computational primitives every experiment rests
//! on — matrix products, softmax, PCA (Table VI DimReduct), and the
//! log-rendering/parsing pipeline (Tables II & III).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use maleva_apisim::{ApiVocab, Class, World, WorldConfig};
use maleva_features::{CountTransform, FeaturePipeline};
use maleva_linalg::{Matrix, Pca};
use maleva_nn::softmax;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/matmul");
    for &n in &[32usize, 128, 491] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.1);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).expect("matmul")));
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let logits: Vec<f64> = (0..491).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
    c.bench_function("nn/softmax_491", |b| {
        b.iter(|| black_box(softmax(&logits, 1.0)));
    });
    c.bench_function("nn/softmax_491_t50", |b| {
        b.iter(|| black_box(softmax(&logits, 50.0)));
    });
}

fn bench_pca(c: &mut Criterion) {
    // The DimReduct defense fits PCA on the training features. Benchmark
    // fit at a reduced feature count (Jacobi on 64x64) and transform at
    // full 491 width.
    let x64 = Matrix::from_fn(256, 64, |i, j| ((i * (j + 3)) % 17) as f64 * 0.05);
    c.bench_function("pca/fit_256x64_k19", |b| {
        b.iter(|| black_box(Pca::fit(&x64, 19).expect("fit")));
    });
    let x491 = Matrix::from_fn(64, 491, |i, j| ((i * (j + 5)) % 13) as f64 * 0.07);
    let pca = Pca::fit(&x491, 19).expect("fit 491");
    c.bench_function("pca/transform_64x491_k19", |b| {
        b.iter(|| black_box(pca.transform(&x491).expect("transform")));
    });
}

fn bench_log_pipeline(c: &mut Criterion) {
    // Table II / Table III: render a sandbox log and parse it back into
    // 491 counts.
    let world = World::new(WorldConfig::default());
    let mut rng = maleva_apisim::rng(1);
    let program = world.sample_program(Class::Malware, &mut rng);
    let vocab = ApiVocab::standard();
    c.bench_function("log/render", |b| {
        b.iter(|| black_box(program.render_log(&vocab)));
    });
    let text = program.render_log(&vocab);
    c.bench_function("log/parse", |b| {
        b.iter(|| black_box(maleva_apisim::log::parse_counts(&text, &vocab)));
    });
}

fn bench_featurize(c: &mut Criterion) {
    let world = World::new(WorldConfig::default());
    let mut rng = maleva_apisim::rng(2);
    let programs = world.sample_batch(64, 64, &mut rng);
    for transform in [
        CountTransform::Raw,
        CountTransform::Log1p,
        CountTransform::Binary,
    ] {
        let pipeline = FeaturePipeline::fit(transform, &programs);
        c.bench_function(&format!("features/transform_128x491_{transform:?}"), |b| {
            b.iter(|| black_box(pipeline.transform_batch(&programs)));
        });
    }
}

fn bench_sampling(c: &mut Criterion) {
    // Table I: dataset generation throughput.
    let world = World::new(WorldConfig::default());
    c.bench_function("apisim/sample_program", |b| {
        let mut rng = maleva_apisim::rng(3);
        b.iter(|| black_box(world.sample_program(Class::Malware, &mut rng)));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_softmax,
    bench_pca,
    bench_log_pipeline,
    bench_featurize,
    bench_sampling
);
criterion_main!(benches);
