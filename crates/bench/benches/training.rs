//! Training benchmarks: epoch cost of the Table IV architectures and the
//! defense retraining loops (Tables V & VI).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use maleva_apisim::{Dataset, DatasetSpec, World, WorldConfig};
use maleva_core::models::{self, ModelScale};
use maleva_features::{CountTransform, FeaturePipeline};
use maleva_linalg::Matrix;
use maleva_nn::{TrainConfig, Trainer};
use std::sync::OnceLock;

fn data() -> &'static (Matrix, Vec<usize>) {
    static DATA: OnceLock<(Matrix, Vec<usize>)> = OnceLock::new();
    DATA.get_or_init(|| {
        let world = World::new(WorldConfig::default());
        let ds = world.build_dataset(&DatasetSpec::tiny(), 55);
        let pipeline = FeaturePipeline::fit(CountTransform::Raw, ds.train());
        (
            pipeline.transform_batch(ds.train()),
            Dataset::labels(ds.train()),
        )
    })
}

fn one_epoch() -> TrainConfig {
    TrainConfig::new()
        .epochs(1)
        .batch_size(32)
        .learning_rate(0.001)
}

fn bench_target_epoch(c: &mut Criterion) {
    let (x, y) = data();
    let mut group = c.benchmark_group("train/target_epoch");
    group.sample_size(10);
    group.bench_function("tiny_width", |b| {
        b.iter(|| {
            let mut net = models::target_model(491, ModelScale::Tiny, 1).expect("model");
            black_box(Trainer::new(one_epoch()).fit(&mut net, x, y).expect("fit"));
        });
    });
    group.finish();
}

fn bench_substitute_epoch(c: &mut Criterion) {
    let (x, y) = data();
    let mut group = c.benchmark_group("train/substitute_epoch");
    group.sample_size(10);
    group.bench_function("table_iv_tiny_width", |b| {
        b.iter(|| {
            let mut net = models::substitute_model(491, ModelScale::Tiny, 2).expect("model");
            black_box(Trainer::new(one_epoch()).fit(&mut net, x, y).expect("fit"));
        });
    });
    group.finish();
}

fn bench_distillation_epoch(c: &mut Criterion) {
    // The student's soft-label epoch (defensive distillation, T = 50).
    let (x, y) = data();
    let mut teacher = models::target_model(491, ModelScale::Tiny, 3).expect("teacher");
    Trainer::new(
        TrainConfig::new()
            .epochs(5)
            .batch_size(32)
            .temperature(50.0),
    )
    .fit(&mut teacher, x, y)
    .expect("teacher fit");
    let soft = teacher.predict_proba_at(x, 50.0).expect("soft labels");
    let mut group = c.benchmark_group("train/distill_student_epoch");
    group.sample_size(10);
    group.bench_function("t50", |b| {
        b.iter(|| {
            let mut student = models::target_model(491, ModelScale::Tiny, 4).expect("student");
            black_box(
                Trainer::new(one_epoch().temperature(50.0))
                    .fit_soft(&mut student, x, &soft)
                    .expect("student fit"),
            );
        });
    });
    group.finish();
}

fn bench_pca_defense_fit(c: &mut Criterion) {
    // DimReduct (Table VI): PCA(19) + reduced-classifier training.
    let (x, y) = data();
    let mut group = c.benchmark_group("train/pca_defense_fit");
    group.sample_size(10);
    group.bench_function("k19", |b| {
        b.iter(|| {
            let net = models::reduced_model(19, ModelScale::Tiny, 5).expect("reduced");
            black_box(maleva_defense::PcaDefense::fit(19, net, x, y, one_epoch()).expect("fit"));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_target_epoch,
    bench_substitute_epoch,
    bench_distillation_epoch,
    bench_pca_defense_fit
);
criterion_main!(benches);
