//! `bench_gate` — the CI performance-regression gate.
//!
//! ```text
//! bench_gate [--in-dir DIR] [--baseline-dir DIR] [--max-regression F]
//!            [--only FILE]
//! ```
//!
//! Compares freshly produced bench reports (`BENCH_linalg.json`,
//! `BENCH_serve.json`, `BENCH_obs.json` in `--in-dir`, default `.`)
//! against the committed baselines in `--baseline-dir` (default
//! `bench_baselines/`) and exits non-zero if any gated metric regressed
//! by more than `--max-regression` (default 0.20, i.e. 20%).
//! `--only FILE` restricts the gate to the metrics and correctness
//! flags of a single report file, for CI jobs that produce just one.
//!
//! Only **ratio metrics** (speedups, overhead fractions) are gated:
//! ratios compare a kernel against another kernel *on the same
//! hardware*, so the gate is meaningful on any CI runner, unlike raw
//! GFLOP/s or wall-clock numbers, which the reports still carry for
//! human eyes. Correctness booleans (`bit_identical`) are enforced
//! unconditionally — a baseline cannot excuse a wrong answer.

use std::process::ExitCode;

use serde::{Content, Deserialize, Deserializer};

/// A parsed JSON document. The vendored `serde_json` has no `Value`
/// type, but every vendored deserializer speaks the [`Content`] tree —
/// this newtype just captures it whole.
struct Doc(Content);

impl<'de> Deserialize<'de> for Doc {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Doc(deserializer.content()?))
    }
}

impl Doc {
    fn field(&self, key: &str) -> Option<&Content> {
        match &self.0 {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    fn bool_field(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            Content::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Whether a bigger metric value is better or worse.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One gated metric: where it lives and how to judge it.
struct MetricSpec {
    file: &'static str,
    key: &'static str,
    direction: Direction,
    /// Absolute slack added on top of the relative threshold — keeps
    /// near-zero noise-dominated metrics (overhead fractions) from
    /// tripping the gate on measurement jitter.
    abs_slack: f64,
}

const METRICS: &[MetricSpec] = &[
    MetricSpec {
        file: "BENCH_linalg.json",
        key: "speedup_batch64",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.0,
    },
    MetricSpec {
        file: "BENCH_linalg.json",
        key: "blocked_speedup_batch64",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.0,
    },
    MetricSpec {
        file: "BENCH_linalg.json",
        // Simd-over-scalar GFLOP/s ratio on the Table IV substitute
        // shapes at batch >= 64 — the f32 micro-kernel's headline.
        key: "scalar_vs_simd",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.0,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        key: "batched_forward_speedup",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.0,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        key: "batched_vs_unbatched_speedup",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.0,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        // Throughput retained under fault injection (degraded phase /
        // batched phase). A resilience regression — e.g. the server
        // stalling instead of shedding, or a panic taking the scorer
        // down — collapses this ratio. Chaos makes it noisier than the
        // clean-phase ratios, hence the absolute slack.
        key: "degraded_vs_batched_speedup",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.05,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        // Throughput retained with the extraction sentinel enabled but
        // idle (sentinel_idle phase / batched phase). The sentinel adds
        // a per-request window scan; this ratio collapsing means the
        // defense started taxing the hot path.
        key: "sentinel_vs_batched_speedup",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.05,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        // Sentinel-idle p99 over batched p99 — the tail-latency side of
        // the same promise. The latency histogram buckets by powers of
        // two, so one bucket of jitter doubles this ratio; the slack
        // admits exactly that (2.0 passes against a 1.0 baseline) while
        // a real tail regression (the pre-fingerprint-index sentinel
        // measured 4.0) still trips.
        key: "sentinel_idle_p99_ratio",
        direction: Direction::LowerIsBetter,
        abs_slack: 1.0,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        // shards4 over shards1 end-to-end throughput at >= 64
        // connections. The committed baseline is the multi-core story
        // (>= 1.5x); a single-core runner legitimately measures ~1.0,
        // so the slack is wide enough that "no scaling, no regression
        // either" passes while an actual slowdown at 4 shards —
        // cross-shard contention on the hot path — still trips.
        key: "shard_scaling_speedup",
        direction: Direction::HigherIsBetter,
        abs_slack: 0.6,
    },
    MetricSpec {
        file: "BENCH_serve.json",
        // Reload-storm p99 over batched p99: hot model swaps must not
        // stall the scoring tail. Same power-of-two-bucket jitter
        // argument as `sentinel_idle_p99_ratio`, same slack.
        key: "reload_p99_ratio",
        direction: Direction::LowerIsBetter,
        abs_slack: 1.0,
    },
    MetricSpec {
        file: "BENCH_obs.json",
        key: "null_overhead_frac",
        direction: Direction::LowerIsBetter,
        abs_slack: 0.01,
    },
    MetricSpec {
        file: "BENCH_obs.json",
        // Fractional slowdown of a healthy serve-shaped recording loop
        // (request span + stage/latency histograms) with the default
        // SLO burn-rate engine evaluating at a scrape cadence. This
        // regressing means alarm evaluation started taxing the hot
        // path; near-zero and noise-dominated, hence the slack.
        key: "slo_idle_overhead_frac",
        direction: Direction::LowerIsBetter,
        abs_slack: 0.01,
    },
];

/// Files carrying a correctness boolean that must be `true`.
const CORRECTNESS_FLAGS: &[(&str, &str)] = &[
    ("BENCH_linalg.json", "bit_identical"),
    ("BENCH_linalg.json", "simd_within_tolerance"),
    ("BENCH_serve.json", "bit_identical"),
    ("BENCH_serve.json", "shard_bit_identical"),
];

/// Verdict for one gated metric.
struct Verdict {
    file: &'static str,
    key: &'static str,
    baseline: f64,
    candidate: f64,
    passed: bool,
}

/// Pure regression rule, split out for unit testing: does `candidate`
/// regress more than `max_regression` (plus `abs_slack`) vs `baseline`?
fn regressed(
    baseline: f64,
    candidate: f64,
    direction: Direction,
    max_regression: f64,
    abs_slack: f64,
) -> bool {
    match direction {
        Direction::HigherIsBetter => candidate < baseline * (1.0 - max_regression) - abs_slack,
        Direction::LowerIsBetter => candidate > baseline * (1.0 + max_regression) + abs_slack,
    }
}

fn load_json(dir: &str, file: &str) -> Result<Doc, String> {
    let path = format!("{}/{}", dir.trim_end_matches('/'), file);
    let raw = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn get_f64(doc: &Doc, file: &str, key: &str) -> Result<f64, String> {
    doc.f64_field(key)
        .ok_or_else(|| format!("{file} has no numeric field `{key}`"))
}

struct Args {
    in_dir: String,
    baseline_dir: String,
    max_regression: f64,
    only: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        in_dir: ".".to_string(),
        baseline_dir: "bench_baselines".to_string(),
        max_regression: 0.20,
        only: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--in-dir" => args.in_dir = value("in-dir")?,
            "--baseline-dir" => args.baseline_dir = value("baseline-dir")?,
            "--max-regression" => {
                args.max_regression = value("max-regression")?
                    .parse()
                    .map_err(|e| format!("bad --max-regression: {e}"))?;
                if !(0.0..1.0).contains(&args.max_regression) {
                    return Err("--max-regression must be in [0, 1)".into());
                }
            }
            "--only" => {
                let file = value("only")?;
                if !METRICS.iter().any(|s| s.file == file) {
                    return Err(format!("--only {file}: no gated metrics live in that file"));
                }
                args.only = Some(file);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--in-dir DIR] [--baseline-dir DIR] [--max-regression F]\n\
                     \x20                [--only FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let selected = |file: &str| args.only.as_deref().is_none_or(|only| only == file);

    // Correctness flags: unconditional.
    for &(file, key) in CORRECTNESS_FLAGS.iter().filter(|(f, _)| selected(f)) {
        match load_json(&args.in_dir, file).and_then(|doc| {
            doc.bool_field(key)
                .ok_or_else(|| format!("{file} has no boolean field `{key}`"))
        }) {
            Ok(true) => println!("OK    {file:<18} {key} = true"),
            Ok(false) => {
                println!("FAIL  {file:<18} {key} = false (correctness contract violated)");
                failures += 1;
            }
            Err(e) => {
                println!("FAIL  {e}");
                failures += 1;
            }
        }
    }

    // Ratio metrics vs baselines.
    let mut verdicts = Vec::new();
    for spec in METRICS.iter().filter(|s| selected(s.file)) {
        let pair = load_json(&args.in_dir, spec.file).and_then(|cand| {
            let base = load_json(&args.baseline_dir, spec.file)?;
            Ok((
                get_f64(&base, spec.file, spec.key)?,
                get_f64(&cand, spec.file, spec.key)?,
            ))
        });
        match pair {
            Ok((baseline, candidate)) => {
                let passed = !regressed(
                    baseline,
                    candidate,
                    spec.direction,
                    args.max_regression,
                    spec.abs_slack,
                );
                verdicts.push(Verdict {
                    file: spec.file,
                    key: spec.key,
                    baseline,
                    candidate,
                    passed,
                });
            }
            Err(e) => {
                println!("FAIL  {e}");
                failures += 1;
            }
        }
    }
    for v in &verdicts {
        println!(
            "{}  {:<18} {:<30} baseline {:>7.3}  candidate {:>7.3}",
            if v.passed { "OK  " } else { "FAIL" },
            v.file,
            v.key,
            v.baseline,
            v.candidate
        );
        if !v.passed {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} metric(s) regressed more than {:.0}% (or failed correctness)",
            args.max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    let flags_checked = CORRECTNESS_FLAGS
        .iter()
        .filter(|(f, _)| selected(f))
        .count();
    println!(
        "bench_gate: all {} metrics within {:.0}% of baseline",
        verdicts.len() + flags_checked,
        args.max_regression * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_is_better_trips_past_20_percent() {
        // 21% drop: fail. 19% drop: pass.
        assert!(regressed(2.0, 1.58, Direction::HigherIsBetter, 0.20, 0.0));
        assert!(!regressed(2.0, 1.62, Direction::HigherIsBetter, 0.20, 0.0));
        // Improvements always pass.
        assert!(!regressed(2.0, 2.4, Direction::HigherIsBetter, 0.20, 0.0));
    }

    #[test]
    fn lower_is_better_trips_past_20_percent_plus_slack() {
        // Overhead fraction: baseline 0.01, slack 0.01 → limit 0.022.
        assert!(regressed(0.01, 0.03, Direction::LowerIsBetter, 0.20, 0.01));
        assert!(!regressed(0.01, 0.02, Direction::LowerIsBetter, 0.20, 0.01));
        // Noise-level baselines do not trip on jitter.
        assert!(!regressed(
            0.001,
            0.009,
            Direction::LowerIsBetter,
            0.20,
            0.01
        ));
    }

    #[test]
    fn gated_metric_table_is_ratio_only() {
        // Guard against accidentally gating hardware-dependent absolutes.
        // `_vs_` marks kernel-vs-kernel comparisons (e.g.
        // `scalar_vs_simd`), which are ratios by construction.
        for spec in METRICS {
            assert!(
                spec.key.contains("speedup")
                    || spec.key.contains("frac")
                    || spec.key.contains("ratio")
                    || spec.key.contains("_vs_"),
                "{} is not a ratio metric",
                spec.key
            );
        }
    }
}
