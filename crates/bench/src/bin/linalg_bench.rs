//! `linalg_bench` — kernel-level throughput baseline for the
//! cache-blocked matmul stack, written as `BENCH_linalg.json`.
//!
//! ```text
//! linalg_bench [--threads N] [--reps-scale X] [--out PATH] [--out-dir DIR]
//! ```
//!
//! Three kernels are timed at the paper's real shapes — the 4-layer
//! target model's 491→128-style layers at batch 1/8/64/512 and the
//! Table IV substitute model's 491→1200→1500→1300 layers at training
//! batch sizes — plus two end-to-end probes (one training epoch of the
//! target architecture; one JSMA-style per-row probability Jacobian):
//!
//! * `scalar` — the original i-k-j reference kernel;
//! * `blocked` — the cache-blocked single-threaded kernel;
//! * `pooled` — the blocked kernel partitioned over the worker pool
//!   (`--threads`, `MALEVA_THREADS`, or hardware default);
//! * `simd` — the f32 panel micro-kernel backend (DESIGN.md §13),
//!   checked against the scalar reference within its 1e-5 relative
//!   tolerance instead of bitwise.
//!
//! The run **fails** unless every blocked/pooled result is bit-identical
//! to the scalar kernel, every simd result sits within tolerance, the
//! best f64 speedup at batch >= 64 reaches 1.5x, and the best
//! `scalar_vs_simd` ratio on the Table IV substitute shapes at
//! batch >= 64 reaches 1.5x — the floors the CI perf gate then defends
//! against regression (see `bench_gate`).

use std::process::ExitCode;
use std::time::Instant;

use maleva_linalg::{backend, kernels, pool, BackendKind, Matrix};
use maleva_nn::{Activation, NetworkBuilder, TrainConfig, Trainer};
use serde::Serialize;

struct Args {
    threads: usize,
    reps_scale: f64,
    out: String,
    out_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        reps_scale: 1.0,
        out: "BENCH_linalg.json".to_string(),
        out_dir: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--threads" => {
                args.threads = value("threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--reps-scale" => {
                args.reps_scale = value("reps-scale")?
                    .parse()
                    .map_err(|e| format!("bad --reps-scale: {e}"))?;
                if args.reps_scale <= 0.0 {
                    return Err("--reps-scale must be positive".into());
                }
            }
            "--out" => args.out = value("out")?,
            "--out-dir" => args.out_dir = Some(value("out-dir")?),
            "--help" | "-h" => {
                println!(
                    "usage: linalg_bench [--threads N] [--reps-scale X] [--out PATH] [--out-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// One benchmarked GEMM shape: `(batch x k) * (k x n)`.
#[derive(Serialize)]
struct ShapeResult {
    name: String,
    batch: usize,
    k: usize,
    n: usize,
    reps: usize,
    scalar_gflops: f64,
    blocked_gflops: f64,
    pooled_gflops: f64,
    simd_gflops: f64,
    blocked_speedup: f64,
    pooled_speedup: f64,
    simd_speedup: f64,
    bit_identical: bool,
    simd_within_tolerance: bool,
}

/// The whole `BENCH_linalg.json` document.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    threads: usize,
    bit_identical: bool,
    /// Headline gate metric: best speedup over the scalar kernel
    /// (blocked or pooled) across shapes with batch >= 64.
    speedup_batch64: f64,
    /// Best blocked-only (single-thread) speedup at batch >= 64 —
    /// isolates cache blocking from parallelism.
    blocked_speedup_batch64: f64,
    /// Best simd-over-scalar GFLOP/s ratio on the Table IV substitute
    /// shapes at batch >= 64 — the f32 micro-kernel's headline, gated
    /// with a hard 1.5x floor here and a regression gate in CI.
    scalar_vs_simd: f64,
    /// Every simd result within 1e-5 relative tolerance of the scalar
    /// reference (the Simd backend's correctness contract).
    simd_within_tolerance: bool,
    shapes: Vec<ShapeResult>,
    /// One seeded training epoch of the target architecture
    /// (491 -> 512 -> 256 -> 2, batch 256, 512 samples).
    epoch_ms: f64,
    /// One JSMA-style per-row probability Jacobian on the same
    /// architecture (the per-iteration attack cost).
    jsma_row_jacobian_us: f64,
}

/// Deterministic pseudo-random matrix with ~15% exact zeros, matching
/// the ReLU-sparsified activations the kernels see in training.
fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    Matrix::from_fn(rows, cols, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (s >> 33) as f64 / (1u64 << 31) as f64;
        if u < 0.15 {
            0.0
        } else {
            u - 0.5
        }
    })
}

fn best_secs(reps: usize, mut f: impl FnMut() -> Matrix) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        let el = t.elapsed().as_secs_f64();
        assert!(!out.is_empty());
        best = best.min(el);
    }
    best
}

fn bit_identical(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The Simd backend's correctness contract, matching the cross-backend
/// differential suite: every element within 1e-5 of the f64 scalar
/// reference, relative to the accumulated absolute mass |A|·|B|.
fn within_simd_tolerance(reference: &Matrix, got: &Matrix, a: &Matrix, b: &Matrix) -> bool {
    if reference.shape() != got.shape() {
        return false;
    }
    let abs_a = Matrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c).abs());
    let abs_b = Matrix::from_fn(b.rows(), b.cols(), |r, c| b.get(r, c).abs());
    let scale = kernels::matmul_scalar(&abs_a, &abs_b).expect("abs-mass scale");
    let ok = reference
        .iter()
        .zip(got.iter())
        .zip(scale.iter())
        .all(|((r, g), s)| (r - g).abs() <= 1e-5 * (s + 1.0));
    ok
}

fn bench_shape(
    name: &str,
    batch: usize,
    k: usize,
    n: usize,
    reps: usize,
    threads: usize,
) -> ShapeResult {
    let a = test_matrix(batch, k, (batch * 1_000_000 + k * 1000 + n) as u64);
    let b = test_matrix(k, n, (k * 1_000_000 + n) as u64);

    let simd = backend::of(BackendKind::Simd);
    let reference = kernels::matmul_scalar(&a, &b).expect("scalar kernel");
    let blocked = kernels::matmul_blocked(&a, &b).expect("blocked kernel");
    let pooled = kernels::matmul_pooled(&a, &b, threads).expect("pooled kernel");
    let simd_out = simd.matmul(&a, &b).expect("simd backend");
    let identical = bit_identical(&reference, &blocked) && bit_identical(&reference, &pooled);
    let simd_ok = within_simd_tolerance(&reference, &simd_out, &a, &b);

    let scalar_s = best_secs(reps, || kernels::matmul_scalar(&a, &b).expect("scalar"));
    let blocked_s = best_secs(reps, || kernels::matmul_blocked(&a, &b).expect("blocked"));
    let pooled_s = best_secs(reps, || {
        kernels::matmul_pooled(&a, &b, threads).expect("pooled")
    });
    let simd_s = best_secs(reps, || simd.matmul(&a, &b).expect("simd"));

    let gflops = |secs: f64| 2.0 * (batch * k * n) as f64 / secs / 1e9;
    ShapeResult {
        name: name.to_string(),
        batch,
        k,
        n,
        reps,
        scalar_gflops: gflops(scalar_s),
        blocked_gflops: gflops(blocked_s),
        pooled_gflops: gflops(pooled_s),
        simd_gflops: gflops(simd_s),
        blocked_speedup: scalar_s / blocked_s,
        pooled_speedup: scalar_s / pooled_s,
        simd_speedup: scalar_s / simd_s,
        bit_identical: identical,
        simd_within_tolerance: simd_ok,
    }
}

/// One seeded epoch of the target architecture on synthetic data.
fn epoch_probe() -> f64 {
    let samples = 512;
    let x = test_matrix(samples, 491, 77);
    let labels: Vec<usize> = (0..samples).map(|i| i % 2).collect();
    let mut net = NetworkBuilder::new(491)
        .layer(512, Activation::ReLU)
        .layer(256, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(42)
        .build()
        .expect("target-architecture network");
    let config = TrainConfig::new()
        .epochs(1)
        .batch_size(256)
        .learning_rate(0.01)
        .seed(42);
    let t = Instant::now();
    Trainer::new(config)
        .fit(&mut net, &x, &labels)
        .expect("one training epoch");
    t.elapsed().as_secs_f64() * 1e3
}

/// The per-iteration JSMA cost: one probability Jacobian of a 491-dim
/// sample against the target architecture.
fn jsma_row_probe() -> f64 {
    let net = NetworkBuilder::new(491)
        .layer(512, Activation::ReLU)
        .layer(256, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(7)
        .build()
        .expect("target-architecture network");
    let sample: Vec<f64> = (0..491).map(|i| ((i * 37) % 11) as f64 / 11.0).collect();
    let reps = 20;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let jac = net
            .probability_jacobian(&sample, 1.0)
            .expect("probability jacobian");
        let el = t.elapsed().as_secs_f64();
        assert_eq!(jac.shape(), (2, 491));
        best = best.min(el);
    }
    best * 1e6
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.threads > 0 {
        pool::set_threads(args.threads);
    }
    let threads = pool::effective_threads();
    eprintln!("[linalg_bench] timing kernels with {threads} thread(s) ...");

    // The paper's shapes: the 4-layer target model's layer products at
    // serving/training batch sizes, then the Table IV substitute model
    // (491 -> 1200 -> 1500 -> 1300 -> 2) at attack/training batches.
    let scale = |r: usize| ((r as f64 * args.reps_scale).round() as usize).max(1);
    let specs: [(&str, usize, usize, usize, usize); 10] = [
        ("target_in", 1, 491, 128, scale(9)),
        ("target_in", 8, 491, 128, scale(9)),
        ("target_in", 64, 491, 128, scale(7)),
        ("target_in", 512, 491, 128, scale(5)),
        ("target_hidden", 64, 128, 128, scale(9)),
        ("target_hidden", 512, 128, 128, scale(7)),
        ("substitute_l1", 64, 491, 1200, scale(3)),
        ("substitute_l2", 64, 1200, 1500, scale(3)),
        ("substitute_l2", 256, 1200, 1500, scale(2)),
        ("substitute_l3", 64, 1500, 1300, scale(3)),
    ];
    let mut shapes = Vec::with_capacity(specs.len());
    for (name, batch, k, n, reps) in specs {
        let r = bench_shape(name, batch, k, n, reps, threads);
        println!(
            "{:>14} m={:<4} k={:<5} n={:<5} scalar {:>5.2} GF/s  blocked {:>5.2} GF/s ({:>4.2}x)  \
             pooled {:>5.2} GF/s ({:>4.2}x)  simd {:>5.2} GF/s ({:>4.2}x)  bitident={} simdtol={}",
            r.name,
            r.batch,
            r.k,
            r.n,
            r.scalar_gflops,
            r.blocked_gflops,
            r.blocked_speedup,
            r.pooled_gflops,
            r.pooled_speedup,
            r.simd_gflops,
            r.simd_speedup,
            r.bit_identical,
            r.simd_within_tolerance
        );
        shapes.push(r);
    }

    let bit_ok = shapes.iter().all(|s| s.bit_identical);
    let simd_tol_ok = shapes.iter().all(|s| s.simd_within_tolerance);
    let speedup_batch64 = shapes
        .iter()
        .filter(|s| s.batch >= 64)
        .map(|s| s.blocked_speedup.max(s.pooled_speedup))
        .fold(0.0, f64::max);
    let blocked_speedup_batch64 = shapes
        .iter()
        .filter(|s| s.batch >= 64)
        .map(|s| s.blocked_speedup)
        .fold(0.0, f64::max);
    let scalar_vs_simd = shapes
        .iter()
        .filter(|s| s.batch >= 64 && s.name.starts_with("substitute"))
        .map(|s| s.simd_speedup)
        .fold(0.0, f64::max);

    eprintln!("[linalg_bench] end-to-end probes ...");
    let epoch_ms = epoch_probe();
    let jsma_row_jacobian_us = jsma_row_probe();
    println!(
        "epoch (491->512->256->2, 512 samples): {epoch_ms:.1} ms | \
         JSMA row Jacobian: {jsma_row_jacobian_us:.0} us"
    );
    println!(
        "bit_identical: {bit_ok} | simd_within_tolerance: {simd_tol_ok} | \
         best speedup at batch >= 64: {speedup_batch64:.2}x \
         (blocked-only {blocked_speedup_batch64:.2}x, scalar_vs_simd {scalar_vs_simd:.2}x)"
    );

    let report = BenchReport {
        bench: "linalg_bench",
        threads,
        bit_identical: bit_ok,
        speedup_batch64,
        blocked_speedup_batch64,
        scalar_vs_simd,
        simd_within_tolerance: simd_tol_ok,
        shapes,
        epoch_ms,
        jsma_row_jacobian_us,
    };
    let json = serde_json::to_string_pretty(&report).expect("encode report");
    let out_path = match &args.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out-dir");
            format!("{}/{}", dir.trim_end_matches('/'), args.out)
        }
        None => args.out.clone(),
    };
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");

    if !bit_ok {
        eprintln!("error: blocked/pooled kernels diverged from the scalar reference");
        return ExitCode::FAILURE;
    }
    if !simd_tol_ok {
        eprintln!("error: simd backend exceeded its 1e-5 tolerance vs the scalar reference");
        return ExitCode::FAILURE;
    }
    if speedup_batch64 < 1.5 {
        eprintln!("error: best batch>=64 speedup {speedup_batch64:.2}x is below the 1.5x floor");
        return ExitCode::FAILURE;
    }
    if scalar_vs_simd < 1.5 {
        eprintln!(
            "error: scalar_vs_simd {scalar_vs_simd:.2}x on substitute shapes at batch>=64 \
             is below the 1.5x floor"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
