//! `obs_overhead` — micro-benchmark proving the `maleva-obs` tracer is
//! cheap enough to leave compiled into the hot paths, written as
//! `BENCH_obs.json`.
//!
//! ```text
//! obs_overhead [--seed N] [--reps R] [--out PATH] [--trace-file PATH] [--out-dir DIR]
//! ```
//!
//! Runs the two instrumented workloads — a JSMA batch attack
//! (`attack.batch` / `attack.row` spans) and a training run
//! (`train.fit` / `train.epoch` spans) — under three sink modes:
//!
//! * `disabled` — no sink installed; every span is a single relaxed
//!   atomic load (the production default),
//! * `null` — records are fully serialized then discarded (the cost of
//!   tracing itself), and
//! * `file` — records stream to a JSONL file (the cost with I/O).
//!
//! Each mode takes the best of `--reps` runs. The bench hard-fails if
//! the workload outputs are not bit-identical across modes (tracing
//! must be a pure observer) or if the null-sink overhead over disabled
//! reaches 5%.
//!
//! A third measurement prices the serving-side observability tax: a
//! loop of simulated healthy request recordings (request span, six
//! stage histograms, the latency histogram) with the default SLO
//! burn-rate engine observing and evaluating at a scrape-like cadence,
//! against the same loop without the engine — reported as
//! `slo_idle_overhead_frac` and gated by `bench_gate`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use maleva_attack::parallel::craft_batch_parallel;
use maleva_attack::Jsma;
use maleva_core::models::target_model;
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_linalg::Matrix;
use maleva_nn::{Network, TrainConfig, Trainer};
use maleva_obs::trace;
use maleva_serve::{default_serve_slos, Metrics, SloRuntime, StageTimes};
use serde::Serialize;

/// Null-sink overhead at or above this fraction fails the bench.
const MAX_NULL_OVERHEAD: f64 = 0.05;

/// Simulated request recordings per SLO-idle loop.
const SLO_IDLE_REQUESTS: u64 = 200_000;
/// The engine evaluates once per this many recordings — a
/// metrics-scrape cadence, still far more often than production would
/// (one evaluation per ~150 µs of simulated traffic, versus every few
/// seconds from a real scraper).
const SLO_EVAL_EVERY: u64 = 1024;

struct Args {
    seed: u64,
    reps: usize,
    out: String,
    trace_file: String,
    out_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        reps: 5,
        out: "BENCH_obs.json".to_string(),
        trace_file: "obs_overhead_trace.jsonl".to_string(),
        out_dir: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--seed" => {
                args.seed = value("seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--reps" => {
                args.reps = value("reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?
            }
            "--out" => args.out = value("out")?,
            "--trace-file" => args.trace_file = value("trace-file")?,
            "--out-dir" => args.out_dir = Some(value("out-dir")?),
            "--help" | "-h" => {
                println!(
                    "usage: obs_overhead [--seed N] [--reps R] [--out PATH] \
                     [--trace-file PATH] [--out-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.reps == 0 {
        return Err("--reps must be positive".into());
    }
    // Route both artifacts (report + trace scratch file) through
    // --out-dir so local runs do not litter the repo root.
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create --out-dir {dir}: {e}"))?;
        let dir = dir.trim_end_matches('/');
        args.out = format!("{dir}/{}", args.out);
        args.trace_file = format!("{dir}/{}", args.trace_file);
    }
    Ok(args)
}

/// One workload measured under one sink mode.
#[derive(Serialize)]
struct ModeResult {
    mode: &'static str,
    best_ms: f64,
    /// Fractional slowdown over the disabled mode (0.02 = 2%).
    overhead_frac: f64,
}

/// One instrumented workload across all sink modes.
#[derive(Serialize)]
struct WorkloadResult {
    name: &'static str,
    bit_identical: bool,
    modes: Vec<ModeResult>,
}

/// The SLO-idle measurement: the cost of burn-rate evaluation over a
/// healthy request stream.
#[derive(Serialize)]
struct SloIdleResult {
    requests: u64,
    eval_every: u64,
    baseline_ms: f64,
    with_slo_ms: f64,
    /// Fractional slowdown of the recording loop with the engine on.
    overhead_frac: f64,
}

/// The whole `BENCH_obs.json` document.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    seed: u64,
    reps: usize,
    max_null_overhead_frac: f64,
    /// Worst null-sink overhead across workloads — the headline number.
    null_overhead_frac: f64,
    /// The SLO engine's idle tax — gated by `bench_gate`.
    slo_idle_overhead_frac: f64,
    trace_records_written: usize,
    workloads: Vec<WorkloadResult>,
    slo_idle: SloIdleResult,
}

/// Order-sensitive FNV-style fold of raw f64 bits: equal iff every
/// value is bit-identical in sequence.
fn fold_bits(acc: u64, v: f64) -> u64 {
    (acc ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01b3)
}

fn matrix_fingerprint(m: &Matrix) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            acc = fold_bits(acc, m.get(r, c));
        }
    }
    acc
}

fn network_fingerprint(net: &Network, probe: &Matrix) -> u64 {
    let p = net.predict_proba(probe).expect("probe forward");
    matrix_fingerprint(&p)
}

/// Measures `workload` once per rep and returns (best seconds,
/// fingerprint). Panics if reps disagree on the fingerprint.
fn best_of(reps: usize, workload: &dyn Fn() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut fingerprint = None;
    for _ in 0..reps {
        let t = Instant::now();
        let fp = workload();
        best = best.min(t.elapsed().as_secs_f64());
        assert!(
            *fingerprint.get_or_insert(fp) == fp,
            "workload is not deterministic across reps"
        );
    }
    (best, fingerprint.expect("reps >= 1"))
}

/// Runs one workload under disabled/null/file sinks and reports the
/// per-mode best times plus cross-mode bit-identity.
fn measure(
    name: &'static str,
    reps: usize,
    trace_file: &str,
    workload: &dyn Fn() -> u64,
) -> WorkloadResult {
    let modes: [(&'static str, trace::Sink); 3] = [
        ("disabled", trace::Sink::Disabled),
        ("null", trace::Sink::Null),
        ("file", trace::Sink::File(trace_file.into())),
    ];
    // Untimed warm-up so the first measured mode is not penalized for
    // cold caches.
    trace::install(trace::Sink::Disabled).expect("install sink");
    let _ = workload();
    let mut results = Vec::new();
    let mut fingerprints = Vec::new();
    let mut disabled_s = f64::NAN;
    for (mode, sink) in modes {
        trace::install(sink).expect("install sink");
        let (best_s, fp) = best_of(reps, workload);
        trace::flush();
        if mode == "disabled" {
            disabled_s = best_s;
        }
        fingerprints.push(fp);
        results.push(ModeResult {
            mode,
            best_ms: best_s * 1e3,
            overhead_frac: best_s / disabled_s - 1.0,
        });
    }
    trace::install(trace::Sink::Disabled).expect("reset sink");
    WorkloadResult {
        name,
        bit_identical: fingerprints.windows(2).all(|w| w[0] == w[1]),
        modes: results,
    }
}

/// One pass of the serve-shaped recording loop: a request span (sink
/// disabled, the production default), the six stage histograms, and
/// the request latency histogram — with the default SLO engine
/// evaluating every [`SLO_EVAL_EVERY`] requests when `with_slo`.
/// Returns elapsed seconds; panics if an alarm fires (the stream is
/// healthy by construction, so firing would mean a broken engine, and
/// a firing alarm does different work than an idle one).
fn slo_idle_loop(with_slo: bool) -> f64 {
    let metrics = Metrics::new();
    let slo = with_slo.then(|| SloRuntime::new(default_serve_slos(), metrics.registry()));
    let stages = StageTimes {
        queue_wait: Duration::from_micros(40),
        batch_wait: Duration::from_micros(25),
        cache_lookup: Duration::from_micros(2),
        sentinel_check: Duration::from_micros(3),
        inference: Duration::from_micros(110),
        serialize: Duration::from_micros(4),
    };
    let t = Instant::now();
    for i in 0..SLO_IDLE_REQUESTS {
        let span = trace::Span::enter("bench.request");
        metrics.record_stages(&stages);
        metrics.record_latency(Duration::from_micros(180 + (i & 63)));
        if let Some(slo) = &slo {
            if i % SLO_EVAL_EVERY == 0 {
                let report = slo.observe_and_evaluate(metrics.registry());
                assert!(
                    report.alarms.iter().all(|a| !a.firing),
                    "healthy stream fired an SLO alarm"
                );
            }
        }
        drop(span);
    }
    t.elapsed().as_secs_f64()
}

/// Best-of-`reps` for the recording loop with and without the engine.
fn measure_slo_idle(reps: usize) -> SloIdleResult {
    // Untimed warm-up of both shapes.
    let _ = slo_idle_loop(false);
    let _ = slo_idle_loop(true);
    let mut baseline_s = f64::INFINITY;
    let mut with_slo_s = f64::INFINITY;
    for _ in 0..reps {
        baseline_s = baseline_s.min(slo_idle_loop(false));
        with_slo_s = with_slo_s.min(slo_idle_loop(true));
    }
    SloIdleResult {
        requests: SLO_IDLE_REQUESTS,
        eval_every: SLO_EVAL_EVERY,
        baseline_ms: baseline_s * 1e3,
        with_slo_ms: with_slo_s * 1e3,
        overhead_frac: with_slo_s / baseline_s - 1.0,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[obs_overhead] building tiny context (seed={}) ...",
        args.seed
    );
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), args.seed).expect("context");
    let batch = {
        let full = ctx.attack_batch();
        let idx: Vec<usize> = (0..full.rows().min(96)).collect();
        full.select_rows(&idx)
    };

    // Attack workload: the instrumented parallel JSMA batch
    // (attack.batch + one attack.row span and two counter bumps per
    // row). Two threads keeps the span interleaving multi-threaded.
    let jsma = Jsma::new(0.15, 0.025);
    let target = ctx.target();
    let attack_workload = || {
        let (adv, outcomes) = craft_batch_parallel(&jsma, target, &batch, 2).expect("craft");
        let evaded = outcomes.iter().filter(|o| o.evaded).count() as u64;
        matrix_fingerprint(&adv) ^ evaded
    };

    // Train workload: the instrumented trainer (train.fit + per-epoch
    // train.epoch spans and the train.epoch_stats event).
    let train_cfg = TrainConfig::new()
        .epochs(24)
        .batch_size(64)
        .learning_rate(0.005);
    let x = &ctx.x_train;
    let y: &[usize] = &ctx.y_train;
    let probe = {
        let idx: Vec<usize> = (0..x.rows().min(64)).collect();
        x.select_rows(&idx)
    };
    let seed = args.seed;
    let scale = ctx.scale.model_scale;
    let train_workload = move || {
        let mut net = target_model(x.cols(), scale, seed ^ 0xB0).expect("model");
        let report = Trainer::new(train_cfg.clone())
            .fit(&mut net, x, y)
            .expect("fit");
        fold_bits(network_fingerprint(&net, &probe), report.final_loss())
    };

    let workloads = vec![
        measure(
            "attack_jsma_batch",
            args.reps,
            &args.trace_file,
            &attack_workload,
        ),
        measure("train_epochs", args.reps, &args.trace_file, &train_workload),
    ];
    let trace_records_written = std::fs::read_to_string(&args.trace_file)
        .map(|s| s.lines().count())
        .unwrap_or(0);

    let null_overhead_frac = workloads
        .iter()
        .flat_map(|w| w.modes.iter())
        .filter(|m| m.mode == "null")
        .map(|m| m.overhead_frac)
        .fold(f64::NEG_INFINITY, f64::max);
    let bit_identical = workloads.iter().all(|w| w.bit_identical);

    trace::install(trace::Sink::Disabled).expect("reset sink");
    let slo_idle = measure_slo_idle(args.reps);

    for w in &workloads {
        for m in &w.modes {
            println!(
                "{:<18} {:<9} best {:>8.1} ms  overhead {:>+6.2}%",
                w.name,
                m.mode,
                m.best_ms,
                m.overhead_frac * 100.0
            );
        }
        println!("{:<18} bit_identical: {}", w.name, w.bit_identical);
    }
    println!(
        "worst null-sink overhead: {:+.2}% (limit {:.0}%), trace records written: {}",
        null_overhead_frac * 100.0,
        MAX_NULL_OVERHEAD * 100.0,
        trace_records_written
    );
    println!(
        "slo idle tax: {:>8.1} ms -> {:>8.1} ms over {} requests \
         (eval every {}), overhead {:+.2}%",
        slo_idle.baseline_ms,
        slo_idle.with_slo_ms,
        slo_idle.requests,
        slo_idle.eval_every,
        slo_idle.overhead_frac * 100.0
    );

    let report = BenchReport {
        bench: "obs_overhead",
        seed: args.seed,
        reps: args.reps,
        max_null_overhead_frac: MAX_NULL_OVERHEAD,
        null_overhead_frac,
        slo_idle_overhead_frac: slo_idle.overhead_frac,
        trace_records_written,
        workloads,
        slo_idle,
    };
    let json = serde_json::to_string_pretty(&report).expect("encode report");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("wrote {}", args.out);

    if !bit_identical {
        eprintln!("error: workload outputs changed across sink modes");
        return ExitCode::FAILURE;
    }
    if null_overhead_frac >= MAX_NULL_OVERHEAD {
        eprintln!(
            "error: null-sink overhead {:.2}% reached the {:.0}% limit",
            null_overhead_frac * 100.0,
            MAX_NULL_OVERHEAD * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
