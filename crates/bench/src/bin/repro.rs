//! `repro` — regenerates every table and figure of *"Malware Evasion
//! Attack and Defense"* (Huang et al., DSN 2019) on the synthetic world.
//!
//! ```text
//! repro [--scale tiny|quick|paper] [--seed N] [--exp ID]
//!       [--checkpoint-dir DIR [--checkpoint-every K] [--resume]]
//!       [--trace-out FILE] [--manifest-out FILE] [--threads N]
//!       [--backend scalar|blocked|pooled|simd]
//!
//! IDs: table1 table2 table3 table4 figure1 figure2 fig3a fig3b
//!      fig4a fig4b fig4c fig5a fig5b live table5 table6 all
//! ```
//!
//! `--trace-out FILE` streams structured JSONL spans (pipeline stages,
//! training epochs, attack batches) to FILE, or to stderr with `-`.
//! Every run writes a provenance manifest (seed, config hash, per-phase
//! wall-clock) to `--manifest-out` (default `manifest.json`).
//!
//! With `--checkpoint-dir` the target-model training snapshots its full
//! state every K epochs (default 1); re-running with `--resume` after an
//! interruption continues from the snapshot and produces bit-identical
//! results to an uninterrupted run.
//!
//! Absolute numbers will not match the paper (the substrate is a
//! simulator, not McAfee's production corpus); the printed paper values
//! are reproduced alongside for shape comparison. See EXPERIMENTS.md.

use std::process::ExitCode;

use maleva_attack::sweep::SweepAxis;
use maleva_core::{blackbox, defenses, greybox, live, whitebox};
use maleva_core::{CheckpointPlan, ExperimentContext, ExperimentScale};
use maleva_nn::Network;
use maleva_obs::trace;

struct Args {
    scale: ExperimentScale,
    seed: u64,
    exp: String,
    csv_dir: Option<String>,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
    resume: bool,
    trace_out: Option<String>,
    manifest_out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = ExperimentScale::quick();
    let mut seed = 42u64;
    let mut exp = "all".to_string();
    let mut csv_dir = None;
    let mut checkpoint_dir = None;
    let mut checkpoint_every = 1usize;
    let mut resume = false;
    let mut trace_out = None;
    let mut manifest_out = "manifest.json".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = match v.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--exp" => {
                exp = argv.next().ok_or("--exp needs a value")?;
            }
            "--csv-dir" => {
                csv_dir = Some(argv.next().ok_or("--csv-dir needs a value")?);
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(argv.next().ok_or("--checkpoint-dir needs a value")?);
            }
            "--checkpoint-every" => {
                checkpoint_every = argv
                    .next()
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if checkpoint_every == 0 {
                    return Err("--checkpoint-every must be positive".to_string());
                }
            }
            "--resume" => {
                resume = true;
            }
            "--trace-out" => {
                trace_out = Some(argv.next().ok_or("--trace-out needs a value")?);
            }
            "--manifest-out" => {
                manifest_out = argv.next().ok_or("--manifest-out needs a value")?;
            }
            "--threads" => {
                let n: usize = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be positive".to_string());
                }
                maleva_linalg::pool::set_threads(n);
            }
            "--backend" => {
                let kind: maleva_linalg::BackendKind = argv
                    .next()
                    .ok_or("--backend needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --backend: {e}"))?;
                maleva_linalg::set_backend(Some(kind));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale tiny|quick|paper] [--seed N] [--exp ID] [--csv-dir DIR]\n\
                     \x20           [--checkpoint-dir DIR [--checkpoint-every K] [--resume]]\n\
                     \x20           [--trace-out FILE] [--manifest-out FILE] [--threads N]\n\
                     \x20           [--backend scalar|blocked|pooled|simd]\n\
                     IDs: table1 table2 table3 table4 figure1 figure2 fig3a fig3b\n\
                     \x20     fig4a fig4b fig4c fig5a fig5b live table5 table6 all"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if checkpoint_dir.is_none() && resume {
        return Err("--resume requires --checkpoint-dir".to_string());
    }
    Ok(Args {
        scale,
        seed,
        exp,
        csv_dir,
        checkpoint_dir,
        checkpoint_every,
        resume,
        trace_out,
        manifest_out,
    })
}

/// Lazily-built shared state: the context plus the grey-box substitute.
struct Session {
    ctx: ExperimentContext,
    substitute: Option<Network>,
    samples: usize,
    csv_dir: Option<String>,
}

impl Session {
    fn new(args: &Args) -> Self {
        eprintln!(
            "[repro] building context (scale={}, seed={}) ...",
            args.scale.name, args.seed
        );
        let t = std::time::Instant::now();
        let plan = match &args.checkpoint_dir {
            Some(dir) => {
                eprintln!(
                    "[repro] checkpointing target training into {dir} every {} epoch(s){}",
                    args.checkpoint_every,
                    if args.resume {
                        ", resuming if possible"
                    } else {
                        ""
                    }
                );
                CheckpointPlan::new(dir, args.checkpoint_every, args.resume)
            }
            None => CheckpointPlan::none(),
        };
        let ctx = ExperimentContext::build_with_checkpoints(args.scale.clone(), args.seed, plan)
            .expect("context construction");
        eprintln!("[repro] context ready in {:.1?}", t.elapsed());
        let samples = ctx.scale.attack_samples;
        if let Some(dir) = &args.csv_dir {
            std::fs::create_dir_all(dir).expect("create --csv-dir");
        }
        Session {
            ctx,
            substitute: None,
            samples,
            csv_dir: args.csv_dir.clone(),
        }
    }

    /// Writes a curve as `<csv_dir>/<name>.csv` when --csv-dir is set.
    fn emit_csv(&self, name: &str, curve: &maleva_eval::SecurityCurve) {
        if let Some(dir) = &self.csv_dir {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, curve.to_csv()).expect("write csv");
            eprintln!("[repro] wrote {path}");
        }
    }

    fn substitute(&mut self) -> &Network {
        if self.substitute.is_none() {
            eprintln!("[repro] training substitute model (Table IV) ...");
            let t = std::time::Instant::now();
            self.substitute = Some(
                greybox::train_substitute(&self.ctx, self.ctx.seed ^ 0x5B).expect("substitute"),
            );
            eprintln!("[repro] substitute ready in {:.1?}", t.elapsed());
        }
        self.substitute.as_ref().expect("just built")
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let all = [
        "table1", "table2", "table3", "table4", "figure1", "fig3a", "fig3b", "fig4a", "fig4b",
        "fig4c", "fig5a", "fig5b", "live", "table5", "table6", "figure2",
    ];
    let extras = ["ablations", "ensemble", "adaptive", "osshift"];
    let selected: Vec<&str> = if args.exp == "all" {
        all.to_vec()
    } else if all.contains(&args.exp.as_str()) || extras.contains(&args.exp.as_str()) {
        vec![args.exp.as_str()]
    } else {
        eprintln!("error: unknown experiment id: {}", args.exp);
        return ExitCode::FAILURE;
    };

    if let Some(path) = &args.trace_out {
        let sink = if path == "-" {
            trace::Sink::Stderr
        } else {
            trace::Sink::File(path.into())
        };
        if let Err(e) = trace::install(sink) {
            eprintln!("error: cannot open --trace-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let build_start = std::time::Instant::now();
    let mut session = Session::new(&args);
    let mut manifest = maleva_obs::ManifestBuilder::new("repro")
        .seed(args.seed)
        .scale(args.scale.name)
        .config(&format!(
            "repro scale={} seed={} exp={}",
            args.scale.name, args.seed, args.exp
        ))
        .crate_version("maleva-bench", env!("CARGO_PKG_VERSION"))
        .phase("build_context", build_start.elapsed());
    let (tpr, tnr) = session.ctx.baseline_rates().expect("baseline");
    println!(
        "=== maleva repro | scale={} seed={} ===",
        args.scale.name, args.seed
    );
    let auc = session
        .ctx
        .target_auc()
        .expect("auc")
        .map(|a| format!("{a:.3}"))
        .unwrap_or_else(|| "nan".to_string());
    println!(
        "baseline: malware TPR {tpr:.3} (paper 0.883) | clean TNR {tnr:.3} (paper 0.964) | AUC {auc}\n"
    );

    for exp in selected {
        let t = std::time::Instant::now();
        let mut span = maleva_obs::Span::enter("repro.experiment");
        span.record("exp", exp);
        run_experiment(exp, &mut session);
        drop(span);
        let elapsed = t.elapsed();
        manifest = manifest.phase(exp, elapsed);
        eprintln!("[repro] {exp} finished in {elapsed:.1?}\n");
    }

    match manifest
        .build()
        .write_to(std::path::Path::new(&args.manifest_out))
    {
        Ok(()) => eprintln!("[repro] wrote provenance manifest to {}", args.manifest_out),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", args.manifest_out);
            return ExitCode::FAILURE;
        }
    }
    trace::flush();
    ExitCode::SUCCESS
}

fn run_experiment(id: &str, s: &mut Session) {
    match id {
        "table1" => table1(s),
        "table2" => table2(s),
        "table3" => table3(s),
        "table4" => table4(s),
        "figure1" => figure1(s),
        "fig3a" => fig3a(s),
        "fig3b" => fig3b(s),
        "fig4a" => fig4a(s),
        "fig4b" => fig4b(s),
        "fig4c" => fig4c(s),
        "fig5a" => fig5(s, true),
        "fig5b" => fig5(s, false),
        "live" => live_test(s),
        "table5" | "table6" => tables_5_and_6(s),
        "figure2" => figure2(s),
        "ablations" => ablations(s),
        "ensemble" => ensemble_transfer(s),
        "adaptive" => adaptive_squeeze(s),
        "osshift" => os_shift(s),
        other => unreachable!("unknown experiment {other}"),
    }
}

fn table1(s: &mut Session) {
    println!("--- Table I: the dataset ---");
    println!("{}", s.ctx.dataset.render_table_i());
    println!(
        "(paper: train 57170 = 28594 clean + 28576 malware; val 578; test 45028 = 16154 + 28874)\n"
    );
}

fn table2(s: &mut Session) {
    println!("--- Table II: excerpt of a log file ---");
    let prog = &s.ctx.dataset.test()[0];
    let log = prog.render_log(s.ctx.world.vocab());
    for line in log.lines().take(10) {
        println!("{line}");
    }
    println!();
}

fn table3(s: &mut Session) {
    println!("--- Table III: excerpt of the API features (indices 475-484) ---");
    let vocab = s.ctx.world.vocab();
    for i in 475..485.min(vocab.len()) {
        println!("{i} {}", vocab.name(i).expect("in range"));
    }
    println!("(paper shows 475 waitmessage ... 484 writeprofilestringa)\n");
}

fn table4(s: &mut Session) {
    println!("--- Table IV: the substitute model ---");
    let spec = &s.ctx.scale.dataset;
    println!("{} balanced training data", spec.train_total());
    let sub = s.substitute();
    let dims = sub.dims();
    println!("{}-layer DNN", dims.len());
    for (i, d) in dims.iter().enumerate() {
        println!("layer {} : {} nodes", i + 1, d);
    }
    println!("(paper: 491 / 1200 / 1500 / 1300 / 2 at full width)\n");
}

fn figure1(s: &mut Session) {
    println!("--- Figure 1: generating one adversarial example ---");
    let ctx = &s.ctx;
    let batch = ctx.attack_batch();
    let jsma = maleva_attack::Jsma::new(0.1, 0.025);
    use maleva_attack::EvasionAttack;
    // Find a sample the attack flips and show which APIs were added.
    for r in 0..batch.rows().min(50) {
        let outcome = jsma.craft(ctx.target(), batch.row(r)).expect("craft");
        if outcome.evaded && !outcome.perturbed_features.is_empty() {
            let names: Vec<&str> = outcome
                .perturbed_features
                .iter()
                .filter_map(|&i| ctx.world.vocab().name(i))
                .collect();
            println!("malware sample #{r}: added API calls {names:?}");
            println!(
                "evaded after touching {} of 491 features, L2 distance {:.4}",
                outcome.features_modified(),
                outcome.l2_distance
            );
            println!("(paper's example adds 'destroyicon' and 'dllsload')\n");
            return;
        }
    }
    println!("no sample flipped at theta=0.1, gamma=0.025 in the first 50; see fig3a\n");
}

fn fig3a(s: &mut Session) {
    println!("--- Figure 3(a): white-box, theta = 0.100, gamma in [0 : 0.005 : 0.030] ---");
    let curve = whitebox::gamma_curve(&s.ctx, s.samples).expect("fig3a");
    s.emit_csv("fig3a", &curve);
    println!("{}", curve.render());
    println!("(paper: detection collapses to ~0.099 by gamma = 0.025; random stays flat)\n");
}

fn fig3b(s: &mut Session) {
    println!("--- Figure 3(b): white-box, gamma = 0.025, theta in [0 : 0.0125 : 0.15] ---");
    let curve = whitebox::theta_curve(&s.ctx, s.samples).expect("fig3b");
    s.emit_csv("fig3b", &curve);
    println!("{}", curve.render());
    println!("--- extended axis (simulated detector is more robust than the paper's) ---");
    let ext = whitebox::curve(
        &s.ctx,
        s.samples,
        SweepAxis::Theta {
            gamma: 0.025,
            values: (0..=6).map(|i| i as f64 * 0.05).collect(),
        },
    )
    .expect("fig3b-ext");
    println!("{}", ext.render());
}

fn fig4a(s: &mut Session) {
    println!("--- Figure 4(a): grey-box transfer, theta = 0.100, gamma sweep ---");
    let samples = s.samples;
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let curve = greybox::gamma_transfer_curve(&ctx, &sub, samples).expect("fig4a");
    s.emit_csv("fig4a", &curve);
    println!("{}", curve.render());
    println!("--- extended axis (simulated detector is more robust than the paper's) ---");
    let ext = greybox::transfer_curve(
        &ctx,
        &sub,
        samples,
        SweepAxis::Gamma {
            theta: 0.25,
            values: (0..=6).map(|i| i as f64 * 0.01).collect(),
        },
    )
    .expect("fig4a-ext");
    println!("{}", ext.render());
    println!("(paper: target detection 0.147 at gamma = 0.005 — transfer rate 0.853)\n");
}

fn fig4b(s: &mut Session) {
    println!("--- Figure 4(b): grey-box transfer, gamma = 0.005, theta sweep ---");
    let samples = s.samples;
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let curve = greybox::theta_transfer_curve(&ctx, &sub, samples).expect("fig4b");
    s.emit_csv("fig4b", &curve);
    println!("{}", curve.render());
    println!("--- extended axis ---");
    let ext = greybox::transfer_curve(
        &ctx,
        &sub,
        samples,
        SweepAxis::Theta {
            gamma: 0.05,
            values: (0..=6).map(|i| i as f64 * 0.05).collect(),
        },
    )
    .expect("fig4b-ext");
    println!("{}", ext.render());
}

fn fig4c(s: &mut Session) {
    println!("--- Figure 4(c): grey-box with binary features (end-to-end rescan) ---");
    let gammas: Vec<f64> = (0..=6).map(|i| i as f64 * 0.005).collect();
    let samples = s.samples.min(150);
    let report = greybox::binary_feature_experiment(&s.ctx, s.ctx.seed ^ 0x4C, samples, &gammas)
        .expect("fig4c");
    s.emit_csv("fig4c", &report.curve);
    println!("{}", report.curve.render());
    println!(
        "final target detection {:.3} (paper 0.6951), transfer rate {:.3} (paper 0.3049)\n",
        report.final_target_detection, report.final_transfer_rate
    );
}

fn fig5(s: &mut Session, gamma_axis: bool) {
    let samples = s.samples.min(300);
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    if gamma_axis {
        println!("--- Figure 5(a): L2 distances, theta = 0.100, gamma sweep ---");
        let curve =
            greybox::l2_curves(&ctx, &sub, samples, SweepAxis::paper_gamma()).expect("fig5a");
        s.emit_csv("fig5a", &curve);
        println!("{}", curve.render());
    } else {
        println!("--- Figure 5(b): L2 distances, gamma = 0.005, theta sweep ---");
        let axis = SweepAxis::Theta {
            gamma: 0.005,
            values: (0..=12).map(|i| i as f64 * 0.0125).collect(),
        };
        let curve = greybox::l2_curves(&ctx, &sub, samples, axis).expect("fig5b");
        s.emit_csv("fig5b", &curve);
        println!("{}", curve.render());
    }
    println!("(paper: d(mal,adv) < d(mal,clean) < d(clean,adv); distances grow with strength)\n");
}

fn live_test(s: &mut Session) {
    println!("--- Live grey-box test: insert one API repeatedly ---");
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let report = live::live_greybox_test(&ctx, &sub, 16).expect("live");
    println!("{}", report.render());
    match report.evaded_at {
        Some(n) => println!("verdict flipped to clean after {n} insertions"),
        None => println!("verdict did not flip within the insertion budget"),
    }
    println!("(paper: 98.43% at 0, 88.88% at 1, 0% at 8 insertions)\n");
}

fn tables_5_and_6(s: &mut Session) {
    println!("--- Tables V & VI: defense comparison ---");
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let config = defenses::DefenseConfig::default();
    let cmp = defenses::compare_defenses(&ctx, &sub, &config).expect("defenses");
    println!("{}", cmp.render_table_v());
    println!("{}", cmp.render_table_vi());
    println!(
        "(paper Table VI: NoDefense advex TPR 0.304; AdvTraining 0.931; Distillation 0.577;\n\
         FeaSqueezing 0.554; DimReduct 0.913 with clean TNR dropping to 0.674)\n"
    );
}

fn figure2(s: &mut Session) {
    println!("--- Figure 2: black-box framework (paper future work; implemented) ---");
    let config = blackbox::BlackboxConfig {
        seed_corpus: 200.min(s.ctx.scale.dataset.train_total() / 4).max(40),
        augmentation_rounds: 2,
        vocab_overlap: 0.6,
        gamma: 0.05,
        eval_samples: s.samples.min(150),
        query_budget: 0,
        seed: s.ctx.seed ^ 0xF2,
    };
    let artifacts = blackbox::run(&s.ctx, &config).expect("blackbox");
    println!("oracle queries spent     : {}", artifacts.oracle_queries);
    println!(
        "substitute-oracle agree  : {:.3}",
        artifacts.oracle_agreement
    );
    println!(
        "baseline detection       : {:.3}",
        artifacts.baseline_detection
    );
    println!(
        "post-attack detection    : {:.3}",
        artifacts.target_detection
    );
    println!("transfer (evasion) rate  : {:.3}", artifacts.transfer_rate);
    println!("(black-box should be the weakest threat model)\n");
}

/// Effectiveness ablations for the design choices DESIGN.md calls out
/// (the matching *cost* ablations are Criterion benches).
fn ablations(s: &mut Session) {
    use maleva_attack::{detection_rate, EvasionAttack, Jsma, SaliencyPolicy};
    use maleva_core::models::{reduced_model, target_model};
    use maleva_defense::{DefensiveDistillation, Detector, PcaDefense};

    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let batch = {
        let full = ctx.attack_batch();
        let n = 150.min(full.rows());
        let idx: Vec<usize> = (0..n).collect();
        full.select_rows(&idx)
    };
    let baseline = detection_rate(ctx.target(), &batch).expect("baseline");

    println!("--- Ablation 1 & 2: JSMA saliency policy and add-only constraint ---");
    println!("baseline detection: {baseline:.3}");
    let variants: Vec<(&str, Jsma)> = vec![
        ("single+add-only (paper)", Jsma::new(0.15, 0.025)),
        (
            "pairwise+add-only",
            Jsma::new(0.15, 0.025).with_policy(SaliencyPolicy::PairwiseProduct),
        ),
        (
            "single, unconstrained",
            Jsma::new(0.15, 0.025).with_add_only(false),
        ),
        (
            "single, high-confidence",
            Jsma::new(0.15, 0.025).with_high_confidence(),
        ),
    ];
    for (name, jsma) in variants {
        let (adv, outcomes) = jsma.craft_batch(ctx.target(), &batch).expect("craft");
        let dr = detection_rate(ctx.target(), &adv).expect("rate");
        let mean_feat: f64 = outcomes
            .iter()
            .map(|o| o.features_modified() as f64)
            .sum::<f64>()
            / outcomes.len() as f64;
        println!("{name:<28} detection {dr:.3}  mean features {mean_feat:.1}");
    }

    println!("\n--- Ablation 4: distillation temperature sweep (advex crafted white-box) ---");
    let jsma = Jsma::new(0.2, 0.04).with_high_confidence();
    for t in [1.0, 5.0, 20.0, 50.0, 100.0] {
        let distill = DefensiveDistillation::new(
            t,
            ctx.scale.substitute_trainer(ctx.seed ^ 0x71),
            ctx.scale.substitute_trainer(ctx.seed ^ 0x72),
        );
        let teacher =
            target_model(ctx.x_train.cols(), ctx.scale.model_scale, ctx.seed ^ 0x73).expect("m");
        let fresh =
            target_model(ctx.x_train.cols(), ctx.scale.model_scale, ctx.seed ^ 0x74).expect("m");
        let (student, _) = distill
            .defend(teacher, fresh, &ctx.x_train, &ctx.y_train)
            .expect("distill");
        let (adv, _) = jsma.craft_batch(&student, &batch).expect("craft");
        let adv_tpr = detection_rate(&student, &adv).expect("rate");
        let mal_tpr = detection_rate(&student, &batch).expect("rate");
        let clean_fp = detection_rate(&student, &ctx.clean_batch()).expect("rate");
        println!(
            "T = {t:<5}  malware TPR {mal_tpr:.3}  clean TNR {:.3}  whitebox-advex TPR {adv_tpr:.3}",
            1.0 - clean_fp
        );
    }

    println!("\n--- Ablation 5: PCA K sweep (transferred advex from the substitute) ---");
    let (advex, _) = Jsma::new(0.25, 0.05)
        .with_high_confidence()
        .craft_batch(&sub, &batch)
        .expect("craft");
    for k in [2usize, 10, 19, 50, 100] {
        let reduced =
            reduced_model(k, ctx.scale.model_scale, ctx.seed ^ (k as u64)).expect("reduced");
        let pca = PcaDefense::fit(
            k,
            reduced,
            &ctx.x_train,
            &ctx.y_train,
            ctx.scale.substitute_trainer(ctx.seed ^ 0x75),
        )
        .expect("pca defense");
        let rate = |x: &maleva_linalg::Matrix| {
            let l = pca.predict_labels(x).expect("labels");
            l.iter().filter(|&&v| v == 1).count() as f64 / l.len() as f64
        };
        println!(
            "K = {k:<4}  malware TPR {:.3}  clean TNR {:.3}  advex TPR {:.3}",
            rate(&batch),
            1.0 - rate(&ctx.clean_batch()),
            rate(&advex)
        );
    }
    println!();
}

/// Extension: ensemble-substitute transfer (the transferability booster
/// from the literature the paper cites).
fn ensemble_transfer(s: &mut Session) {
    println!("--- Extension: ensemble-substitute transfer attack ---");
    let ctx = s.ctx.clone();
    let single = s.substitute().clone();
    let members = greybox::train_substitute_ensemble(&ctx, ctx.seed ^ 0xE5, 3).expect("ensemble");
    let samples = s.samples.min(200);
    let batch = {
        let full = ctx.attack_batch();
        let idx: Vec<usize> = (0..samples.min(full.rows())).collect();
        full.select_rows(&idx)
    };
    for (t, g) in [(0.15, 0.03), (0.25, 0.05)] {
        // Fair comparison: both attackers craft high-confidence examples.
        use maleva_attack::{detection_rate, EvasionAttack, Jsma};
        let (adv_single, _) = Jsma::new(t, g)
            .with_high_confidence()
            .craft_batch(&single, &batch)
            .expect("single craft");
        let lone = detection_rate(ctx.target(), &adv_single).expect("rate");
        let joint =
            greybox::ensemble_operating_point(&ctx, &members, samples, t, g).expect("joint");
        println!(
            "theta {t} gamma {g}: single-substitute target detection {lone:.3} | \
             3-member ensemble {:.3}",
            joint.target_detection
        );
    }
    println!("(averaging substitute gradients cancels model-specific quirks)\n");
}

/// Extension: the adaptive attacker vs feature squeezing (the paper's
/// closing open challenge).
fn adaptive_squeeze(s: &mut Session) {
    println!("--- Extension: adaptive attacker vs feature squeezing ---");
    let ctx = s.ctx.clone();
    let sub = s.substitute().clone();
    let config = defenses::DefenseConfig::default();
    let report = defenses::adaptive_squeeze_experiment(&ctx, &sub, &config).expect("adaptive");
    println!(
        "squeezer false alarms on clean      : {:.3}",
        report.clean_flag_rate
    );
    println!(
        "squeezer flags naive advex          : {:.3}",
        report.naive_flag_rate
    );
    println!(
        "squeezer flags squeeze-aware advex  : {:.3}",
        report.adaptive_flag_rate
    );
    println!(
        "classifier detects naive advex      : {:.3}",
        report.naive_detection
    );
    println!(
        "classifier detects adaptive advex   : {:.3}",
        report.adaptive_detection
    );
    println!(
        "(the paper's conclusion: defenses must anticipate adaptive attacks — a \
         squeeze-aware attacker plants perturbations above the trim threshold and \
         blinds the detector)\n"
    );
}

/// Extension: OS distribution shift — why the paper mixes Win XP/7/8/10
/// logs in its training corpus.
fn os_shift(s: &mut Session) {
    println!("--- Extension: OS distribution shift ---");
    let report = maleva_core::drift::os_shift_for(&s.ctx).expect("os shift");
    println!(
        "legacy-trained on legacy-OS test : {:.3}",
        report.legacy_on_legacy
    );
    println!(
        "legacy-trained on modern-OS test : {:.3}",
        report.legacy_on_modern
    );
    println!(
        "mixed-trained  on modern-OS test : {:.3}",
        report.mixed_on_modern
    );
    println!(
        "shift penalty {:.3}, recovered by mixed training {:.3}\n",
        report.shift_penalty(),
        report.mitigation_gain()
    );
}
