//! `serve_load` — load-test baseline for the `maleva-serve` scoring
//! service, written as `BENCH_serve.json`.
//!
//! ```text
//! serve_load [--scale tiny|quick|paper] [--seed N] [--seconds S]
//!            [--clients C] [--max-batch B] [--keyspace K]
//!            [--out PATH] [--out-dir DIR]
//! ```
//!
//! Two measurements:
//!
//! 1. **In-process forward comparison** — the same feature rows scored
//!    per-row ([`maleva_serve::score_rows_sequential`]) vs in batched
//!    chunks ([`maleva_serve::score_rows`]), with a bitwise equality
//!    check: batching must be a pure throughput optimization.
//! 2. **End-to-end phases** — client threads hammer an in-process
//!    server over TCP for `--seconds / 5` each:
//!    `unbatched` (max batch 1, cache off), `batched` (max batch B,
//!    cache off), `cached` (max batch B, cache on, keyspace-limited
//!    request pool so repeats hit), `degraded` (the batched setup
//!    with deterministic fault injection active — slow reads/writes,
//!    dropped replies, scorer panics, artificial latency — and clients
//!    that reconnect on error), and `sentinel_idle` (the batched setup
//!    with the extraction sentinel enabled but never flagging: the
//!    replayed keyspace is exact repeats, which the near-duplicate
//!    detector deliberately ignores, so the phase isolates the
//!    sentinel's per-request bookkeeping cost).
//!
//! The headline numbers are `batched_vs_unbatched_speedup` — end-to-end
//! throughput of the batched phase over the unbatched one —
//! `degraded_vs_batched_speedup`, the fraction of batched throughput
//! the server retains while under fault injection (its p99 quantifies
//! tail latency in degraded mode), and `sentinel_idle_p99_ratio`, the
//! sentinel-on p99 over the batched p99 (the gate that an idle defense
//! does not tax the scoring tail).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use maleva_core::{DetectorPipeline, ExperimentContext, ExperimentScale};
use maleva_serve::{
    score_rows, score_rows_sequential, spawn, FaultAction, FaultPlan, FaultSite, SentinelConfig,
    ServeConfig,
};
use serde::Serialize;

struct Args {
    scale: ExperimentScale,
    seed: u64,
    seconds: f64,
    clients: usize,
    max_batch: usize,
    keyspace: usize,
    out: String,
    out_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: ExperimentScale::tiny(),
        seed: 42,
        seconds: 6.0,
        clients: 8,
        max_batch: 32,
        keyspace: 64,
        out: "BENCH_serve.json".to_string(),
        out_dir: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--scale" => {
                args.scale = match value("scale")?.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--seed" => {
                args.seed = value("seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--seconds" => {
                args.seconds = value("seconds")?
                    .parse()
                    .map_err(|e| format!("bad --seconds: {e}"))?;
            }
            "--clients" => {
                args.clients = value("clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--max-batch" => {
                args.max_batch = value("max-batch")?
                    .parse()
                    .map_err(|e| format!("bad --max-batch: {e}"))?;
            }
            "--keyspace" => {
                args.keyspace = value("keyspace")?
                    .parse()
                    .map_err(|e| format!("bad --keyspace: {e}"))?;
            }
            "--out" => args.out = value("out")?,
            "--out-dir" => args.out_dir = Some(value("out-dir")?),
            "--help" | "-h" => {
                println!(
                    "usage: serve_load [--scale tiny|quick|paper] [--seed N] [--seconds S]\n\
                     \x20                 [--clients C] [--max-batch B] [--keyspace K]\n\
                     \x20                 [--out PATH] [--out-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.seconds <= 0.0 || args.clients == 0 || args.max_batch == 0 || args.keyspace == 0 {
        return Err("--seconds, --clients, --max-batch, and --keyspace must be positive".into());
    }
    Ok(args)
}

/// Per-batch-size result of the in-process forward comparison.
#[derive(Serialize)]
struct ForwardResult {
    batch: usize,
    rows: usize,
    sequential_ns_per_row: f64,
    batched_ns_per_row: f64,
    speedup: f64,
}

/// One end-to-end server phase.
#[derive(Serialize)]
struct PhaseResult {
    name: &'static str,
    max_batch: usize,
    cache_capacity: usize,
    seconds: f64,
    requests_ok: u64,
    requests_err: u64,
    throughput_rps: f64,
    mean_batch_size: f64,
    cache_hit_rate: f64,
    p50_latency_us: u64,
    p99_latency_us: u64,
    /// Power-of-two request-latency histogram (bucket i counts
    /// latencies in `[2^(i-1), 2^i)` microseconds; bucket 0 is zeros).
    latency_buckets_us: Vec<u64>,
    /// Power-of-two scored-batch-size histogram, same bucketing.
    batch_size_buckets: Vec<u64>,
}

/// The whole `BENCH_serve.json` document.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    scale: String,
    seed: u64,
    clients: usize,
    keyspace: usize,
    max_batch: usize,
    feature_dim: usize,
    bit_identical: bool,
    /// Best per-row-vs-batched forward speedup at batch size >= 8 — the
    /// headline "batching beats per-row scoring" number.
    batched_forward_speedup: f64,
    forward: Vec<ForwardResult>,
    phases: Vec<PhaseResult>,
    batched_vs_unbatched_speedup: f64,
    cached_vs_unbatched_speedup: f64,
    /// Fraction of batched-phase throughput retained while every fault
    /// site is firing (degraded throughput / batched throughput).
    degraded_vs_batched_speedup: f64,
    /// Fraction of batched-phase throughput retained with the sentinel
    /// enabled but idle (sentinel_idle throughput / batched throughput).
    sentinel_vs_batched_speedup: f64,
    /// Sentinel-idle p99 latency over batched p99: near 1.0 when the
    /// enabled-but-idle sentinel leaves the scoring tail alone.
    sentinel_idle_p99_ratio: f64,
}

/// Swallows the panics the degraded phase *injects* (payloads marked
/// "injected fault") so the bench output stays readable; real panics
/// still reach the default hook.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    quiet_injected_panics();
    eprintln!(
        "[serve_load] building context (scale={}, seed={}) ...",
        args.scale.name, args.seed
    );
    let t = Instant::now();
    let ctx = ExperimentContext::build(args.scale.clone(), args.seed).expect("context");
    eprintln!("[serve_load] context ready in {:.1?}", t.elapsed());

    // Request pool: `keyspace` distinct test-set count vectors, each
    // pre-rendered as a protocol line. The cached phase replays these,
    // so a keyspace smaller than the request volume guarantees hits.
    let test = ctx.dataset.test();
    assert!(!test.is_empty(), "test split is empty");
    let pool_counts: Vec<Vec<u32>> = (0..args.keyspace)
        .map(|i| test[i % test.len()].counts().to_vec())
        .collect();
    let lines: Arc<Vec<String>> = Arc::new(pool_counts.iter().map(|c| render_line(c)).collect());

    let (forward, bit_identical) = forward_comparison(&ctx.detector, &pool_counts, args.max_batch);
    for f in &forward {
        println!(
            "forward batch {:>3}: {:>8.0} ns/row sequential, {:>8.0} ns/row batched, speedup {:.2}x",
            f.batch, f.sequential_ns_per_row, f.batched_ns_per_row, f.speedup
        );
    }
    println!("bit_identical: {bit_identical}");

    // The degraded phase keeps the batched setup but turns every
    // scorer- and wire-level fault site on at a steady rate; the gate
    // then tracks how much throughput survives the chaos.
    let degraded_faults = FaultPlan::disabled()
        .with_seed(args.seed)
        .with(FaultSite::SlowRead, FaultAction::EveryNth(40))
        .with(FaultSite::SlowWrite, FaultAction::EveryNth(40))
        .with(FaultSite::WriteReset, FaultAction::EveryNth(60))
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(50))
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(25))
        .with_delay(Duration::from_millis(1));
    // The sentinel phase keeps the defense fully enabled; the request
    // pool replays exact keyspace repeats, which the near-duplicate
    // detector deliberately ignores, so nothing flags and the phase
    // measures pure bookkeeping overhead.
    let idle_sentinel = SentinelConfig {
        enabled: true,
        seed: args.seed,
        ..SentinelConfig::default()
    };
    let phase_secs = args.seconds / 5.0;
    let off = SentinelConfig::default;
    let specs: [(&'static str, usize, usize, FaultPlan, SentinelConfig); 5] = [
        ("unbatched", 1, 0, FaultPlan::disabled(), off()),
        ("batched", args.max_batch, 0, FaultPlan::disabled(), off()),
        ("cached", args.max_batch, 4096, FaultPlan::disabled(), off()),
        ("degraded", args.max_batch, 0, degraded_faults, off()),
        (
            "sentinel_idle",
            args.max_batch,
            0,
            FaultPlan::disabled(),
            idle_sentinel,
        ),
    ];
    let mut phases = Vec::new();
    for (name, max_batch, cache_capacity, faults, sentinel) in specs {
        eprintln!(
            "[serve_load] phase {name} ({phase_secs:.1}s, {} clients) ...",
            args.clients
        );
        let phase = run_phase(
            name,
            ctx.detector.clone(),
            &lines,
            args.clients,
            phase_secs,
            max_batch,
            cache_capacity,
            faults,
            sentinel,
        );
        println!(
            "phase {:<9} {:>8.0} req/s  p50 {:>5} us  p99 {:>6} us  mean batch {:>4.1}  \
             cache hits {:>5.1}%  errors {}",
            phase.name,
            phase.throughput_rps,
            phase.p50_latency_us,
            phase.p99_latency_us,
            phase.mean_batch_size,
            phase.cache_hit_rate * 100.0,
            phase.requests_err
        );
        phases.push(phase);
    }

    let speedup = |num: &PhaseResult, den: &PhaseResult| {
        if den.throughput_rps > 0.0 {
            num.throughput_rps / den.throughput_rps
        } else {
            0.0
        }
    };
    let batched_forward_speedup = forward
        .iter()
        .filter(|f| f.batch >= 8)
        .map(|f| f.speedup)
        .fold(0.0, f64::max);
    let report = BenchReport {
        bench: "serve_load",
        scale: args.scale.name.to_string(),
        seed: args.seed,
        clients: args.clients,
        keyspace: args.keyspace,
        max_batch: args.max_batch,
        feature_dim: ctx.detector.features().dim(),
        bit_identical,
        batched_forward_speedup,
        batched_vs_unbatched_speedup: speedup(&phases[1], &phases[0]),
        cached_vs_unbatched_speedup: speedup(&phases[2], &phases[0]),
        degraded_vs_batched_speedup: speedup(&phases[3], &phases[1]),
        sentinel_vs_batched_speedup: speedup(&phases[4], &phases[1]),
        sentinel_idle_p99_ratio: if phases[1].p99_latency_us > 0 {
            phases[4].p99_latency_us as f64 / phases[1].p99_latency_us as f64
        } else {
            0.0
        },
        forward,
        phases,
    };
    println!(
        "batched forward speedup (batch >= 8): {:.2}x | end-to-end batched vs unbatched: \
         {:.2}x | cached vs unbatched: {:.2}x | throughput retained under faults: {:.2}x | \
         idle sentinel: {:.2}x throughput, p99 ratio {:.2}",
        report.batched_forward_speedup,
        report.batched_vs_unbatched_speedup,
        report.cached_vs_unbatched_speedup,
        report.degraded_vs_batched_speedup,
        report.sentinel_vs_batched_speedup,
        report.sentinel_idle_p99_ratio
    );

    let json = serde_json::to_string_pretty(&report).expect("encode report");
    let out_path = match &args.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out-dir");
            format!("{}/{}", dir.trim_end_matches('/'), args.out)
        }
        None => args.out.clone(),
    };
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");

    if !bit_identical {
        eprintln!("error: batched scores diverged from sequential scores");
        return ExitCode::FAILURE;
    }
    if batched_forward_speedup <= 1.0 {
        eprintln!(
            "error: batched forward did not beat per-row scoring \
             ({batched_forward_speedup:.2}x at batch >= 8)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Renders one `{"features": [...]}` request line (no newline).
fn render_line(counts: &[u32]) -> String {
    let mut line = String::with_capacity(counts.len() * 4 + 16);
    line.push_str("{\"features\":[");
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&c.to_string());
    }
    line.push_str("]}");
    line
}

/// Times the batched forward against per-row scoring on the same rows
/// and verifies bitwise equality of every score.
fn forward_comparison(
    detector: &DetectorPipeline,
    pool: &[Vec<u32>],
    max_batch: usize,
) -> (Vec<ForwardResult>, bool) {
    const ROWS: usize = 256;
    const REPS: usize = 3;
    let rows: Vec<Vec<f64>> = (0..ROWS)
        .map(|i| detector.features().transform_counts(&pool[i % pool.len()]))
        .collect();
    let network = detector.network();

    let reference = score_rows_sequential(network, &rows).expect("sequential scores");
    let best_ns = |f: &dyn Fn() -> Vec<f64>| {
        (0..REPS)
            .map(|_| {
                let t = Instant::now();
                let out = f();
                let ns = t.elapsed().as_nanos() as f64;
                assert_eq!(out.len(), ROWS);
                ns
            })
            .fold(f64::INFINITY, f64::min)
    };
    let seq_ns = best_ns(&|| score_rows_sequential(network, &rows).expect("sequential"));

    let mut sizes = vec![1, 8, 32, max_batch];
    sizes.sort_unstable();
    sizes.dedup();
    let mut bit_identical = true;
    let results = sizes
        .into_iter()
        .map(|batch| {
            let run = || -> Vec<f64> {
                rows.chunks(batch)
                    .flat_map(|chunk| score_rows(network, chunk).expect("batched"))
                    .collect()
            };
            let scores = run();
            bit_identical &= scores
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            let batched_ns = best_ns(&run);
            ForwardResult {
                batch,
                rows: ROWS,
                sequential_ns_per_row: seq_ns / ROWS as f64,
                batched_ns_per_row: batched_ns / ROWS as f64,
                speedup: seq_ns / batched_ns,
            }
        })
        .collect();
    (results, bit_identical)
}

/// Runs one end-to-end phase: spawns a fresh server, hammers it with
/// `clients` threads for `seconds`, then shuts it down and reads the
/// final metrics. When the phase injects faults, clients count each
/// failure and reconnect instead of giving up — a dropped connection is
/// part of the workload there, not the end of it.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &'static str,
    detector: DetectorPipeline,
    lines: &Arc<Vec<String>>,
    clients: usize,
    seconds: f64,
    max_batch: usize,
    cache_capacity: usize,
    faults: FaultPlan,
    sentinel: SentinelConfig,
) -> PhaseResult {
    let resilient = faults.is_enabled();
    let config = ServeConfig {
        max_batch,
        cache_capacity,
        // Opportunistic batching: drain whatever queued while the
        // previous batch was scoring, never stall waiting for
        // stragglers. Keeps every phase work-conserving so the
        // batched-vs-unbatched comparison isolates the forward-pass
        // amortization.
        batch_timeout: Duration::ZERO,
        faults,
        sentinel,
        ..ServeConfig::default()
    };
    let handle = spawn(detector, config).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let lines = Arc::clone(lines);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, u64) {
                let (mut ok, mut err) = (0u64, 0u64);
                let mut resp = String::new();
                // Per-client offset so clients do not move in lockstep.
                let mut i = c * lines.len() / clients.max(1);
                'conn: while !stop.load(Ordering::Relaxed) {
                    let Ok(stream) = TcpStream::connect(addr) else {
                        if !resilient {
                            break;
                        }
                        err += 1;
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    };
                    stream.set_nodelay(true).ok();
                    let Ok(mut writer) = stream.try_clone() else {
                        break;
                    };
                    let mut reader = BufReader::new(stream);
                    while !stop.load(Ordering::Relaxed) {
                        let line = &lines[i % lines.len()];
                        i += 1;
                        if writer.write_all(line.as_bytes()).is_err()
                            || writer.write_all(b"\n").is_err()
                        {
                            if resilient {
                                err += 1;
                                continue 'conn;
                            }
                            break 'conn;
                        }
                        resp.clear();
                        match reader.read_line(&mut resp) {
                            Ok(n) if n > 0 && resp.starts_with("{\"score\"") => ok += 1,
                            Ok(n) if n > 0 => err += 1,
                            _ => {
                                if resilient {
                                    err += 1;
                                    continue 'conn;
                                }
                                break 'conn;
                            }
                        }
                    }
                }
                (ok, err)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut err) = (0u64, 0u64);
    for w in workers {
        let (o, e) = w.join().expect("client thread");
        ok += o;
        err += e;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let snap = handle.shutdown();

    PhaseResult {
        name,
        max_batch,
        cache_capacity,
        seconds: elapsed,
        requests_ok: ok,
        requests_err: err,
        throughput_rps: ok as f64 / elapsed,
        mean_batch_size: snap.mean_batch_size,
        cache_hit_rate: snap.cache_hit_rate,
        p50_latency_us: snap.p50_latency_us,
        p99_latency_us: snap.p99_latency_us,
        latency_buckets_us: snap.latency_buckets_us,
        batch_size_buckets: snap.batch_size_buckets,
    }
}
