//! `serve_load` — load-test baseline for the `maleva-serve` scoring
//! service, written as `BENCH_serve.json`.
//!
//! ```text
//! serve_load [--scale tiny|quick|paper] [--seed N] [--seconds S]
//!            [--clients C] [--max-batch B] [--keyspace K]
//!            [--out PATH] [--out-dir DIR] [--trace-out PATH]
//! ```
//!
//! Two measurements:
//!
//! 1. **In-process forward comparison** — the same feature rows scored
//!    per-row ([`maleva_serve::score_rows_sequential`]) vs in batched
//!    chunks ([`maleva_serve::score_rows`]), with a bitwise equality
//!    check: batching must be a pure throughput optimization.
//! 2. **End-to-end phases** — client threads hammer an in-process
//!    server over TCP, one fresh server per phase:
//!    `unbatched` (max batch 1, cache off), `batched` (max batch B,
//!    cache off), `cached` (max batch B, cache on, keyspace-limited
//!    request pool so repeats hit), `degraded` (the batched setup
//!    with deterministic fault injection active — slow reads/writes,
//!    dropped replies, scorer panics, artificial latency — and clients
//!    that reconnect on error), `sentinel_idle` (the batched setup
//!    with the extraction sentinel enabled but never flagging: the
//!    replayed keyspace is exact repeats, which the near-duplicate
//!    detector deliberately ignores, so the phase isolates the
//!    sentinel's per-request bookkeeping cost), a `shards1` /
//!    `shards2` / `shards4` sweep (the batched setup at 1, 2, and 4
//!    event-loop shards under at least 64 connections, every response
//!    checked bit-exact against the offline oracle), and `reload`
//!    (single-shard batched traffic while a controller hot-swaps the
//!    model every ~200 ms, alternating two weight files).
//!
//! The headline numbers are `batched_vs_unbatched_speedup` — end-to-end
//! throughput of the batched phase over the unbatched one —
//! `degraded_vs_batched_speedup`, the fraction of batched throughput
//! the server retains while under fault injection (its p99 quantifies
//! tail latency in degraded mode), `sentinel_idle_p99_ratio`, the
//! sentinel-on p99 over the batched p99 (the gate that an idle defense
//! does not tax the scoring tail), `shard_scaling_speedup`
//! (`shards4` throughput over `shards1` — meaningful only on
//! multi-core runners, so the process exit code never depends on it;
//! the gated invariant is `shard_bit_identical`), and
//! `reload_p99_ratio`, the reload-storm p99 over the batched p99 (the
//! gate that hot swaps do not stall the scoring tail).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use maleva_core::{DetectorPipeline, ExperimentContext, ExperimentScale};
use maleva_nn::{Activation, NetworkBuilder};
use maleva_obs::trace;
use maleva_serve::{
    score_rows, score_rows_sequential, spawn, FaultAction, FaultPlan, FaultSite, SentinelConfig,
    ServeConfig,
};
use serde::Serialize;

struct Args {
    scale: ExperimentScale,
    seed: u64,
    seconds: f64,
    clients: usize,
    max_batch: usize,
    keyspace: usize,
    out: String,
    out_dir: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: ExperimentScale::tiny(),
        seed: 42,
        seconds: 6.0,
        clients: 8,
        max_batch: 32,
        keyspace: 64,
        out: "BENCH_serve.json".to_string(),
        out_dir: None,
        trace_out: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--scale" => {
                args.scale = match value("scale")?.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--seed" => {
                args.seed = value("seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--seconds" => {
                args.seconds = value("seconds")?
                    .parse()
                    .map_err(|e| format!("bad --seconds: {e}"))?;
            }
            "--clients" => {
                args.clients = value("clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--max-batch" => {
                args.max_batch = value("max-batch")?
                    .parse()
                    .map_err(|e| format!("bad --max-batch: {e}"))?;
            }
            "--keyspace" => {
                args.keyspace = value("keyspace")?
                    .parse()
                    .map_err(|e| format!("bad --keyspace: {e}"))?;
            }
            "--out" => args.out = value("out")?,
            "--out-dir" => args.out_dir = Some(value("out-dir")?),
            "--trace-out" => args.trace_out = Some(value("trace-out")?),
            "--help" | "-h" => {
                println!(
                    "usage: serve_load [--scale tiny|quick|paper] [--seed N] [--seconds S]\n\
                     \x20                 [--clients C] [--max-batch B] [--keyspace K]\n\
                     \x20                 [--out PATH] [--out-dir DIR] [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.seconds <= 0.0 || args.clients == 0 || args.max_batch == 0 || args.keyspace == 0 {
        return Err("--seconds, --clients, --max-batch, and --keyspace must be positive".into());
    }
    Ok(args)
}

/// Per-batch-size result of the in-process forward comparison.
#[derive(Serialize)]
struct ForwardResult {
    batch: usize,
    rows: usize,
    sequential_ns_per_row: f64,
    batched_ns_per_row: f64,
    speedup: f64,
}

/// One end-to-end server phase.
#[derive(Serialize)]
struct PhaseResult {
    name: &'static str,
    max_batch: usize,
    cache_capacity: usize,
    shards: usize,
    clients: usize,
    seconds: f64,
    requests_ok: u64,
    requests_err: u64,
    throughput_rps: f64,
    mean_batch_size: f64,
    cache_hit_rate: f64,
    p50_latency_us: u64,
    p99_latency_us: u64,
    /// Power-of-two request-latency histogram (bucket i counts
    /// latencies in `[2^(i-1), 2^i)` microseconds; bucket 0 is zeros).
    latency_buckets_us: Vec<u64>,
    /// Power-of-two scored-batch-size histogram, same bucketing.
    batch_size_buckets: Vec<u64>,
}

/// The whole `BENCH_serve.json` document.
#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    scale: String,
    seed: u64,
    clients: usize,
    keyspace: usize,
    max_batch: usize,
    feature_dim: usize,
    bit_identical: bool,
    /// Every response of the shard-sweep phases was bit-identical to
    /// the single-threaded offline oracle: sharding, like batching, is
    /// a throughput optimization, never a semantic change.
    shard_bit_identical: bool,
    /// Best per-row-vs-batched forward speedup at batch size >= 8 — the
    /// headline "batching beats per-row scoring" number.
    batched_forward_speedup: f64,
    forward: Vec<ForwardResult>,
    phases: Vec<PhaseResult>,
    batched_vs_unbatched_speedup: f64,
    cached_vs_unbatched_speedup: f64,
    /// Fraction of batched-phase throughput retained while every fault
    /// site is firing (degraded throughput / batched throughput).
    degraded_vs_batched_speedup: f64,
    /// Fraction of batched-phase throughput retained with the sentinel
    /// enabled but idle (sentinel_idle throughput / batched throughput).
    sentinel_vs_batched_speedup: f64,
    /// Sentinel-idle p99 latency over batched p99: near 1.0 when the
    /// enabled-but-idle sentinel leaves the scoring tail alone.
    sentinel_idle_p99_ratio: f64,
    /// `shards4` throughput over `shards1` at >= 64 connections. Only
    /// meaningful on multi-core runners (a single-core machine
    /// legitimately reports ~1.0), so the exit code never depends on
    /// it; the baseline gate carries wide slack instead.
    shard_scaling_speedup: f64,
    /// Reload-storm p99 latency over batched p99: near 1.0 when
    /// hot-swapping the model under load leaves the scoring tail alone.
    reload_p99_ratio: f64,
}

/// Swallows the panics the degraded phase *injects* (payloads marked
/// "injected fault") so the bench output stays readable; real panics
/// still reach the default hook.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    quiet_injected_panics();
    if let Some(path) = &args.trace_out {
        let sink = if path == "-" {
            trace::Sink::Stderr
        } else {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create --trace-out directory");
                }
            }
            trace::Sink::File(path.into())
        };
        if let Err(e) = trace::install(sink) {
            eprintln!("error: cannot open trace output {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "[serve_load] building context (scale={}, seed={}) ...",
        args.scale.name, args.seed
    );
    let t = Instant::now();
    let ctx = ExperimentContext::build(args.scale.clone(), args.seed).expect("context");
    eprintln!("[serve_load] context ready in {:.1?}", t.elapsed());

    // Request pool: `keyspace` distinct test-set count vectors, each
    // pre-rendered as a protocol line. The cached phase replays these,
    // so a keyspace smaller than the request volume guarantees hits.
    let test = ctx.dataset.test();
    assert!(!test.is_empty(), "test split is empty");
    let pool_counts: Vec<Vec<u32>> = (0..args.keyspace)
        .map(|i| test[i % test.len()].counts().to_vec())
        .collect();
    let lines: Arc<Vec<String>> = Arc::new(pool_counts.iter().map(|c| render_line(c)).collect());

    let (forward, bit_identical) = forward_comparison(&ctx.detector, &pool_counts, args.max_batch);
    for f in &forward {
        println!(
            "forward batch {:>3}: {:>8.0} ns/row sequential, {:>8.0} ns/row batched, speedup {:.2}x",
            f.batch, f.sequential_ns_per_row, f.batched_ns_per_row, f.speedup
        );
    }
    println!("bit_identical: {bit_identical}");

    // The degraded phase keeps the batched setup but turns every
    // scorer- and wire-level fault site on at a steady rate; the gate
    // then tracks how much throughput survives the chaos.
    let degraded_faults = FaultPlan::disabled()
        .with_seed(args.seed)
        .with(FaultSite::SlowRead, FaultAction::EveryNth(40))
        .with(FaultSite::SlowWrite, FaultAction::EveryNth(40))
        .with(FaultSite::WriteReset, FaultAction::EveryNth(60))
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(50))
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(25))
        .with_delay(Duration::from_millis(1));
    // The sentinel phase keeps the defense fully enabled; the request
    // pool replays exact keyspace repeats, which the near-duplicate
    // detector deliberately ignores, so nothing flags and the phase
    // measures pure bookkeeping overhead.
    let idle_sentinel = SentinelConfig {
        enabled: true,
        seed: args.seed,
        ..SentinelConfig::default()
    };
    // Oracle bits per pool line, for the shard-sweep bit-identity check.
    let oracle: Arc<Vec<u64>> = Arc::new(
        pool_counts
            .iter()
            .map(|c| {
                let row = ctx.detector.features().transform_counts(c);
                score_rows(ctx.detector.network(), std::slice::from_ref(&row))
                    .expect("oracle forward")[0]
                    .to_bits()
            })
            .collect(),
    );

    let phase_secs = (args.seconds / 5.0).max(0.8);
    // The shard sweep needs enough concurrency to keep 4 event loops
    // busy; a small --clients would serialize on too few connections.
    let sweep_clients = args.clients.max(64);
    let off = SentinelConfig::default;
    let baseline = PhaseSpec {
        name: "unbatched",
        clients: args.clients,
        max_batch: 1,
        cache_capacity: 0,
        shards: 1,
        faults: FaultPlan::disabled(),
        sentinel: off(),
        oracle: None,
    };
    let batched = |name: &'static str| PhaseSpec {
        name,
        max_batch: args.max_batch,
        ..baseline.clone()
    };
    let sharded = |name: &'static str, shards: usize| PhaseSpec {
        clients: sweep_clients,
        shards,
        oracle: Some(Arc::clone(&oracle)),
        ..batched(name)
    };
    let specs = [
        baseline.clone(),
        batched("batched"),
        PhaseSpec {
            cache_capacity: 4096,
            ..batched("cached")
        },
        PhaseSpec {
            faults: degraded_faults,
            ..batched("degraded")
        },
        PhaseSpec {
            sentinel: idle_sentinel,
            ..batched("sentinel_idle")
        },
        sharded("shards1", 1),
        sharded("shards2", 2),
        sharded("shards4", 4),
    ];
    let mut phases = Vec::new();
    let mut shard_bit_identical = true;
    for spec in specs {
        eprintln!(
            "[serve_load] phase {} ({phase_secs:.1}s, {} clients, {} shard{}) ...",
            spec.name,
            spec.clients,
            spec.shards,
            if spec.shards == 1 { "" } else { "s" }
        );
        let (phase, bits_ok) = run_phase(spec, ctx.detector.clone(), &lines, phase_secs);
        shard_bit_identical &= bits_ok;
        print_phase(&phase);
        phases.push(phase);
    }
    eprintln!(
        "[serve_load] phase reload ({phase_secs:.1}s, {} clients) ...",
        args.clients
    );
    let reload_phase = run_reload_phase(&ctx, &lines, args.clients, phase_secs, args.max_batch);
    print_phase(&reload_phase);
    phases.push(reload_phase);

    let speedup = |num: &PhaseResult, den: &PhaseResult| {
        if den.throughput_rps > 0.0 {
            num.throughput_rps / den.throughput_rps
        } else {
            0.0
        }
    };
    let batched_forward_speedup = forward
        .iter()
        .filter(|f| f.batch >= 8)
        .map(|f| f.speedup)
        .fold(0.0, f64::max);
    let p99_ratio = |num: &PhaseResult, den: &PhaseResult| {
        if den.p99_latency_us > 0 {
            num.p99_latency_us as f64 / den.p99_latency_us as f64
        } else {
            0.0
        }
    };
    let report = BenchReport {
        bench: "serve_load",
        scale: args.scale.name.to_string(),
        seed: args.seed,
        clients: args.clients,
        keyspace: args.keyspace,
        max_batch: args.max_batch,
        feature_dim: ctx.detector.features().dim(),
        bit_identical,
        shard_bit_identical,
        batched_forward_speedup,
        batched_vs_unbatched_speedup: speedup(&phases[1], &phases[0]),
        cached_vs_unbatched_speedup: speedup(&phases[2], &phases[0]),
        degraded_vs_batched_speedup: speedup(&phases[3], &phases[1]),
        sentinel_vs_batched_speedup: speedup(&phases[4], &phases[1]),
        sentinel_idle_p99_ratio: p99_ratio(&phases[4], &phases[1]),
        shard_scaling_speedup: speedup(&phases[7], &phases[5]),
        reload_p99_ratio: p99_ratio(&phases[8], &phases[1]),
        forward,
        phases,
    };
    println!(
        "batched forward speedup (batch >= 8): {:.2}x | end-to-end batched vs unbatched: \
         {:.2}x | cached vs unbatched: {:.2}x | throughput retained under faults: {:.2}x | \
         idle sentinel: {:.2}x throughput, p99 ratio {:.2} | shard scaling 4v1: {:.2}x \
         (bit-identical: {}) | reload p99 ratio: {:.2}",
        report.batched_forward_speedup,
        report.batched_vs_unbatched_speedup,
        report.cached_vs_unbatched_speedup,
        report.degraded_vs_batched_speedup,
        report.sentinel_vs_batched_speedup,
        report.sentinel_idle_p99_ratio,
        report.shard_scaling_speedup,
        report.shard_bit_identical,
        report.reload_p99_ratio
    );

    let json = serde_json::to_string_pretty(&report).expect("encode report");
    let out_path = match &args.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out-dir");
            format!("{}/{}", dir.trim_end_matches('/'), args.out)
        }
        None => args.out.clone(),
    };
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
    trace::flush();

    if !bit_identical {
        eprintln!("error: batched scores diverged from sequential scores");
        return ExitCode::FAILURE;
    }
    if !shard_bit_identical {
        eprintln!("error: sharded scores diverged from the single-threaded oracle");
        return ExitCode::FAILURE;
    }
    if batched_forward_speedup <= 1.0 {
        eprintln!(
            "error: batched forward did not beat per-row scoring \
             ({batched_forward_speedup:.2}x at batch >= 8)"
        );
        return ExitCode::FAILURE;
    }
    // Deliberately NOT gated here: shard_scaling_speedup. The sweep is
    // honest about parallelism only on multi-core runners; the baseline
    // gate (bench_gate) owns that comparison with appropriate slack.
    ExitCode::SUCCESS
}

/// Prints the one-line summary for a finished phase.
fn print_phase(phase: &PhaseResult) {
    println!(
        "phase {:<13} {:>8.0} req/s  p50 {:>5} us  p99 {:>6} us  mean batch {:>4.1}  \
         cache hits {:>5.1}%  errors {}",
        phase.name,
        phase.throughput_rps,
        phase.p50_latency_us,
        phase.p99_latency_us,
        phase.mean_batch_size,
        phase.cache_hit_rate * 100.0,
        phase.requests_err
    );
}

/// Renders one `{"features": [...]}` request line (no newline).
fn render_line(counts: &[u32]) -> String {
    let mut line = String::with_capacity(counts.len() * 4 + 16);
    line.push_str("{\"features\":[");
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&c.to_string());
    }
    line.push_str("]}");
    line
}

/// Times the batched forward against per-row scoring on the same rows
/// and verifies bitwise equality of every score.
fn forward_comparison(
    detector: &DetectorPipeline,
    pool: &[Vec<u32>],
    max_batch: usize,
) -> (Vec<ForwardResult>, bool) {
    const ROWS: usize = 256;
    const REPS: usize = 3;
    let rows: Vec<Vec<f64>> = (0..ROWS)
        .map(|i| detector.features().transform_counts(&pool[i % pool.len()]))
        .collect();
    let network = detector.network();

    let reference = score_rows_sequential(network, &rows).expect("sequential scores");
    let best_ns = |f: &dyn Fn() -> Vec<f64>| {
        (0..REPS)
            .map(|_| {
                let t = Instant::now();
                let out = f();
                let ns = t.elapsed().as_nanos() as f64;
                assert_eq!(out.len(), ROWS);
                ns
            })
            .fold(f64::INFINITY, f64::min)
    };
    let seq_ns = best_ns(&|| score_rows_sequential(network, &rows).expect("sequential"));

    let mut sizes = vec![1, 8, 32, max_batch];
    sizes.sort_unstable();
    sizes.dedup();
    let mut bit_identical = true;
    let results = sizes
        .into_iter()
        .map(|batch| {
            let run = || -> Vec<f64> {
                rows.chunks(batch)
                    .flat_map(|chunk| score_rows(network, chunk).expect("batched"))
                    .collect()
            };
            let scores = run();
            bit_identical &= scores
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            let batched_ns = best_ns(&run);
            ForwardResult {
                batch,
                rows: ROWS,
                sequential_ns_per_row: seq_ns / ROWS as f64,
                batched_ns_per_row: batched_ns / ROWS as f64,
                speedup: seq_ns / batched_ns,
            }
        })
        .collect();
    (results, bit_identical)
}

/// Everything that distinguishes one end-to-end phase from another.
#[derive(Clone)]
struct PhaseSpec {
    name: &'static str,
    clients: usize,
    max_batch: usize,
    cache_capacity: usize,
    shards: usize,
    faults: FaultPlan,
    sentinel: SentinelConfig,
    /// When set, every score response is checked bit-exact against
    /// these per-pool-line oracle bits (the shard-sweep invariant).
    oracle: Option<Arc<Vec<u64>>>,
}

/// Runs one end-to-end phase: spawns a fresh server, hammers it with
/// `spec.clients` threads for `seconds`, then shuts it down and reads
/// the final metrics. When the phase injects faults, clients count each
/// failure and reconnect instead of giving up — a dropped connection is
/// part of the workload there, not the end of it. The second return is
/// the oracle bit-identity verdict (vacuously true without an oracle).
fn run_phase(
    spec: PhaseSpec,
    detector: DetectorPipeline,
    lines: &Arc<Vec<String>>,
    seconds: f64,
) -> (PhaseResult, bool) {
    let PhaseSpec {
        name,
        clients,
        max_batch,
        cache_capacity,
        shards,
        faults,
        sentinel,
        oracle,
    } = spec;
    let resilient = faults.is_enabled();
    let config = ServeConfig {
        max_batch,
        cache_capacity,
        shards,
        // Opportunistic batching: drain whatever queued while the
        // previous batch was scoring, never stall waiting for
        // stragglers. Keeps every phase work-conserving so the
        // batched-vs-unbatched comparison isolates the forward-pass
        // amortization.
        batch_timeout: Duration::ZERO,
        faults,
        sentinel,
        ..ServeConfig::default()
    };
    let handle = spawn(detector, config).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let bits_ok = Arc::new(AtomicBool::new(true));
    let start = Instant::now();

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let lines = Arc::clone(lines);
            let stop = Arc::clone(&stop);
            let oracle = oracle.clone();
            let bits_ok = Arc::clone(&bits_ok);
            std::thread::spawn(move || -> (u64, u64) {
                let (mut ok, mut err) = (0u64, 0u64);
                let mut resp = String::new();
                // Per-client offset so clients do not move in lockstep.
                let mut i = c * lines.len() / clients.max(1);
                'conn: while !stop.load(Ordering::Relaxed) {
                    let Ok(stream) = TcpStream::connect(addr) else {
                        if !resilient {
                            break;
                        }
                        err += 1;
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    };
                    stream.set_nodelay(true).ok();
                    let Ok(mut writer) = stream.try_clone() else {
                        break;
                    };
                    let mut reader = BufReader::new(stream);
                    while !stop.load(Ordering::Relaxed) {
                        let idx = i % lines.len();
                        let line = &lines[idx];
                        i += 1;
                        if writer.write_all(line.as_bytes()).is_err()
                            || writer.write_all(b"\n").is_err()
                        {
                            if resilient {
                                err += 1;
                                continue 'conn;
                            }
                            break 'conn;
                        }
                        resp.clear();
                        match reader.read_line(&mut resp) {
                            Ok(n) if n > 0 && resp.starts_with("{\"score\"") => {
                                ok += 1;
                                if let Some(oracle) = &oracle {
                                    if parse_score_bits(&resp) != Some(oracle[idx]) {
                                        bits_ok.store(false, Ordering::Relaxed);
                                    }
                                }
                            }
                            Ok(n) if n > 0 => err += 1,
                            _ => {
                                if resilient {
                                    err += 1;
                                    continue 'conn;
                                }
                                break 'conn;
                            }
                        }
                    }
                }
                (ok, err)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut err) = (0u64, 0u64);
    for w in workers {
        let (o, e) = w.join().expect("client thread");
        ok += o;
        err += e;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let snap = handle.shutdown();

    let phase = PhaseResult {
        name,
        max_batch,
        cache_capacity,
        shards,
        clients,
        seconds: elapsed,
        requests_ok: ok,
        requests_err: err,
        throughput_rps: ok as f64 / elapsed,
        mean_batch_size: snap.mean_batch_size,
        cache_hit_rate: snap.cache_hit_rate,
        p50_latency_us: snap.p50_latency_us,
        p99_latency_us: snap.p99_latency_us,
        latency_buckets_us: snap.latency_buckets_us,
        batch_size_buckets: snap.batch_size_buckets,
    };
    (phase, bits_ok.load(Ordering::Relaxed))
}

/// Pulls the `"score"` field bits out of a response line; `None` when
/// the line is not a score response.
fn parse_score_bits(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"score\":")?;
    let end = rest.find(',')?;
    rest[..end].parse::<f64>().ok().map(f64::to_bits)
}

/// The reload phase: batched single-shard traffic while a controller
/// connection hot-swaps the model every ~200 ms, alternating between
/// the boot weights and a different-seed network of the same shape.
/// Reported like any other phase so `reload_p99_ratio` (its p99 over
/// the batched phase's) quantifies what the swaps cost the tail.
fn run_reload_phase(
    ctx: &ExperimentContext,
    lines: &Arc<Vec<String>>,
    clients: usize,
    seconds: f64,
    max_batch: usize,
) -> PhaseResult {
    let dim = ctx.detector.features().dim();
    let alt = NetworkBuilder::new(dim)
        .layer(8, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(0x5eed)
        .build()
        .expect("alternate network");
    let dir = std::env::temp_dir().join(format!("maleva-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("reload scratch dir");
    let write = |name: &str, json: String| -> String {
        let path = dir.join(name);
        std::fs::write(&path, json).expect("write model export");
        path.to_str().expect("utf8 path").to_string()
    };
    let boot_path = write(
        "boot.json",
        ctx.detector.network().to_json().expect("boot export"),
    );
    let alt_path = write("alt.json", alt.to_json().expect("alt export"));

    let spec = PhaseSpec {
        name: "reload",
        clients,
        max_batch,
        cache_capacity: 0,
        shards: 1,
        faults: FaultPlan::disabled(),
        sentinel: SentinelConfig::default(),
        oracle: None,
    };
    // Cache off, like the batched phase it is compared against —
    // otherwise repeats would answer from the cache and the p99 ratio
    // would measure lookups, not reload interference.
    let config = ServeConfig {
        max_batch,
        cache_capacity: 0,
        batch_timeout: Duration::ZERO,
        ..ServeConfig::default()
    };
    let handle = spawn(ctx.detector.clone(), config).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Controller: one extra connection swapping models until stopped.
    let controller = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> u64 {
            let stream = TcpStream::connect(addr).expect("controller connect");
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut swaps = 0u64;
            let mut resp = String::new();
            while !stop.load(Ordering::Relaxed) {
                let path = if swaps.is_multiple_of(2) {
                    &alt_path
                } else {
                    &boot_path
                };
                let line = format!("{{\"cmd\":\"reload\",\"path\":\"{path}\"}}\n");
                if writer.write_all(line.as_bytes()).is_err() {
                    break;
                }
                resp.clear();
                match reader.read_line(&mut resp) {
                    Ok(n) if n > 0 && resp.starts_with("{\"reload\"") => swaps += 1,
                    Ok(n) if n > 0 => panic!("reload rejected under load: {resp}"),
                    _ => break,
                }
                std::thread::sleep(Duration::from_millis(200));
            }
            swaps
        })
    };

    // Same worker pool as run_phase, minus the server spawn: reuse by
    // driving run_phase's loop inline would tangle ownership, so the
    // traffic half lives here too, against the already-running server.
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let lines = Arc::clone(lines);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, u64) {
                let (mut ok, mut err) = (0u64, 0u64);
                let Ok(stream) = TcpStream::connect(addr) else {
                    return (0, 1);
                };
                stream.set_nodelay(true).ok();
                let Ok(mut writer) = stream.try_clone() else {
                    return (0, 1);
                };
                let mut reader = BufReader::new(stream);
                let mut resp = String::new();
                let mut i = c * lines.len() / clients.max(1);
                while !stop.load(Ordering::Relaxed) {
                    let line = &lines[i % lines.len()];
                    i += 1;
                    if writer.write_all(line.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                    {
                        break;
                    }
                    resp.clear();
                    match reader.read_line(&mut resp) {
                        Ok(n) if n > 0 && resp.starts_with("{\"score\"") => ok += 1,
                        Ok(n) if n > 0 => err += 1,
                        _ => break,
                    }
                }
                (ok, err)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut err) = (0u64, 0u64);
    for w in workers {
        let (o, e) = w.join().expect("client thread");
        ok += o;
        err += e;
    }
    let swaps = controller.join().expect("controller thread");
    let elapsed = start.elapsed().as_secs_f64();
    let generation = handle.generation();
    let snap = handle.shutdown();
    assert_eq!(
        generation, swaps,
        "every acked reload advanced the generation"
    );
    eprintln!("[serve_load] reload phase swapped the model {swaps} times");

    PhaseResult {
        name: spec.name,
        max_batch,
        cache_capacity: 0,
        shards: 1,
        clients,
        seconds: elapsed,
        requests_ok: ok,
        requests_err: err,
        throughput_rps: ok as f64 / elapsed,
        mean_batch_size: snap.mean_batch_size,
        cache_hit_rate: snap.cache_hit_rate,
        p50_latency_us: snap.p50_latency_us,
        p99_latency_us: snap.p99_latency_us,
        latency_buckets_us: snap.latency_buckets_us,
        batch_size_buckets: snap.batch_size_buckets,
    }
}
