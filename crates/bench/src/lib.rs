//! Benchmark harness crate for the maleva reproduction; see the `repro` binary and Criterion benches.
