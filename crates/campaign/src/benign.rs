//! Concurrent benign traffic riding alongside a campaign.
//!
//! Real scoring services are not idle while an attacker probes them:
//! ordinary clients keep submitting ordinary programs. The pool spawns
//! worker threads, each with its own `client_id` and its own seeded
//! sample stream from the world, so the sentinel sees realistic mixed
//! traffic — and the campaign report can assert that none of it was
//! throttled (the false-positive side of the defense).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use maleva_apisim::World;
use maleva_client::{BackoffPolicy, ClientConfig, ClientError, ScoreClient};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What one benign worker saw over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignWorkerReport {
    /// The worker's `client_id` on the wire (`benign-<i>`).
    pub client_id: String,
    /// Score requests attempted.
    pub requests: u64,
    /// Requests answered with a score.
    pub ok: u64,
    /// Requests refused with the sentinel's `throttled` error — the
    /// defense's false positives; a healthy campaign reports zero.
    pub throttled: u64,
    /// Any other failure (transport, overload, deadline).
    pub other_errors: u64,
}

/// A pool of benign-traffic worker threads.
pub struct BenignPool {
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<BenignWorkerReport>>,
}

impl BenignPool {
    /// Spawns `workers` threads against `addr`, each sampling fresh
    /// programs from its own clone of `world` (seeded per worker, so a
    /// rerun replays the same benign submissions) and scoring them with
    /// `gap` pauses in between. Zero workers yields an empty pool.
    pub fn spawn(addr: &str, world: &World, workers: usize, gap: Duration, seed: u64) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..workers)
            .map(|i| {
                let stop = Arc::clone(&stop);
                let world = world.clone();
                let addr = addr.to_string();
                std::thread::spawn(move || run_worker(&addr, &world, i, gap, seed, &stop))
            })
            .collect();
        BenignPool { stop, handles }
    }

    /// Signals every worker to stop and joins them, returning their
    /// reports in worker order.
    pub fn stop(self) -> Vec<BenignWorkerReport> {
        self.stop.store(true, Ordering::SeqCst);
        self.handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    }
}

fn run_worker(
    addr: &str,
    world: &World,
    index: usize,
    gap: Duration,
    seed: u64,
    stop: &AtomicBool,
) -> BenignWorkerReport {
    let client_id = format!("benign-{index}");
    let mut client = ScoreClient::new(ClientConfig {
        addr: addr.to_string(),
        client_id: Some(client_id.clone()),
        // Benign clients are polite: one attempt, short deadline, move on.
        max_attempts: 1,
        call_deadline: Duration::from_secs(2),
        backoff: BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            jitter_frac: 0.0,
            seed: seed ^ index as u64,
        },
        ..ClientConfig::default()
    });
    let mut rng = maleva_apisim::rng(seed.wrapping_add(0xBE9 + index as u64));
    let mut report = BenignWorkerReport {
        client_id,
        ..BenignWorkerReport::default()
    };
    while !stop.load(Ordering::SeqCst) {
        // Ordinary traffic is mostly clean with the occasional malware
        // submission, each a fresh sample — never the micro-perturbed
        // probing pattern the sentinel hunts for.
        let malware = rng.gen_bool(0.25);
        let batch = world.sample_batch(usize::from(!malware), usize::from(malware), &mut rng);
        let counts = batch[0].counts().to_vec();
        report.requests += 1;
        match client.score_counts(&counts) {
            Ok(_) => report.ok += 1,
            Err(err) if is_throttled(&err) => report.throttled += 1,
            Err(_) => report.other_errors += 1,
        }
        std::thread::sleep(gap);
    }
    report
}

/// Whether the sentinel's `throttled` refusal is anywhere in the error
/// chain (it is retryable, so it can hide inside retry wrappers).
fn is_throttled(err: &ClientError) -> bool {
    match err {
        ClientError::Server { kind, .. } => kind == "throttled",
        ClientError::RetriesExhausted { last, .. } | ClientError::BudgetExhausted { last } => {
            is_throttled(last)
        }
        _ => false,
    }
}
