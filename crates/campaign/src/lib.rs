//! `maleva-campaign` — live black-box extraction campaigns against a
//! running `maleva-serve` instance.
//!
//! The offline black-box framework (`maleva_core::blackbox`, the
//! paper's Figure 2) answers *can a substitute-model attack evade the
//! detector*. This crate answers the operational question: *what does
//! that attack look like on the wire, and does a deployed defense stop
//! it?* A campaign:
//!
//! 1. spawns (or attaches to) a scoring server wrapping the
//!    experiment's trained detector, with the extraction sentinel
//!    configured on or off;
//! 2. runs the full Papernot substitute pipeline — seed-corpus
//!    labelling, Jacobian-style augmentation, JSMA crafting, rebuilt
//!    program re-scans — with every oracle query answered **over TCP**
//!    by the live server ([`LiveOracle`]), under the same explicit
//!    query budget as the offline run;
//! 3. keeps concurrent benign traffic flowing from worker threads
//!    ([`BenignPool`]), each with its own `client_id`, so defense
//!    false positives are measured, not assumed;
//! 4. emits a serializable [`CampaignReport`]: attack success rate,
//!    queries-to-evasion, per-phase query accounting, whether (and
//!    when) the sentinel flagged the attacker, and the benign
//!    false-throttle count.
//!
//! Because serving is bit-identical to local scanning, a campaign with
//! the sentinel off replays the offline run for the same seed — the
//! substitute agreement and evasion counts match `blackbox::run`
//! exactly. Turning the sentinel on is therefore a controlled
//! experiment: any change in attacker outcome is the defense.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benign;
mod oracle;

pub use benign::{BenignPool, BenignWorkerReport};
pub use oracle::{Blocked, LiveOracle};

use std::time::Duration;

use maleva_client::{BackoffPolicy, ClientConfig, ScoreClient, SentinelInfo, StatsInfo};
use maleva_core::blackbox::{self, BlackboxConfig, BlackboxSummary};
use maleva_core::ExperimentContext;
use maleva_nn::NnError;
use maleva_serve::{SentinelConfig, ServeConfig};
use serde::{Deserialize, Serialize};

/// One campaign's knobs: the attack, the defense, and the traffic mix.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The substitute-attack configuration (seed corpus, augmentation
    /// rounds, JSMA gamma, evaluation samples, oracle-query budget).
    pub blackbox: BlackboxConfig,
    /// Sentinel configuration for the spawned server (ignored when
    /// [`CampaignConfig::addr`] attaches to an external server).
    pub sentinel: SentinelConfig,
    /// Benign worker threads running alongside the attacker.
    pub benign_workers: usize,
    /// Pause between one benign worker's consecutive submissions.
    pub benign_gap: Duration,
    /// The attacker's `client_id` on the wire.
    pub attacker_client_id: String,
    /// The attacker client's per-call attempt budget. Two attempts
    /// means a throttled attacker retries once (honoring
    /// `retry_after_ms`) before giving up — enough to observe the
    /// sentinel without stalling a test for minutes.
    pub attacker_max_attempts: u32,
    /// Attach to a server already running at this address instead of
    /// spawning one in-process. The external server must wrap the same
    /// `(scale, seed)` detector or the measurements are meaningless.
    pub addr: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            blackbox: BlackboxConfig::default(),
            sentinel: SentinelConfig::default(),
            benign_workers: 2,
            benign_gap: Duration::from_millis(2),
            attacker_client_id: "attacker-0".to_string(),
            attacker_max_attempts: 2,
            addr: None,
        }
    }
}

/// Why (and when) the live oracle stopped answering the attacker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedReport {
    /// The server error kind behind the refusal (e.g. `"throttled"`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Oracle queries answered before the refusal.
    pub after_queries: usize,
    /// Whether the refusal was the sentinel's throttle.
    pub throttled: bool,
}

/// Aggregated benign-traffic outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignSummary {
    /// Per-worker reports, in worker order.
    pub workers: Vec<BenignWorkerReport>,
    /// Total requests attempted across workers.
    pub requests: u64,
    /// Total requests answered with a score.
    pub ok: u64,
    /// Total sentinel throttles of benign clients — the defense's
    /// false positives; a healthy campaign reports zero.
    pub throttled: u64,
    /// Total other failures (transport, overload, deadline).
    pub other_errors: u64,
}

impl BenignSummary {
    fn from_workers(workers: Vec<BenignWorkerReport>) -> Self {
        let mut s = BenignSummary {
            workers,
            ..BenignSummary::default()
        };
        for w in &s.workers {
            s.requests += w.requests;
            s.ok += w.ok;
            s.throttled += w.throttled;
            s.other_errors += w.other_errors;
        }
        s
    }
}

/// The serializable outcome of one campaign (`campaign_report.json`).
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Experiment scale name (`tiny` / `quick` / `paper`).
    pub scale: String,
    /// The experiment seed (context and attack share it).
    pub seed: u64,
    /// Whether the sentinel was enabled for this campaign.
    pub sentinel_enabled: bool,
    /// The sentinel's configured action (`"throttle"` / `"poison"`).
    pub sentinel_action: String,
    /// Whether the attack pipeline ran to completion. `false` means
    /// the oracle refused mid-run — see [`CampaignReport::blocked`].
    pub completed: bool,
    /// The refusal that ended an incomplete campaign.
    pub blocked: Option<BlockedReport>,
    /// Full attack summary (agreement, ledger, evasion curve) when the
    /// pipeline completed.
    pub attack: Option<BlackboxSummary>,
    /// Evasions over attacked samples (`0` when the attack never
    /// reached its evaluation).
    pub attack_success_rate: f64,
    /// Total oracle queries spent when the first evasion landed
    /// (`0` = no evasion).
    pub queries_to_first_evasion: usize,
    /// Oracle queries the live server actually answered.
    pub oracle_queries_answered: usize,
    /// Whether the sentinel flagged the attacker's `client_id`.
    pub attacker_flagged: bool,
    /// Attacker query index at which the flag went up (`0` = never).
    pub attacker_flagged_at_query: u64,
    /// Benign-traffic outcome.
    pub benign: BenignSummary,
    /// The server's sentinel report at campaign end.
    pub sentinel: SentinelInfo,
    /// The server's metrics snapshot at campaign end.
    pub server_stats: StatsInfo,
}

fn client_refused(what: &str, err: maleva_client::ClientError) -> NnError {
    NnError::InvalidConfig {
        detail: format!("campaign {what} failed: {err}"),
    }
}

/// Runs one live campaign: server up (unless attaching), benign
/// traffic on, attack through the wire, diagnostics down, report out.
///
/// A blocked attacker (sentinel throttle, overload, transport loss) is
/// a campaign *outcome*, not an error: the report comes back with
/// `completed == false` and the refusal recorded. Only infrastructure
/// failures — server spawn, training, diagnostics — surface as `Err`.
///
/// # Errors
///
/// Returns [`NnError`] when the server cannot be spawned, the attack
/// fails for a non-oracle reason, or end-of-run diagnostics cannot be
/// fetched.
pub fn run_campaign(
    ctx: &ExperimentContext,
    config: &CampaignConfig,
) -> Result<CampaignReport, NnError> {
    let mut span = maleva_obs::Span::enter("campaign.run");
    span.record("seed", ctx.seed);

    let handle = match &config.addr {
        Some(_) => None,
        None => {
            let serve_config = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                sentinel: config.sentinel.clone(),
                ..ServeConfig::default()
            };
            Some(
                maleva_serve::spawn(ctx.detector.clone(), serve_config).map_err(|e| {
                    NnError::InvalidConfig {
                        detail: format!("campaign could not spawn a server: {e}"),
                    }
                })?,
            )
        }
    };
    let addr = match (&config.addr, &handle) {
        (Some(addr), _) => addr.clone(),
        (None, Some(h)) => h.addr().to_string(),
        (None, None) => unreachable!("spawned or attached"),
    };

    let pool = BenignPool::spawn(
        &addr,
        &ctx.world,
        config.benign_workers,
        config.benign_gap,
        ctx.seed,
    );

    let attacker = ScoreClient::new(ClientConfig {
        addr: addr.clone(),
        client_id: Some(config.attacker_client_id.clone()),
        max_attempts: config.attacker_max_attempts.max(1),
        call_deadline: Duration::from_secs(10),
        backoff: BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            jitter_frac: 0.0,
            seed: config.blackbox.seed,
        },
        ..ClientConfig::default()
    });
    let mut live = LiveOracle::new(attacker, ctx.world.vocab());
    let attack_result = blackbox::run_with_oracle(ctx, &config.blackbox, &mut live);
    let oracle_queries_answered = live.queries();
    let blocked = live.blocked().cloned();
    drop(live);

    let benign = BenignSummary::from_workers(pool.stop());

    // Diagnostics ride a fresh client with no client_id: command
    // requests never touch the sentinel, so the peer-address fallback
    // identity is fine here.
    let mut diag = ScoreClient::new(ClientConfig {
        addr,
        max_attempts: 2,
        ..ClientConfig::default()
    });
    let sentinel_info = diag.sentinel().map_err(|e| client_refused("sentinel", e))?;
    let server_stats = diag.stats().map_err(|e| client_refused("stats", e))?;
    drop(diag);
    if let Some(h) = handle {
        h.shutdown();
    }

    let attack = match attack_result {
        Ok(artifacts) => Some(artifacts.summary()),
        Err(err) => {
            if blocked.is_none() {
                // A genuine pipeline failure (training, shapes), not a
                // refusal — surface it.
                return Err(err);
            }
            None
        }
    };

    let attacker_row = sentinel_info.client(&config.attacker_client_id);
    let report = CampaignReport {
        scale: ctx.scale.name.to_string(),
        seed: ctx.seed,
        sentinel_enabled: config.sentinel.enabled,
        sentinel_action: config.sentinel.action.name().to_string(),
        completed: attack.is_some(),
        blocked: blocked.map(|b| BlockedReport {
            throttled: b.throttled(),
            kind: b.kind,
            detail: b.detail,
            after_queries: b.after_queries,
        }),
        attack_success_rate: attack
            .as_ref()
            .filter(|a| a.attacked > 0)
            .map_or(0.0, |a| a.evasions as f64 / a.attacked as f64),
        queries_to_first_evasion: attack.as_ref().map_or(0, |a| a.queries_to_first_evasion),
        attack,
        oracle_queries_answered,
        attacker_flagged: attacker_row.is_some_and(|r| r.flagged),
        attacker_flagged_at_query: attacker_row.map_or(0, |r| r.flagged_at_query),
        benign,
        sentinel: sentinel_info,
        server_stats,
    };
    span.record("completed", u64::from(report.completed));
    span.record(
        "evasions",
        report.attack.as_ref().map_or(0, |a| a.evasions) as u64,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sentinel_off_with_benign_traffic() {
        let config = CampaignConfig::default();
        assert!(!config.sentinel.enabled);
        assert!(config.benign_workers > 0);
        assert!(config.attacker_max_attempts >= 1);
        assert!(config.addr.is_none());
    }

    #[test]
    fn campaign_report_serializes_to_json() {
        let report = CampaignReport {
            scale: "tiny".to_string(),
            seed: 42,
            sentinel_enabled: true,
            sentinel_action: "throttle".to_string(),
            completed: false,
            blocked: Some(BlockedReport {
                kind: "throttled".to_string(),
                detail: "retry in 25 ms".to_string(),
                after_queries: 77,
                throttled: true,
            }),
            attack: None,
            attack_success_rate: 0.0,
            queries_to_first_evasion: 0,
            oracle_queries_answered: 77,
            attacker_flagged: true,
            attacker_flagged_at_query: 61,
            benign: BenignSummary::from_workers(vec![BenignWorkerReport {
                client_id: "benign-0".to_string(),
                requests: 10,
                ok: 10,
                throttled: 0,
                other_errors: 0,
            }]),
            sentinel: SentinelInfo {
                enabled: true,
                action: "throttle".to_string(),
                tracked_clients: 2,
                flagged_clients: 1,
                clients: Vec::new(),
            },
            server_stats: StatsInfo {
                requests: 100,
                errors: 5,
                overloaded: 0,
                deadline_exceeded: 0,
                cache_hits: 3,
                cache_misses: 97,
                sentinel_throttled: 5,
                sentinel_poisoned: 0,
                sentinel_flagged: 1,
                p99_latency_us: 900,
            },
        };
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("\"completed\":false"));
        assert!(json.contains("\"kind\":\"throttled\""));
        assert!(json.contains("\"attacker_flagged\":true"));
        assert!(json.contains("\"benign\""));
    }

    #[test]
    fn benign_summary_totals_add_up() {
        let s = BenignSummary::from_workers(vec![
            BenignWorkerReport {
                client_id: "benign-0".to_string(),
                requests: 7,
                ok: 6,
                throttled: 0,
                other_errors: 1,
            },
            BenignWorkerReport {
                client_id: "benign-1".to_string(),
                requests: 5,
                ok: 5,
                throttled: 0,
                other_errors: 0,
            },
        ]);
        assert_eq!(s.requests, 12);
        assert_eq!(s.ok, 11);
        assert_eq!(s.throttled, 0);
        assert_eq!(s.other_errors, 1);
    }
}
