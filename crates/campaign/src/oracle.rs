//! The live label oracle: `core::blackbox`'s [`LabelOracle`] answered
//! by a running `maleva-serve` instance over TCP.
//!
//! The attacker "submits a program" exactly the way the offline
//! pipeline scans one — render its API-call log with the world
//! vocabulary, parse the counts back — and ships the counts over the
//! wire. Serving is bit-identical to local scanning (the serve crate's
//! property tests), so for the same seed the live attacker sees the
//! same verdicts as the offline one; the whole live run replays the
//! offline run until a defense interferes.

use maleva_apisim::{log::parse_counts, ApiVocab, Program};
use maleva_client::{ClientError, ScoreClient};
use maleva_core::blackbox::LabelOracle;
use maleva_nn::NnError;

/// Why the oracle stopped answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocked {
    /// The deepest server error kind behind the refusal (e.g.
    /// `"throttled"`), or a transport description.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Oracle queries answered before the refusal.
    pub after_queries: usize,
}

impl Blocked {
    /// Whether the sentinel's throttle stopped the campaign.
    pub fn throttled(&self) -> bool {
        self.kind == "throttled"
    }
}

/// Digs the server `kind` out of a client error, unwrapping the retry
/// wrappers (`RetriesExhausted`/`BudgetExhausted` carry the last
/// underlying error).
fn root_kind(err: &ClientError) -> (String, String) {
    match err {
        ClientError::Server { kind, detail, .. } => (kind.clone(), detail.clone()),
        ClientError::RetriesExhausted { last, .. } | ClientError::BudgetExhausted { last } => {
            root_kind(last)
        }
        other => ("transport".to_string(), other.to_string()),
    }
}

/// A [`LabelOracle`] that queries a live scoring service.
pub struct LiveOracle<'a> {
    client: ScoreClient,
    vocab: &'a ApiVocab,
    queries: usize,
    blocked: Option<Blocked>,
}

impl<'a> LiveOracle<'a> {
    /// Wraps a connected client; `vocab` is the world vocabulary used
    /// to render program logs (the defender's feature space on the
    /// wire).
    pub fn new(client: ScoreClient, vocab: &'a ApiVocab) -> Self {
        LiveOracle {
            client,
            vocab,
            queries: 0,
            blocked: None,
        }
    }

    /// Oracle queries successfully answered so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// The refusal that stopped the campaign, if any.
    pub fn blocked(&self) -> Option<&Blocked> {
        self.blocked.as_ref()
    }

    /// The client's resilience metrics, for the campaign report.
    pub fn client(&self) -> &ScoreClient {
        &self.client
    }
}

impl LabelOracle for LiveOracle<'_> {
    fn label(&mut self, program: &Program) -> Result<bool, NnError> {
        let text = program.render_log(self.vocab);
        let counts = parse_counts(&text, self.vocab);
        match self.client.score_counts(&counts) {
            Ok(outcome) => {
                self.queries += 1;
                Ok(outcome.score >= 0.5)
            }
            Err(err) => {
                let (kind, detail) = root_kind(&err);
                self.blocked = Some(Blocked {
                    kind: kind.clone(),
                    detail,
                    after_queries: self.queries,
                });
                Err(NnError::InvalidConfig {
                    detail: format!("live oracle refused ({kind}): {err}"),
                })
            }
        }
    }
}
