//! End-to-end campaigns against a live server: the controlled
//! experiment the crate exists for.
//!
//! One tiny seed-42 context, three campaigns:
//!
//! * sentinel **off** — the live attack must replay the offline oracle
//!   run exactly (same agreement, same ledger, same evasions), proving
//!   the wire adds nothing but transport;
//! * sentinel **on (throttle)** — the same attacker must be flagged by
//!   its query pattern and cut off before its budget, with zero benign
//!   clients throttled;
//! * sentinel **on (poison)** — the attacker is never refused, but the
//!   answers it extracts after flagging are deterministic noise.

use std::sync::OnceLock;
use std::time::Duration;

use maleva_campaign::{run_campaign, CampaignConfig};
use maleva_core::blackbox::{self, BlackboxConfig};
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_serve::{SentinelAction, SentinelConfig};

static CTX: OnceLock<ExperimentContext> = OnceLock::new();

fn ctx() -> &'static ExperimentContext {
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny ctx"))
}

/// The reference attacker (see `tests/blackbox_regression.rs`): seed 13
/// lands 4 evasions offline, so the sentinel-off campaign has real
/// evasions to replay and the sentinel-on campaign has something to
/// prevent.
fn attack_config() -> BlackboxConfig {
    BlackboxConfig {
        seed_corpus: 60,
        augmentation_rounds: 1,
        vocab_overlap: 0.6,
        gamma: 0.05,
        eval_samples: 30,
        query_budget: 400,
        seed: 13,
    }
}

fn campaign_config(sentinel: SentinelConfig) -> CampaignConfig {
    CampaignConfig {
        blackbox: attack_config(),
        sentinel,
        benign_workers: 2,
        benign_gap: Duration::from_millis(1),
        ..CampaignConfig::default()
    }
}

fn sentinel_on(action: SentinelAction) -> SentinelConfig {
    SentinelConfig {
        enabled: true,
        action,
        seed: 42,
        ..SentinelConfig::default()
    }
}

#[test]
fn sentinel_off_campaign_replays_the_offline_attack() {
    let offline = blackbox::run(ctx(), &attack_config()).expect("offline run");
    let report = run_campaign(ctx(), &campaign_config(SentinelConfig::default()))
        .expect("sentinel-off campaign");

    assert!(report.completed, "blocked: {:?}", report.blocked);
    assert!(!report.sentinel_enabled);
    let attack = report.attack.as_ref().expect("attack summary");

    // The wire is transparent: the live oracle answered with the exact
    // verdicts of the offline detector, so the whole pipeline replays.
    assert_eq!(attack.ledger, offline.ledger);
    assert_eq!(attack.oracle_agreement, offline.oracle_agreement);
    assert_eq!(attack.evasions, offline.evasions);
    assert_eq!(
        attack.queries_to_first_evasion,
        offline.queries_to_first_evasion.unwrap_or(0)
    );
    assert!(attack.evasions >= 1, "reference attacker must evade");
    assert_eq!(report.oracle_queries_answered, offline.ledger.total());
    let expected_asr = offline.evasions as f64 / offline.attacked as f64;
    assert!((report.attack_success_rate - expected_asr).abs() < 1e-12);

    // An idle sentinel neither tracks nor flags anyone.
    assert!(!report.attacker_flagged);
    assert_eq!(report.sentinel.tracked_clients, 0);

    // Benign traffic flowed and was never throttled.
    assert_eq!(report.benign.workers.len(), 2);
    assert!(report.benign.requests > 0, "benign workers never ran");
    assert_eq!(report.benign.throttled, 0);
    assert_eq!(report.server_stats.sentinel_throttled, 0);
}

#[test]
fn sentinel_throttle_flags_and_stops_the_attacker_before_its_budget() {
    let offline = blackbox::run(ctx(), &attack_config()).expect("offline run");
    let report = run_campaign(
        ctx(),
        &campaign_config(sentinel_on(SentinelAction::Throttle)),
    )
    .expect("sentinel-on campaign");

    // The attacker was flagged by its probing pattern and refused.
    assert!(report.attacker_flagged, "sentinel: {:?}", report.sentinel);
    assert!(!report.completed, "defense failed to interrupt the attack");
    let blocked = report.blocked.as_ref().expect("blocked record");
    assert!(blocked.throttled, "blocked by {:?} instead", blocked.kind);

    // Flagged strictly before the attack budget — and in fact before
    // the offline run would have landed its first evasion, so the
    // evasion was prevented outright (queries-to-evasion diverges).
    let budget = attack_config().query_budget;
    assert!((report.attacker_flagged_at_query as usize) < budget);
    assert!(report.oracle_queries_answered < offline.ledger.total());
    assert!(
        report.oracle_queries_answered < offline.queries_to_first_evasion.unwrap(),
        "attacker reached {} answered queries; offline first evasion at {:?}",
        report.oracle_queries_answered,
        offline.queries_to_first_evasion
    );
    assert_eq!(report.attack_success_rate, 0.0);

    // The defense's false-positive side: zero benign throttles.
    assert!(report.benign.requests > 0, "benign workers never ran");
    assert_eq!(report.benign.throttled, 0);
    for w in &report.benign.workers {
        let row = report.sentinel.client(&w.client_id);
        assert!(
            row.is_none_or(|r| !r.flagged),
            "benign client {} flagged",
            w.client_id
        );
    }

    // The server-side metrics agree with the client-side view.
    assert!(report.server_stats.sentinel_throttled > 0);
    assert!(report.server_stats.sentinel_flagged >= 1);
    assert_eq!(report.sentinel.action, "throttle");
}

#[test]
fn sentinel_poison_feeds_the_flagged_attacker_noise_instead_of_refusing() {
    let report = run_campaign(ctx(), &campaign_config(sentinel_on(SentinelAction::Poison)))
        .expect("poison campaign");

    // Poisoning never refuses, so the pipeline runs to completion —
    // but the oracle's answers stopped being the detector's.
    assert!(report.completed, "blocked: {:?}", report.blocked);
    assert!(report.attacker_flagged);
    assert!(report.server_stats.sentinel_poisoned > 0);
    assert_eq!(report.server_stats.sentinel_throttled, 0);
    assert_eq!(report.benign.throttled, 0);
    assert_eq!(report.sentinel.action, "poison");
}
