//! End-to-end distributed tracing across a live campaign: every
//! attacker (and benign) query must be followable from the client's
//! minted trace context through the server's staged request span in
//! one trace stream.

use std::sync::OnceLock;
use std::time::Duration;

use maleva_campaign::{run_campaign, CampaignConfig};
use maleva_core::blackbox::BlackboxConfig;
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_obs::trace::{self, Sink};
use maleva_serve::SentinelConfig;

static CTX: OnceLock<ExperimentContext> = OnceLock::new();

fn ctx() -> &'static ExperimentContext {
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny ctx"))
}

#[test]
fn campaign_queries_join_client_and_server_traces() {
    let captured = trace::install_memory_sink();

    // A small sentinel-off campaign: no refusals, so every client call
    // reaches the server and must join.
    let report = run_campaign(
        ctx(),
        &CampaignConfig {
            blackbox: BlackboxConfig {
                seed_corpus: 30,
                augmentation_rounds: 1,
                vocab_overlap: 0.6,
                gamma: 0.05,
                eval_samples: 10,
                query_budget: 150,
                seed: 13,
            },
            sentinel: SentinelConfig::default(),
            benign_workers: 1,
            benign_gap: Duration::from_millis(1),
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    trace::install(Sink::Disabled).expect("disable sink");
    assert!(report.completed, "blocked: {:?}", report.blocked);
    assert!(report.oracle_queries_answered > 0);

    let lines = captured.lines();
    let trace_report = maleva_obs::report::analyze_lines(lines.iter().map(|s| s.as_str()), 5);
    assert_eq!(trace_report.parse_errors, 0, "unparseable trace lines");

    // Every oracle query minted a client-side trace, and every
    // client-side trace is joinable with the server's spans — the
    // end-to-end property the trace context exists for.
    assert!(
        trace_report.client_traces >= report.oracle_queries_answered,
        "client traces missing, report:\n{}",
        trace_report.render_text()
    );
    assert_eq!(
        trace_report.joined_traces,
        trace_report.client_traces,
        "some client traces never joined the server side, report:\n{}",
        trace_report.render_text()
    );

    // The server decomposed those requests into the six stages, and the
    // decomposition accounts for each request span's duration.
    assert!(
        trace_report.staged_requests >= report.oracle_queries_answered,
        "staged requests missing, report:\n{}",
        trace_report.render_text()
    );
    assert_eq!(
        trace_report.stage_sum_within_tolerance,
        trace_report.staged_requests,
        "stage decomposition leaks latency, report:\n{}",
        trace_report.render_text()
    );
}
