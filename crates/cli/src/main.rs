//! `maleva` — command-line interface to the adversarial-malware toolkit.
//!
//! ```text
//! maleva train --out detector.json [--scale tiny|quick|paper] [--seed N]
//!              [--checkpoint-dir DIR [--checkpoint-every K] [--resume]]
//! maleva scan  --model detector.json --log sample.log
//! maleva score --remote HOST:PORT --log sample.log [--attempts N] [--deadline-ms T]
//! maleva gen   --out sample.log [--class malware|clean] [--seed N]
//! maleva attack --model detector.json --log sample.log [--theta T] [--gamma G] [--out evaded.log]
//! maleva info  --model detector.json
//! maleva serve --model detector.json [--addr HOST:PORT] [--max-batch N]
//!              [--batch-timeout-ms T] [--queue-cap N] [--cache-cap N]
//!              [--deadline-ms T] [--shed-depth N] [--faults SPEC]
//!              [--sentinel off|throttle|poison] [--sentinel-seed N]
//! maleva blackbox [--scale S] [--seed N] [--queries BUDGET] [--report FILE]
//! maleva campaign [--scale S] [--seed N] [--queries BUDGET] [--benign N]
//!              [--sentinel off|throttle|poison] [--report FILE]
//! maleva obs-report --trace trace.jsonl [--top N] [--out FILE]
//! ```
//!
//! The model artifact is a single JSON file holding the API vocabulary,
//! the fitted feature pipeline, and the trained network — everything the
//! deployed detector of the paper's Figure 2 consists of.

use std::collections::HashMap;
use std::process::ExitCode;

use maleva_apisim::{ApiVocab, Class, World, WorldConfig};
use maleva_attack::{EvasionAttack, Jsma};
use maleva_core::{CheckpointPlan, DetectorPipeline, ExperimentContext, ExperimentScale};
use maleva_obs::trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(t) = flags.get("threads") {
        match t.parse::<usize>() {
            Ok(n) if n > 0 => maleva_linalg::pool::set_threads(n),
            _ => {
                eprintln!("error: --threads needs a positive integer, got {t}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(b) = flags.get("backend") {
        match b.parse::<maleva_linalg::BackendKind>() {
            Ok(kind) => maleva_linalg::set_backend(Some(kind)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = flags.get("trace-out") {
        let sink = if path == "-" {
            trace::Sink::Stderr
        } else {
            trace::Sink::File(path.into())
        };
        if let Err(e) = trace::install(sink) {
            eprintln!("error: cannot open trace output {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let result = match command.as_str() {
        "train" => cmd_train(&flags),
        "scan" => cmd_scan(&flags),
        "score" => cmd_score(&flags),
        "gen" => cmd_gen(&flags),
        "attack" => cmd_attack(&flags),
        "info" => cmd_info(&flags),
        "serve" => cmd_serve(&flags),
        "reload" => cmd_reload(&flags),
        "blackbox" => cmd_blackbox(&flags),
        "campaign" => cmd_campaign(&flags),
        "obs-report" => cmd_obs_report(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command: {other}")),
    };
    trace::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
maleva — adversarial-malware toolkit (reproduction of Huang et al., DSN 2019)

usage:
  maleva train  --out detector.json [--scale tiny|quick|paper] [--seed N]
                [--checkpoint-dir DIR [--checkpoint-every K] [--resume]]
  maleva scan   --model detector.json --log sample.log
  maleva score  --remote HOST:PORT --log sample.log
                [--attempts N] [--deadline-ms T]
  maleva gen    --out sample.log [--class malware|clean] [--seed N]
  maleva attack --model detector.json --log sample.log
                [--theta T] [--gamma G] [--out evaded.log]
  maleva info   --model detector.json
  maleva serve  --model detector.json [--addr HOST:PORT] [--shards N]
                [--max-batch N] [--batch-timeout-ms T] [--queue-cap N]
                [--cache-cap N] [--deadline-ms T] [--shed-depth N]
                [--faults SPEC] [--sentinel off|throttle|poison]
                [--sentinel-seed N]
  maleva reload --remote HOST:PORT --model detector.json
  maleva blackbox [--scale tiny|quick|paper] [--seed N] [--attack-seed N]
                [--queries BUDGET] [--corpus N] [--rounds N] [--overlap F]
                [--gamma G] [--eval N] [--report FILE]
  maleva campaign [--scale tiny|quick|paper] [--seed N] [--attack-seed N]
                [--queries BUDGET] [--corpus N] [--rounds N] [--eval N]
                [--benign N] [--sentinel off|throttle|poison]
                [--sentinel-seed N] [--addr HOST:PORT] [--report FILE]
  maleva obs-report --trace trace.jsonl [--top N] [--out FILE]

serve runs --shards independent event loops (connections pinned by
accept round-robin) and injects deterministic faults when --faults (or
MALEVA_FAULTS) is set, e.g.
'seed=7,write_reset=p0.02,batch_panic=@50,delay_ms=2';
score talks to a running serve instance with retries, backoff, and a
circuit breaker instead of loading a model locally; reload hot-swaps
a running serve instance's model atomically at a batch boundary
(--model may be a pipeline/network export or a checkpoint directory
resolvable by the server)

blackbox runs the offline substitute-model attack (Figure 2) under an
oracle-query budget (0 = unlimited); campaign runs the same attack
live against a spawned (or --addr attached) serve instance with mixed
benign traffic, measuring the extraction sentinel when enabled, and
writes campaign_report.json

obs-report aggregates a --trace-out file offline: per-stage and
per-span latency percentiles, client/server trace joining, six-stage
decomposition checks, and the slowest-request exemplars

every command accepts --trace-out FILE (or '-' for stderr) to write
newline-delimited JSON spans, --threads N (or MALEVA_THREADS) to size
the linalg worker pool, and --backend scalar|blocked|pooled|simd (or
MALEVA_BACKEND) to pick the linalg backend every product dispatches
through — pooled (default) is bit-identical to the scalar reference,
simd is the fast f32 micro-kernel with a 1e-5 tolerance contract;
train also writes manifest.json next to its --out artifact";

/// Flags that take no value; parsed as `"true"`.
const BOOLEAN_FLAGS: &[&str] = &["resume"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key}"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn seed_of(flags: &HashMap<String, String>) -> Result<u64, String> {
    flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .unwrap_or(Ok(42))
}

fn load_model(flags: &HashMap<String, String>) -> Result<DetectorPipeline, String> {
    let path = required(flags, "model")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    DetectorPipeline::from_json(&json).map_err(|e| format!("cannot load model: {e}"))
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = required(flags, "out")?;
    let seed = seed_of(flags)?;
    let scale = match flags.get("scale").map(String::as_str).unwrap_or("quick") {
        "tiny" => ExperimentScale::tiny(),
        "quick" => ExperimentScale::quick(),
        "paper" => ExperimentScale::paper(),
        other => return Err(format!("unknown scale: {other}")),
    };
    let plan = match flags.get("checkpoint-dir") {
        Some(dir) => {
            let every: usize = flags
                .get("checkpoint-every")
                .map(|s| {
                    s.parse()
                        .map_err(|e| format!("bad --checkpoint-every: {e}"))
                })
                .unwrap_or(Ok(1))?;
            if every == 0 {
                return Err("--checkpoint-every must be positive".to_string());
            }
            CheckpointPlan::new(dir, every, flags.contains_key("resume"))
        }
        None => {
            if flags.contains_key("resume") {
                return Err("--resume requires --checkpoint-dir".to_string());
            }
            CheckpointPlan::none()
        }
    };
    eprintln!("training detector (scale={}, seed={seed}) ...", scale.name);
    let scale_name = scale.name;
    let build_start = std::time::Instant::now();
    let ctx =
        ExperimentContext::build_with_checkpoints(scale, seed, plan).map_err(|e| e.to_string())?;
    let build_elapsed = build_start.elapsed();
    let (tpr, tnr) = ctx.baseline_rates().map_err(|e| e.to_string())?;
    let json = ctx.detector.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;

    // Provenance manifest next to the model artifact.
    let manifest = maleva_obs::ManifestBuilder::new("maleva train")
        .seed(seed)
        .scale(scale_name)
        .config(&format!("train scale={scale_name} seed={seed}"))
        .crate_version("maleva-cli", env!("CARGO_PKG_VERSION"))
        .phase("build", build_elapsed)
        .extra("out", out)
        .build();
    let manifest_path = std::path::Path::new(out).with_file_name("manifest.json");
    manifest
        .write_to(&manifest_path)
        .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;

    println!("saved detector to {out} (malware TPR {tpr:.3}, clean TNR {tnr:.3})");
    println!("wrote provenance manifest to {}", manifest_path.display());
    Ok(())
}

fn cmd_scan(flags: &HashMap<String, String>) -> Result<(), String> {
    let detector = load_model(flags)?;
    let path = required(flags, "log")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let confidence = detector.scan_log(&text).map_err(|e| e.to_string())?;
    let verdict = if confidence >= 0.5 {
        "MALWARE"
    } else {
        "clean"
    };
    println!("{path}: {verdict} (confidence {:.2}%)", confidence * 100.0);
    Ok(())
}

/// Scores a log against a remote `maleva serve` instance through the
/// resilient client: retries with jittered backoff, honors the server's
/// `retry_after_ms` hints, and trips a circuit breaker when the server
/// is down — instead of loading a model artifact locally.
fn cmd_score(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = required(flags, "remote")?;
    let path = required(flags, "log")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let vocab = ApiVocab::standard();
    let counts = maleva_apisim::log::parse_counts(&text, &vocab);

    let defaults = maleva_client::ClientConfig::default();
    let max_attempts: u32 = flags
        .get("attempts")
        .map(|s| s.parse().map_err(|e| format!("bad --attempts: {e}")))
        .unwrap_or(Ok(defaults.max_attempts))?;
    let call_deadline = flags
        .get("deadline-ms")
        .map(|s| {
            s.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|e| format!("bad --deadline-ms: {e}"))
        })
        .unwrap_or(Ok(defaults.call_deadline))?;
    let mut client = maleva_client::ScoreClient::new(maleva_client::ClientConfig {
        addr: addr.to_string(),
        max_attempts,
        call_deadline,
        ..defaults
    });
    let outcome = client
        .score_counts(&counts)
        .map_err(|e| format!("remote scoring failed: {e}"))?;
    let verdict = if outcome.verdict == "malware" {
        "MALWARE"
    } else {
        "clean"
    };
    println!(
        "{path}: {verdict} (confidence {:.2}%, {} attempt{}, batch of {}{})",
        outcome.score * 100.0,
        outcome.attempts,
        if outcome.attempts == 1 { "" } else { "s" },
        outcome.batch_size,
        if outcome.cached { ", cached" } else { "" },
    );
    Ok(())
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = required(flags, "out")?;
    let seed = seed_of(flags)?;
    let class = match flags.get("class").map(String::as_str).unwrap_or("malware") {
        "malware" => Class::Malware,
        "clean" => Class::Clean,
        other => return Err(format!("unknown class: {other}")),
    };
    let world = World::new(WorldConfig::default());
    let mut rng = maleva_apisim::rng(seed);
    let program = world.sample_program(class, &mut rng);
    let vocab = ApiVocab::standard();
    std::fs::write(out, program.render_log(&vocab))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: synthetic {} sample ({} family, {} API calls)",
        program.class(),
        program.family(),
        program.total_calls()
    );
    Ok(())
}

fn cmd_attack(flags: &HashMap<String, String>) -> Result<(), String> {
    let detector = load_model(flags)?;
    let path = required(flags, "log")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let theta: f64 = flags
        .get("theta")
        .map(|s| s.parse().map_err(|e| format!("bad --theta: {e}")))
        .unwrap_or(Ok(0.25))?;
    let gamma: f64 = flags
        .get("gamma")
        .map(|s| s.parse().map_err(|e| format!("bad --gamma: {e}")))
        .unwrap_or(Ok(0.05))?;

    let counts = maleva_apisim::log::parse_counts(&text, detector.vocab());
    let feats = detector.features().transform_counts(&counts);
    let before = detector.scan_log(&text).map_err(|e| e.to_string())?;
    println!("original confidence: {:.2}%", before * 100.0);

    let jsma = Jsma::new(theta, gamma).with_high_confidence();
    let outcome = jsma
        .craft(detector.network(), &feats)
        .map_err(|e| e.to_string())?;
    if outcome.perturbed_features.is_empty() {
        println!("no admissible perturbation found (already clean or budget 0)");
        return Ok(());
    }

    // Translate the feature-space perturbation back into API insertions.
    println!("suggested API-call insertions (white-box JSMA, theta {theta}, gamma {gamma}):");
    let mut modified_counts = counts.clone();
    for &j in &outcome.perturbed_features {
        let target_value = outcome.adversarial[j];
        let add = detector.features().calls_needed(j, counts[j], target_value);
        if add == 0 {
            continue;
        }
        let name = detector.vocab().name(j).unwrap_or("?");
        println!("  + {add:>3} x {name}");
        modified_counts[j] = modified_counts[j].saturating_add(add);
    }

    // Re-render a modified log and re-scan it end-to-end.
    let program = maleva_apisim::Program::new(
        maleva_apisim::Family::Dropper, // metadata only; counts drive the scan
        maleva_apisim::OsVersion::Win10,
        modified_counts,
    );
    let modified_log = program.render_log(detector.vocab());
    let after = detector
        .scan_log(&modified_log)
        .map_err(|e| e.to_string())?;
    println!("modified confidence: {:.2}%", after * 100.0);
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &modified_log).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote modified log to {out}");
    }
    Ok(())
}

/// Parses the shared sentinel flags: `--sentinel off|throttle|poison`
/// (default off) and `--sentinel-seed N` (default the command's
/// `--seed`, falling back to 42).
fn sentinel_of(flags: &HashMap<String, String>) -> Result<maleva_serve::SentinelConfig, String> {
    let mut config = maleva_serve::SentinelConfig::default();
    match flags.get("sentinel").map(String::as_str).unwrap_or("off") {
        "off" => return Ok(config),
        "throttle" => {
            config.enabled = true;
            config.action = maleva_serve::SentinelAction::Throttle;
        }
        "poison" => {
            config.enabled = true;
            config.action = maleva_serve::SentinelAction::Poison;
        }
        other => return Err(format!("unknown --sentinel action: {other}")),
    }
    config.seed = match flags.get("sentinel-seed") {
        Some(s) => s.parse().map_err(|e| format!("bad --sentinel-seed: {e}"))?,
        None => seed_of(flags)?,
    };
    Ok(config)
}

/// Parses the flags shared by `blackbox` and `campaign` into a
/// [`maleva_core::blackbox::BlackboxConfig`].
fn blackbox_config_of(
    flags: &HashMap<String, String>,
    scale: &ExperimentScale,
) -> Result<maleva_core::blackbox::BlackboxConfig, String> {
    let defaults = maleva_core::blackbox::BlackboxConfig::default();
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|e| format!("bad --{name}: {e}")))
            .unwrap_or(Ok(default))
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|e| format!("bad --{name}: {e}")))
            .unwrap_or(Ok(default))
    };
    let attack_seed = match flags.get("attack-seed") {
        Some(s) => s.parse().map_err(|e| format!("bad --attack-seed: {e}"))?,
        None => seed_of(flags)?,
    };
    Ok(maleva_core::blackbox::BlackboxConfig {
        seed_corpus: parse_usize("corpus", defaults.seed_corpus)?,
        augmentation_rounds: parse_usize("rounds", defaults.augmentation_rounds)?,
        vocab_overlap: parse_f64("overlap", defaults.vocab_overlap)?,
        gamma: parse_f64("gamma", defaults.gamma)?,
        eval_samples: parse_usize("eval", scale.attack_samples.min(defaults.eval_samples))?,
        query_budget: parse_usize("queries", defaults.query_budget)?,
        seed: attack_seed,
    })
}

fn scale_of(flags: &HashMap<String, String>) -> Result<ExperimentScale, String> {
    match flags.get("scale").map(String::as_str).unwrap_or("quick") {
        "tiny" => Ok(ExperimentScale::tiny()),
        "quick" => Ok(ExperimentScale::quick()),
        "paper" => Ok(ExperimentScale::paper()),
        other => Err(format!("unknown scale: {other}")),
    }
}

/// Runs the offline black-box framework (Figure 2) and writes its
/// serializable summary as a JSON report.
fn cmd_blackbox(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let scale = scale_of(flags)?;
    let config = blackbox_config_of(flags, &scale)?;
    eprintln!(
        "building context (scale={}, seed={seed}) and running the substitute attack ...",
        scale.name
    );
    let ctx = ExperimentContext::build(scale, seed).map_err(|e| e.to_string())?;
    let artifacts = maleva_core::blackbox::run(&ctx, &config).map_err(|e| e.to_string())?;
    let summary = artifacts.summary();
    println!(
        "oracle queries : {} total ({} seed / {} aug / {} probe / {} eval)",
        summary.ledger.total(),
        summary.ledger.seed,
        summary.ledger.augmentation,
        summary.ledger.agreement,
        summary.ledger.evaluation
    );
    println!("substitute agreement : {:.3}", summary.oracle_agreement);
    println!(
        "evasions : {}/{} (baseline detection {:.3} -> {:.3})",
        summary.evasions, summary.attacked, summary.baseline_detection, summary.target_detection
    );
    if summary.queries_to_first_evasion > 0 {
        println!(
            "first evasion after {} oracle queries",
            summary.queries_to_first_evasion
        );
    }
    if let Some(out) = flags.get("report") {
        let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote report to {out}");
    }
    Ok(())
}

/// Runs a live campaign — the same attack through a spawned (or
/// attached) scoring server, with benign traffic and an optional
/// sentinel defense — and writes `campaign_report.json`.
fn cmd_campaign(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = seed_of(flags)?;
    let scale = scale_of(flags)?;
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|e| format!("bad --{name}: {e}")))
            .unwrap_or(Ok(default))
    };
    let defaults = maleva_campaign::CampaignConfig::default();
    let config = maleva_campaign::CampaignConfig {
        blackbox: blackbox_config_of(flags, &scale)?,
        sentinel: sentinel_of(flags)?,
        benign_workers: parse_usize("benign", defaults.benign_workers)?,
        addr: flags.get("addr").cloned(),
        ..defaults
    };
    eprintln!(
        "building context (scale={}, seed={seed}) and launching the campaign \
         (sentinel {}) ...",
        scale.name,
        if config.sentinel.enabled {
            config.sentinel.action.name()
        } else {
            "off"
        }
    );
    let ctx = ExperimentContext::build(scale, seed).map_err(|e| e.to_string())?;
    let report = maleva_campaign::run_campaign(&ctx, &config).map_err(|e| e.to_string())?;

    if report.completed {
        let attack = report.attack.as_ref().expect("completed implies summary");
        println!(
            "attack COMPLETED: {}/{} evasions (ASR {:.3}), agreement {:.3}, {} queries",
            attack.evasions,
            attack.attacked,
            report.attack_success_rate,
            attack.oracle_agreement,
            attack.ledger.total()
        );
        if report.queries_to_first_evasion > 0 {
            println!(
                "first evasion after {} oracle queries",
                report.queries_to_first_evasion
            );
        }
    } else {
        let blocked = report.blocked.as_ref().expect("incomplete implies blocked");
        println!(
            "attack BLOCKED after {} answered queries ({}: {})",
            report.oracle_queries_answered, blocked.kind, blocked.detail
        );
    }
    if report.attacker_flagged {
        println!(
            "sentinel flagged the attacker at query {}",
            report.attacker_flagged_at_query
        );
    }
    println!(
        "benign traffic: {} requests, {} throttled, {} other errors",
        report.benign.requests, report.benign.throttled, report.benign.other_errors
    );
    let out = flags
        .get("report")
        .map(String::as_str)
        .unwrap_or("campaign_report.json");
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote report to {out}");
    Ok(())
}

/// Aggregates a `--trace-out` JSONL file into the human-readable
/// latency-attribution report: per-span and per-stage percentiles,
/// client ↔ server trace joining, and the slowest-request exemplars.
fn cmd_obs_report(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "trace")?;
    let top: usize = flags
        .get("top")
        .map(|s| s.parse().map_err(|e| format!("bad --top: {e}")))
        .unwrap_or(Ok(maleva_obs::report::DEFAULT_TOP))?;
    let report = maleva_obs::report::analyze_file(path, top)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    if report.total_records == 0 {
        return Err(format!("{path} holds no trace records"));
    }
    let text = report.render_text();
    match flags.get("out") {
        Some(out) => {
            std::fs::write(out, &text).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote report to {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let detector = load_model(flags)?;
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|s| s.parse().map_err(|e| format!("bad --{name}: {e}")))
            .unwrap_or(Ok(default))
    };
    // --faults wins over the MALEVA_FAULTS environment variable.
    let faults = match flags.get("faults") {
        Some(spec) => {
            maleva_serve::FaultPlan::parse(spec).map_err(|e| format!("bad --faults: {e}"))?
        }
        None => {
            maleva_serve::FaultPlan::from_env().map_err(|e| format!("bad MALEVA_FAULTS: {e}"))?
        }
    };
    let defaults = maleva_serve::ServeConfig::default();
    let config = maleva_serve::ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        shards: parse_usize("shards", defaults.shards)?,
        max_batch: parse_usize("max-batch", defaults.max_batch)?,
        batch_timeout: std::time::Duration::from_millis(parse_usize(
            "batch-timeout-ms",
            defaults.batch_timeout.as_millis() as usize,
        )? as u64),
        queue_capacity: parse_usize("queue-cap", defaults.queue_capacity)?,
        cache_capacity: parse_usize("cache-cap", defaults.cache_capacity)?,
        max_line_bytes: defaults.max_line_bytes,
        request_deadline: std::time::Duration::from_millis(parse_usize(
            "deadline-ms",
            defaults.request_deadline.as_millis() as usize,
        )? as u64),
        shed_queue_depth: parse_usize("shed-depth", defaults.shed_queue_depth)?,
        faults,
        sentinel: sentinel_of(flags)?,
        slos: defaults.slos,
    };
    if config.sentinel.enabled {
        eprintln!(
            "extraction sentinel is ON (action {}, seed {})",
            config.sentinel.action.name(),
            config.sentinel.seed
        );
    }
    if config.faults.is_enabled() {
        eprintln!(
            "warning: fault injection is ACTIVE (seed {})",
            config.faults.seed
        );
    }
    let max_batch = config.max_batch;
    let shards = config.shards.max(1);
    let handle =
        maleva_serve::spawn(detector, config).map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "maleva-serve listening on {} ({shards} shard{}, max batch {max_batch}, \
         linalg backend {}); send {{\"cmd\":\"shutdown\"}} to stop",
        handle.addr(),
        if shards == 1 { "" } else { "s" },
        maleva_linalg::backend::effective_kind()
    );
    let stats = handle.join();
    println!(
        "served {} requests in {} batches (mean batch {:.1}, cache hit rate {:.1}%)",
        stats.requests,
        stats.batches,
        stats.mean_batch_size,
        stats.cache_hit_rate * 100.0
    );
    Ok(())
}

/// Hot-swaps a running `maleva serve` instance's model. The --model
/// path is resolved by the *server*, so it must name a pipeline or
/// network export (or checkpoint directory) on the server's
/// filesystem.
fn cmd_reload(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = required(flags, "remote")?;
    let path = required(flags, "model")?;
    let mut client = maleva_client::ScoreClient::connect_to(addr);
    let info = client
        .reload(path)
        .map_err(|e| format!("reload failed: {e}"))?;
    println!(
        "reloaded {path}: now serving model generation {} ({} parameters)",
        info.generation, info.params
    );
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let detector = load_model(flags)?;
    println!("vocabulary : {} APIs", detector.vocab().len());
    println!(
        "features   : {:?} transform, {} dims",
        detector.features().transform_kind(),
        detector.features().dim()
    );
    let dims = detector.network().dims();
    println!(
        "network    : {}-layer DNN {:?} ({} parameters)",
        dims.len(),
        dims,
        detector.network().param_count()
    );
    Ok(())
}
