//! Jittered exponential backoff with a deterministic, seedable jitter
//! stream.
//!
//! The schedule is a pure function of `(policy, attempt)`: the nominal
//! delay doubles per attempt up to a cap, and the jitter multiplier is
//! drawn from a SplitMix64 hash of `(seed, attempt)` — two clients with
//! the same seed back off identically (handy for reproducing a chaos
//! run), while different seeds decorrelate, avoiding retry stampedes.

use std::time::Duration;

/// SplitMix64 mixer — same construction as the server-side fault
/// injector, so schedules are reproducible across the workspace.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic jittered-exponential backoff schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffPolicy {
    /// Nominal delay before the first retry.
    pub base: Duration,
    /// Upper bound on the nominal delay (pre-jitter).
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: the actual delay is the nominal
    /// one scaled by a uniform multiplier in `[1 - j, 1 + j]`.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            jitter_frac: 0.5,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The un-jittered delay for retry `attempt` (0-based):
    /// `min(cap, base * 2^attempt)`. Monotone non-decreasing in
    /// `attempt` and never above `cap`.
    pub fn nominal(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// The jittered delay for retry `attempt`: `nominal` scaled by a
    /// seed-deterministic uniform multiplier in
    /// `[1 - jitter_frac, 1 + jitter_frac]`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let nominal = self.nominal(attempt);
        let j = self.jitter_frac.clamp(0.0, 1.0);
        if j == 0.0 {
            return nominal;
        }
        let draw = splitmix64(self.seed ^ 0x5bd1_e995_0000_0000 ^ u64::from(attempt));
        // Top 53 bits -> uniform f64 in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let mult = 1.0 - j + 2.0 * j * unit;
        nominal.mul_f64(mult.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_doubles_then_caps() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_frac: 0.0,
            seed: 0,
        };
        assert_eq!(p.nominal(0), Duration::from_millis(10));
        assert_eq!(p.nominal(1), Duration::from_millis(20));
        assert_eq!(p.nominal(3), Duration::from_millis(80));
        assert_eq!(p.nominal(4), Duration::from_millis(100));
        assert_eq!(p.nominal(40), Duration::from_millis(100));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        for attempt in 0..10 {
            assert_eq!(p.delay(attempt), p.nominal(attempt));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let p = BackoffPolicy {
            seed: 99,
            ..BackoffPolicy::default()
        };
        let q = p.clone();
        for attempt in 0..16 {
            assert_eq!(p.delay(attempt), q.delay(attempt));
            let nominal = p.nominal(attempt).as_secs_f64();
            let d = p.delay(attempt).as_secs_f64();
            assert!(d >= nominal * 0.5 - 1e-9 && d <= nominal * 1.5 + 1e-9);
        }
    }
}
