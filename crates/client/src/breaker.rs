//! A half-open circuit breaker with an explicit millisecond clock.
//!
//! The breaker trips open after a run of consecutive failures, rejects
//! calls for a cooldown, then admits a bounded number of half-open
//! probes. Two design points keep it deadlock-free:
//!
//! * time is an argument (`now_ms`), not a syscall — the state machine
//!   is a pure function of its inputs, so property tests can drive the
//!   clock arbitrarily and every test run is reproducible;
//! * a half-open probe that never reports back (a crashed caller)
//!   cannot wedge the breaker: once `probe_timeout_ms` elapses the
//!   probe slots are forfeited and [`CircuitBreaker::try_acquire`]
//!   admits fresh probes.

use std::sync::Mutex;

/// Breaker tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting probes.
    pub cooldown_ms: u64,
    /// Concurrent probes allowed while half-open.
    pub half_open_probes: u32,
    /// Half-open probes older than this are presumed lost; their slots
    /// are recycled so an unreported probe can never wedge the breaker.
    pub probe_timeout_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 500,
            half_open_probes: 1,
            probe_timeout_ms: 2_000,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are being counted.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// A bounded number of probes is testing the backend.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum Inner {
    Closed { failures: u32 },
    Open { opened_at_ms: u64 },
    HalfOpen { since_ms: u64, in_flight: u32 },
}

/// A thread-safe circuit breaker; see the module docs for semantics.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given config (thresholds are clamped
    /// to at least 1 so the state machine always makes progress).
    pub fn new(config: BreakerConfig) -> Self {
        let config = BreakerConfig {
            failure_threshold: config.failure_threshold.max(1),
            half_open_probes: config.half_open_probes.max(1),
            probe_timeout_ms: config.probe_timeout_ms.max(1),
            ..config
        };
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner::Closed { failures: 0 }),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        match *self.lock() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Asks to make a call at `now_ms`. `Ok(())` admits the call (the
    /// caller must later report [`CircuitBreaker::on_success`] or
    /// [`CircuitBreaker::on_failure`]); `Err(retry_in_ms)` rejects it
    /// with a bound on the wait until a call can be admitted.
    ///
    /// For any state and any `now_ms`, calling again at
    /// `now_ms + retry_in_ms` (with no interleaving reports) is
    /// admitted — the breaker can never deadlock.
    pub fn try_acquire(&self, now_ms: u64) -> Result<(), u64> {
        let mut inner = self.lock();
        match *inner {
            Inner::Closed { .. } => Ok(()),
            Inner::Open { opened_at_ms } => {
                let reopen_at = opened_at_ms.saturating_add(self.config.cooldown_ms);
                if now_ms >= reopen_at {
                    *inner = Inner::HalfOpen {
                        since_ms: now_ms,
                        in_flight: 1,
                    };
                    Ok(())
                } else {
                    Err(reopen_at - now_ms)
                }
            }
            Inner::HalfOpen {
                since_ms,
                in_flight,
            } => {
                if in_flight < self.config.half_open_probes {
                    *inner = Inner::HalfOpen {
                        since_ms,
                        in_flight: in_flight + 1,
                    };
                    return Ok(());
                }
                let expires_at = since_ms.saturating_add(self.config.probe_timeout_ms);
                if now_ms >= expires_at {
                    // The outstanding probes never reported: presume
                    // them lost and start a fresh probe window.
                    *inner = Inner::HalfOpen {
                        since_ms: now_ms,
                        in_flight: 1,
                    };
                    Ok(())
                } else {
                    Err(expires_at - now_ms)
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and clears the
    /// failure run.
    pub fn on_success(&self) {
        *self.lock() = Inner::Closed { failures: 0 };
    }

    /// Reports a failed call at `now_ms`. Returns `true` when this
    /// report tripped the breaker open (for a trip counter).
    pub fn on_failure(&self, now_ms: u64) -> bool {
        let mut inner = self.lock();
        match *inner {
            Inner::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    *inner = Inner::Open {
                        opened_at_ms: now_ms,
                    };
                    true
                } else {
                    *inner = Inner::Closed { failures };
                    false
                }
            }
            Inner::HalfOpen { .. } => {
                // A failed probe re-opens for a fresh cooldown.
                *inner = Inner::Open {
                    opened_at_ms: now_ms,
                };
                true
            }
            // A stale failure report while already open: keep the
            // original cooldown so late reports cannot extend it
            // forever.
            Inner::Open { .. } => false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // The breaker holds no caller state, so a poisoned lock (a
        // panic under the guard) leaves a still-valid state machine.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 100,
            half_open_probes: 1,
            probe_timeout_ms: 50,
        })
    }

    #[test]
    fn trips_after_threshold_and_cools_down() {
        let b = breaker();
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(1));
        assert!(b.on_failure(2));
        assert_eq!(b.state(), BreakerState::Open);
        let wait = b.try_acquire(10).unwrap_err();
        assert_eq!(wait, 92); // opened at 2, cooldown 100
        assert!(b.try_acquire(102).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn successful_probe_closes_failed_probe_reopens() {
        let b = breaker();
        for t in 0..3 {
            b.on_failure(t);
        }
        assert!(b.try_acquire(200).is_ok());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);

        for t in 300..303 {
            b.on_failure(t);
        }
        assert!(b.try_acquire(500).is_ok());
        assert!(b.on_failure(500));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn lost_probe_slots_are_recycled() {
        let b = breaker();
        for t in 0..3 {
            b.on_failure(t);
        }
        assert!(b.try_acquire(200).is_ok()); // probe admitted, never reports
        let wait = b.try_acquire(210).unwrap_err();
        assert_eq!(wait, 40); // probe window started at 200, timeout 50
        assert!(b.try_acquire(250).is_ok()); // recycled
    }

    #[test]
    fn rejection_hint_admits_when_honored() {
        let b = breaker();
        for t in 0..3 {
            b.on_failure(t);
        }
        let mut now = 5;
        for _ in 0..10 {
            match b.try_acquire(now) {
                Ok(()) => return,
                Err(wait) => now += wait,
            }
        }
        panic!("breaker never admitted a call");
    }
}
