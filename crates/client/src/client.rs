//! The resilient scoring client: lazy connections, per-call deadlines,
//! jittered retries gated by a retry budget and a circuit breaker, and
//! a metric for every decision the resilience machinery makes.
//!
//! The retry loop only retries what the server says is transient: a
//! typed error with `"retryable": true` (or a transport failure) is
//! retried with backoff — honoring the server's `retry_after_ms` hint
//! when present — while a non-retryable refusal is surfaced
//! immediately. Transport failures feed the breaker; a typed error
//! counts as breaker *success* because the server demonstrably
//! answered.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use maleva_obs::metrics::{Counter, Registry};
use maleva_obs::trace::{self, Span};
use serde::{Content, Serialize};
use std::sync::Arc;

use crate::backoff::BackoffPolicy;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::error::ClientError;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read/write socket timeout; a read that exceeds it drops the
    /// connection (the stream may be desynchronized mid-line).
    pub io_timeout: Duration,
    /// End-to-end deadline for one [`ScoreClient::score_counts`] call,
    /// including every retry and backoff sleep.
    pub call_deadline: Duration,
    /// Maximum attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker configuration.
    pub breaker: BreakerConfig,
    /// Retry-budget token cap: at most this many retries can be saved
    /// up across calls.
    pub retry_budget_cap: f64,
    /// Tokens deposited per fresh call; `deposit/1.0` bounds the
    /// steady-state retry ratio (0.2 ≈ at most 20% extra load).
    pub retry_budget_deposit: f64,
    /// Self-declared identity sent with every score request (the wire
    /// `client_id` field) for the server's sentinel; `None` lets the
    /// server fall back to the connection's peer address.
    pub client_id: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7878".to_string(),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            call_deadline: Duration::from_secs(10),
            max_attempts: 4,
            backoff: BackoffPolicy::default(),
            breaker: BreakerConfig::default(),
            retry_budget_cap: 10.0,
            retry_budget_deposit: 0.5,
            client_id: None,
        }
    }
}

/// Finagle-style retry budget: fresh calls deposit a fraction of a
/// token, each retry withdraws a whole one, so retries are bounded to a
/// fraction of real traffic and cannot amplify an outage.
#[derive(Debug)]
pub(crate) struct RetryBudget {
    tokens: Mutex<f64>,
    cap: f64,
    deposit: f64,
}

impl RetryBudget {
    pub(crate) fn new(cap: f64, deposit: f64) -> Self {
        let cap = cap.max(0.0);
        RetryBudget {
            // Start full: a fresh client may retry immediately; only
            // *sustained* retrying is throttled to the deposit rate.
            tokens: Mutex::new(cap),
            cap,
            deposit: deposit.max(0.0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, f64> {
        self.tokens.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn on_call(&self) {
        let mut t = self.lock();
        *t = (*t + self.deposit).min(self.cap);
    }

    pub(crate) fn try_withdraw(&self) -> bool {
        let mut t = self.lock();
        if *t >= 1.0 {
            *t -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Counters for every resilience decision, in the client's own
/// [`Registry`].
#[derive(Debug)]
pub struct ClientMetrics {
    registry: Registry,
    /// `score_counts` calls started.
    pub requests: Arc<Counter>,
    /// Retry attempts sent (excludes each call's first attempt).
    pub retries: Arc<Counter>,
    /// Transport failures (connect/read/write, including timeouts).
    pub io_errors: Arc<Counter>,
    /// Unparseable response lines.
    pub protocol_errors: Arc<Counter>,
    /// Typed error bodies received from the server.
    pub server_errors: Arc<Counter>,
    /// Times the breaker tripped open.
    pub breaker_trips: Arc<Counter>,
    /// Calls rejected by the open breaker without touching the wire.
    pub breaker_rejections: Arc<Counter>,
    /// Calls abandoned because the retry budget was empty.
    pub budget_exhausted: Arc<Counter>,
    /// Calls abandoned at the client-side deadline.
    pub deadline_exceeded: Arc<Counter>,
    /// Fresh TCP connections established.
    pub connects: Arc<Counter>,
}

impl Default for ClientMetrics {
    fn default() -> Self {
        ClientMetrics::new()
    }
}

impl ClientMetrics {
    /// Zeroed metrics in a fresh registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter("client_requests_total", "Score calls started.");
        let retries = registry.counter("client_retries_total", "Retry attempts sent.");
        let io_errors = registry.counter("client_io_errors_total", "Transport failures.");
        let protocol_errors =
            registry.counter("client_protocol_errors_total", "Unparseable responses.");
        let server_errors =
            registry.counter("client_server_errors_total", "Typed server error bodies.");
        let breaker_trips =
            registry.counter("client_breaker_trips_total", "Circuit breaker trips.");
        let breaker_rejections = registry.counter(
            "client_breaker_rejections_total",
            "Calls rejected by the open breaker.",
        );
        let budget_exhausted = registry.counter(
            "client_budget_exhausted_total",
            "Calls abandoned on an empty retry budget.",
        );
        let deadline_exceeded = registry.counter(
            "client_deadline_exceeded_total",
            "Calls abandoned at the client deadline.",
        );
        let connects = registry.counter("client_connects_total", "TCP connections established.");
        ClientMetrics {
            registry,
            requests,
            retries,
            io_errors,
            protocol_errors,
            server_errors,
            breaker_trips,
            breaker_rejections,
            budget_exhausted,
            deadline_exceeded,
            connects,
        }
    }

    /// Prometheus text exposition of every client counter.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> ClientMetricsSnapshot {
        ClientMetricsSnapshot {
            requests: self.requests.get(),
            retries: self.retries.get(),
            io_errors: self.io_errors.get(),
            protocol_errors: self.protocol_errors.get(),
            server_errors: self.server_errors.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_rejections: self.breaker_rejections.get(),
            budget_exhausted: self.budget_exhausted.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            connects: self.connects.get(),
        }
    }
}

/// A point-in-time copy of [`ClientMetrics`] (serializable for chaos
/// artifacts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClientMetricsSnapshot {
    /// Score calls started.
    pub requests: u64,
    /// Retry attempts sent.
    pub retries: u64,
    /// Transport failures.
    pub io_errors: u64,
    /// Unparseable responses.
    pub protocol_errors: u64,
    /// Typed server error bodies.
    pub server_errors: u64,
    /// Circuit breaker trips.
    pub breaker_trips: u64,
    /// Calls rejected by the open breaker.
    pub breaker_rejections: u64,
    /// Calls abandoned on an empty retry budget.
    pub budget_exhausted: u64,
    /// Calls abandoned at the client deadline.
    pub deadline_exceeded: u64,
    /// TCP connections established.
    pub connects: u64,
}

/// A successful score, with how hard the client had to work for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreOutcome {
    /// Malware confidence in `[0, 1]`.
    pub score: f64,
    /// `"malware"` or `"clean"`.
    pub verdict: String,
    /// Whether the server answered from its cache.
    pub cached: bool,
    /// Server-side batch size that produced the score (0 for hits).
    pub batch_size: u64,
    /// Attempts this call needed (1 = first try succeeded).
    pub attempts: u32,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Newtype that deserializes into the raw [`Content`] tree (the
/// vendored `serde_json` has no `Value` type).
struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

enum Parsed {
    Score {
        score: f64,
        verdict: String,
        cached: bool,
        batch_size: u64,
    },
    ServerError {
        kind: String,
        detail: String,
        retryable: bool,
        retry_after_ms: Option<u64>,
    },
}

/// The resilient scoring client; see the module docs for the retry
/// policy.
pub struct ScoreClient {
    config: ClientConfig,
    conn: Option<Conn>,
    breaker: CircuitBreaker,
    budget: RetryBudget,
    metrics: ClientMetrics,
    epoch: Instant,
}

impl ScoreClient {
    /// A disconnected client (connections are opened lazily per call).
    pub fn new(config: ClientConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone());
        let budget = RetryBudget::new(config.retry_budget_cap, config.retry_budget_deposit);
        ScoreClient {
            config,
            conn: None,
            breaker,
            budget,
            metrics: ClientMetrics::new(),
            epoch: Instant::now(),
        }
    }

    /// A client for `addr` with default resilience settings.
    pub fn connect_to(addr: &str) -> Self {
        ScoreClient::new(ClientConfig {
            addr: addr.to_string(),
            ..ClientConfig::default()
        })
    }

    /// The client's resilience metrics.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Scores one sample (raw API-call counts), retrying transient
    /// failures within the configured deadline, attempt count, retry
    /// budget, and circuit breaker.
    ///
    /// Every call mints a wire `trace_id` (stable across its retries)
    /// and every attempt a fresh `span_id`; both ride on the request
    /// line so the server can tag its spans with them, making one
    /// logical request followable client → server in a single trace.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a non-retryable refusal;
    /// [`ClientError::DeadlineExceeded`], [`ClientError::RetriesExhausted`],
    /// or [`ClientError::BudgetExhausted`] when the call gives up.
    pub fn score_counts(&mut self, counts: &[u32]) -> Result<ScoreOutcome, ClientError> {
        let trace_id = trace::mint_id();
        let mut span = Span::enter("client.request");
        span.record("trace_id", trace_id);
        let result = self.score_counts_traced(counts, trace_id);
        match &result {
            Ok(outcome) => {
                span.record("attempts", outcome.attempts as u64);
                span.record("ok", true);
            }
            Err(_) => span.record("ok", false),
        }
        result
    }

    fn score_counts_traced(
        &mut self,
        counts: &[u32],
        trace_id: u64,
    ) -> Result<ScoreOutcome, ClientError> {
        let start = Instant::now();
        self.metrics.requests.inc();
        self.budget.on_call();

        let base = match self.config.client_id.as_deref() {
            Some(id) => encode_score_request_as(counts, id),
            None => encode_score_request(counts),
        };
        let mut attempts = 0u32;
        let mut last_err;
        loop {
            // Breaker gate: a rejection costs no attempt and no budget,
            // only (deadline-bounded) waiting.
            if let Err(retry_in_ms) = self.breaker.try_acquire(self.now_ms()) {
                self.metrics.breaker_rejections.inc();
                let wait = Duration::from_millis(retry_in_ms);
                let remaining = self.config.call_deadline.saturating_sub(start.elapsed());
                if wait >= remaining {
                    // Waiting out the breaker would cross the deadline:
                    // surface the breaker, not a generic timeout.
                    return Err(ClientError::CircuitOpen { retry_in_ms });
                }
                std::thread::sleep(wait);
                continue;
            }

            attempts += 1;
            // Fresh span id per attempt: retries of one logical request
            // share the trace id but are distinguishable on the wire.
            let span_id = trace::mint_id();
            let line = encode_score_request_traced(&base, trace_id, span_id);
            let mut attempt_span = Span::enter("client.attempt");
            attempt_span.record("trace_id", trace_id);
            attempt_span.record("span_id", span_id);
            attempt_span.record("attempt", attempts as u64);
            let outcome = self.attempt(&line);
            attempt_span.record("ok", matches!(outcome, Ok(Parsed::Score { .. })));
            drop(attempt_span);
            match outcome {
                Ok(Parsed::Score {
                    score,
                    verdict,
                    cached,
                    batch_size,
                }) => {
                    self.breaker.on_success();
                    return Ok(ScoreOutcome {
                        score,
                        verdict,
                        cached,
                        batch_size,
                        attempts,
                    });
                }
                Ok(Parsed::ServerError {
                    kind,
                    detail,
                    retryable,
                    retry_after_ms,
                }) => {
                    // The server answered: that is breaker success even
                    // though the call failed.
                    self.breaker.on_success();
                    self.metrics.server_errors.inc();
                    let err = ClientError::Server {
                        kind,
                        detail,
                        retryable,
                        retry_after_ms,
                    };
                    if !retryable {
                        return Err(err);
                    }
                    last_err = err;
                }
                Err(err) => {
                    if self.breaker.on_failure(self.now_ms()) {
                        self.metrics.breaker_trips.inc();
                    }
                    match &err {
                        ClientError::Protocol { .. } => self.metrics.protocol_errors.inc(),
                        _ => self.metrics.io_errors.inc(),
                    }
                    last_err = err;
                }
            }

            if attempts >= self.config.max_attempts.max(1) {
                return Err(ClientError::RetriesExhausted {
                    attempts,
                    last: Box::new(last_err),
                });
            }
            if !self.budget.try_withdraw() {
                self.metrics.budget_exhausted.inc();
                return Err(ClientError::BudgetExhausted {
                    last: Box::new(last_err),
                });
            }
            self.metrics.retries.inc();

            // Back off before the retry, honoring the server's hint
            // when it is larger than our own schedule.
            let mut wait = self.config.backoff.delay(attempts - 1);
            if let ClientError::Server {
                retry_after_ms: Some(ms),
                ..
            } = &last_err
            {
                wait = wait.max(Duration::from_millis(*ms));
            }
            self.sleep_within_deadline(wait, start)?;
        }
    }

    /// Sends one `{"cmd": ...}` command (e.g. `stats`, `health`,
    /// `shutdown`) and returns the raw single-line response. No retries
    /// — commands are diagnostics, not scoring traffic. Not for
    /// `metrics`, whose response spans multiple lines.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn command(&mut self, cmd: &str) -> Result<String, ClientError> {
        self.roundtrip(&format!("{{\"cmd\":\"{cmd}\"}}"))
    }

    /// Sends `{"cmd":"reload","path":...}` and parses the typed
    /// acknowledgement. The path is resolved by the *server*, so it
    /// must name a pipeline/network export or checkpoint directory on
    /// the server's filesystem. No retries — a reload is an operator
    /// action, not scoring traffic.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure,
    /// [`ClientError::Protocol`] on an unparseable body, or
    /// [`ClientError::Server`] (kind `reload_failed`) when the server
    /// rejected the artifact and kept its current model.
    pub fn reload(&mut self, path: &str) -> Result<crate::info::ReloadInfo, ClientError> {
        let line = self.roundtrip(&encode_reload_request(path))?;
        crate::info::parse_reload(&line)
    }

    /// Sends `{"cmd":"health"}` and parses the typed report.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure,
    /// [`ClientError::Protocol`] on an unparseable body, or
    /// [`ClientError::Server`] if the server answered with a typed
    /// error.
    pub fn health(&mut self) -> Result<crate::info::HealthInfo, ClientError> {
        let line = self.command("health")?;
        crate::info::parse_health(&line)
    }

    /// Sends `{"cmd":"stats"}` and parses the typed snapshot.
    ///
    /// # Errors
    ///
    /// As [`ScoreClient::health`].
    pub fn stats(&mut self) -> Result<crate::info::StatsInfo, ClientError> {
        let line = self.command("stats")?;
        crate::info::parse_stats(&line)
    }

    /// Sends `{"cmd":"sentinel"}` and parses the typed report.
    ///
    /// # Errors
    ///
    /// As [`ScoreClient::health`].
    pub fn sentinel(&mut self) -> Result<crate::info::SentinelInfo, ClientError> {
        let line = self.command("sentinel")?;
        crate::info::parse_sentinel(&line)
    }

    /// Sends `{"cmd":"slo"}` and parses the typed burn-rate alarm
    /// report.
    ///
    /// # Errors
    ///
    /// As [`ScoreClient::health`].
    pub fn slo(&mut self) -> Result<crate::info::SloInfo, ClientError> {
        let line = self.command("slo")?;
        crate::info::parse_slo(&line)
    }

    /// Sleeps `wait`, unless that would cross the call deadline — then
    /// fails the call with [`ClientError::DeadlineExceeded`].
    fn sleep_within_deadline(&self, wait: Duration, start: Instant) -> Result<(), ClientError> {
        let remaining = self.config.call_deadline.saturating_sub(start.elapsed());
        if wait >= remaining {
            self.metrics.deadline_exceeded.inc();
            return Err(ClientError::DeadlineExceeded {
                deadline_ms: self.config.call_deadline.as_millis() as u64,
            });
        }
        std::thread::sleep(wait);
        Ok(())
    }

    /// One wire attempt: write the request line, read one response
    /// line, parse it. Any transport or parse failure drops the
    /// connection (the stream may be desynchronized).
    fn attempt(&mut self, line: &str) -> Result<Parsed, ClientError> {
        let resp = self.roundtrip(line)?;
        match parse_response(&resp) {
            Ok(parsed) => Ok(parsed),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        match self.try_roundtrip(line) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                Err(ClientError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }

    fn try_roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        if self.conn.is_none() {
            self.conn = Some(self.open_conn()?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        conn.writer.write_all(line.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;
        let mut resp = String::new();
        let n = conn.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }

    fn open_conn(&self) -> std::io::Result<Conn> {
        let addr = resolve(&self.config.addr)?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        self.metrics.connects.inc();
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("`{addr}` resolved to no address"),
        )
    })
}

/// Encodes a score request line for raw API-call counts.
pub fn encode_score_request(counts: &[u32]) -> String {
    let mut line = String::with_capacity(16 + counts.len() * 3);
    line.push_str("{\"features\":[");
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&c.to_string());
    }
    line.push_str("]}");
    line
}

/// Encodes a score request line carrying an explicit `client_id`.
pub fn encode_score_request_as(counts: &[u32], client_id: &str) -> String {
    let mut line = encode_score_request(counts);
    line.pop(); // strip the closing brace
    line.push_str(",\"client_id\":\"");
    push_json_escaped(&mut line, client_id);
    line.push_str("\"}");
    line
}

/// Encodes a `{"cmd":"reload"}` request for a server-side model path.
pub fn encode_reload_request(path: &str) -> String {
    let mut line = String::with_capacity(28 + path.len());
    line.push_str("{\"cmd\":\"reload\",\"path\":\"");
    push_json_escaped(&mut line, path);
    line.push_str("\"}");
    line
}

fn push_json_escaped(line: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            c if (c as u32) < 0x20 => line.push_str(&format!("\\u{:04x}", c as u32)),
            c => line.push(c),
        }
    }
}

/// Appends the wire trace context (`trace_id`/`span_id`) to an
/// already-encoded score request line.
///
/// The server tags its request span and batch events with these ids,
/// making the request followable client → server in one trace. Both
/// ids must be nonzero; [`trace::mint_id`] guarantees that.
pub fn encode_score_request_traced(encoded: &str, trace_id: u64, span_id: u64) -> String {
    debug_assert!(encoded.ends_with('}'), "not an encoded request: {encoded}");
    let mut line = String::with_capacity(encoded.len() + 48);
    line.push_str(&encoded[..encoded.len() - 1]);
    line.push_str(",\"trace_id\":");
    line.push_str(&trace_id.to_string());
    line.push_str(",\"span_id\":");
    line.push_str(&span_id.to_string());
    line.push('}');
    line
}

fn number(content: &Content) -> Option<f64> {
    match *content {
        Content::U64(v) => Some(v as f64),
        Content::I64(v) => Some(v as f64),
        Content::F64(v) => Some(v),
        _ => None,
    }
}

fn parse_response(line: &str) -> Result<Parsed, ClientError> {
    let protocol = |detail: String| ClientError::Protocol { detail };
    let JsonValue(value) = serde_json::from_str(line)
        .map_err(|e| protocol(format!("response is not JSON: {e} (line: {line:?})")))?;
    let Content::Map(entries) = value else {
        return Err(protocol(format!("response is not an object: {line:?}")));
    };
    if let Some((_, body)) = entries.iter().find(|(k, _)| k == "error") {
        let Content::Map(body) = body else {
            return Err(protocol("error body is not an object".to_string()));
        };
        let field = |name: &str| body.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let kind = match field("kind") {
            Some(Content::Str(s)) => s.clone(),
            _ => return Err(protocol("error body lacks a string `kind`".to_string())),
        };
        let detail = match field("detail") {
            Some(Content::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let retryable = matches!(field("retryable"), Some(Content::Bool(true)));
        let retry_after_ms = field("retry_after_ms").and_then(number).map(|v| v as u64);
        return Ok(Parsed::ServerError {
            kind,
            detail,
            retryable,
            retry_after_ms,
        });
    }
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(score) = field("score").and_then(number) else {
        return Err(protocol(format!(
            "response has neither `score` nor `error`: {line:?}"
        )));
    };
    let verdict = match field("verdict") {
        Some(Content::Str(s)) => s.clone(),
        _ => return Err(protocol("score response lacks a `verdict`".to_string())),
    };
    let cached = matches!(field("cached"), Some(Content::Bool(true)));
    let batch_size = field("batch_size").and_then(number).unwrap_or(0.0) as u64;
    Ok(Parsed::Score {
        score,
        verdict,
        cached,
        batch_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_score_requests_compactly() {
        assert_eq!(encode_score_request(&[]), "{\"features\":[]}");
        assert_eq!(encode_score_request(&[1, 0, 42]), "{\"features\":[1,0,42]}");
    }

    #[test]
    fn encodes_client_id_with_escaping() {
        assert_eq!(
            encode_score_request_as(&[1, 2], "tenant-a"),
            "{\"features\":[1,2],\"client_id\":\"tenant-a\"}"
        );
        assert_eq!(
            encode_score_request_as(&[], "a\"b\\c"),
            "{\"features\":[],\"client_id\":\"a\\\"b\\\\c\"}"
        );
        assert_eq!(
            encode_score_request_as(&[], "a\nb"),
            "{\"features\":[],\"client_id\":\"a\\u000ab\"}"
        );
    }

    #[test]
    fn encodes_reload_requests_with_escaping() {
        assert_eq!(
            encode_reload_request("model.json"),
            "{\"cmd\":\"reload\",\"path\":\"model.json\"}"
        );
        assert_eq!(
            encode_reload_request("dir\\\"x"),
            "{\"cmd\":\"reload\",\"path\":\"dir\\\\\\\"x\"}"
        );
    }

    #[test]
    fn appends_trace_context_to_encoded_requests() {
        assert_eq!(
            encode_score_request_traced(&encode_score_request(&[1, 2]), 7, 9),
            "{\"features\":[1,2],\"trace_id\":7,\"span_id\":9}"
        );
        assert_eq!(
            encode_score_request_traced(&encode_score_request_as(&[3], "tenant-a"), 1, 2),
            "{\"features\":[3],\"client_id\":\"tenant-a\",\"trace_id\":1,\"span_id\":2}"
        );
    }

    #[test]
    fn parses_score_responses() {
        let line = "{\"score\":0.97,\"verdict\":\"malware\",\"cached\":false,\"batch_size\":12}";
        match parse_response(line).unwrap() {
            Parsed::Score {
                score,
                verdict,
                cached,
                batch_size,
            } => {
                assert!((score - 0.97).abs() < 1e-12);
                assert_eq!(verdict, "malware");
                assert!(!cached);
                assert_eq!(batch_size, 12);
            }
            Parsed::ServerError { .. } => panic!("parsed as error"),
        }
    }

    #[test]
    fn parses_error_responses_with_and_without_hint() {
        let line = "{\"error\":{\"kind\":\"overloaded\",\"detail\":\"q\",\
                    \"retryable\":true,\"retry_after_ms\":12}}";
        match parse_response(line).unwrap() {
            Parsed::ServerError {
                kind,
                retryable,
                retry_after_ms,
                ..
            } => {
                assert_eq!(kind, "overloaded");
                assert!(retryable);
                assert_eq!(retry_after_ms, Some(12));
            }
            Parsed::Score { .. } => panic!("parsed as score"),
        }
        let line =
            "{\"error\":{\"kind\":\"wrong_dimension\",\"detail\":\"d\",\"retryable\":false}}";
        match parse_response(line).unwrap() {
            Parsed::ServerError {
                kind,
                retryable,
                retry_after_ms,
                ..
            } => {
                assert_eq!(kind, "wrong_dimension");
                assert!(!retryable);
                assert_eq!(retry_after_ms, None);
            }
            Parsed::Score { .. } => panic!("parsed as score"),
        }
    }

    #[test]
    fn rejects_garbage_responses() {
        for line in ["", "not json", "[1,2]", "{\"weird\":1}"] {
            assert!(
                matches!(parse_response(line), Err(ClientError::Protocol { .. })),
                "{line:?}"
            );
        }
    }

    #[test]
    fn retry_budget_bounds_retries() {
        let b = RetryBudget::new(2.0, 0.5);
        assert!(b.try_withdraw()); // starts full (2 tokens)
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw()); // drained: sustained retries throttled
        b.on_call();
        b.on_call(); // 2 * 0.5 = 1.0 token earned back
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
        for _ in 0..100 {
            b.on_call(); // deposits cap at 2.0, not 50
        }
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }
}
