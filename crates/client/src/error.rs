//! Typed client-side errors, separating transport failures from typed
//! server refusals so callers (and the retry loop) can branch precisely.

use std::error::Error;
use std::fmt;

/// Everything a [`crate::ScoreClient`] call can fail with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// A transport-level failure (connect, read, or write).
    Io {
        /// The io error, stringified (keeps the type `Clone`/`PartialEq`).
        detail: String,
    },
    /// The server replied with something that is not a valid response.
    Protocol {
        /// What was wrong with the line.
        detail: String,
    },
    /// The server replied with a typed error body.
    Server {
        /// The wire `kind` (e.g. `overloaded`, `deadline_exceeded`).
        kind: String,
        /// Human-readable detail from the server.
        detail: String,
        /// The server's own retryability verdict.
        retryable: bool,
        /// Server-suggested wait before retrying (only `overloaded`).
        retry_after_ms: Option<u64>,
    },
    /// The circuit breaker rejected the call without sending anything.
    CircuitOpen {
        /// Bound on the wait until the breaker admits a call.
        retry_in_ms: u64,
    },
    /// The whole call (including retries) exceeded the client deadline.
    DeadlineExceeded {
        /// The configured call deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The retry budget was empty — retrying further would amplify an
    /// outage, so the last error is surfaced instead.
    BudgetExhausted {
        /// The error from the final attempt.
        last: Box<ClientError>,
    },
    /// Every allowed attempt failed.
    RetriesExhausted {
        /// How many attempts ran.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether the retry loop may try again after this error.
    /// Terminal wrappers (`RetriesExhausted`, `BudgetExhausted`,
    /// `DeadlineExceeded`) and non-retryable server refusals are final.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io { .. } | ClientError::Protocol { .. } => true,
            ClientError::CircuitOpen { .. } => true,
            ClientError::Server { retryable, .. } => *retryable,
            ClientError::DeadlineExceeded { .. }
            | ClientError::BudgetExhausted { .. }
            | ClientError::RetriesExhausted { .. } => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io { detail } => write!(f, "io error: {detail}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Server { kind, detail, .. } => {
                write!(f, "server error ({kind}): {detail}")
            }
            ClientError::CircuitOpen { retry_in_ms } => {
                write!(f, "circuit breaker open; retry in {retry_in_ms} ms")
            }
            ClientError::DeadlineExceeded { deadline_ms } => {
                write!(f, "call exceeded the {deadline_ms} ms client deadline")
            }
            ClientError::BudgetExhausted { last } => {
                write!(f, "retry budget exhausted; last error: {last}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
        }
    }
}

impl Error for ClientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_error_class() {
        assert!(ClientError::Io { detail: "x".into() }.is_retryable());
        assert!(ClientError::CircuitOpen { retry_in_ms: 5 }.is_retryable());
        assert!(ClientError::Server {
            kind: "overloaded".into(),
            detail: String::new(),
            retryable: true,
            retry_after_ms: Some(3),
        }
        .is_retryable());
        assert!(!ClientError::Server {
            kind: "wrong_dimension".into(),
            detail: String::new(),
            retryable: false,
            retry_after_ms: None,
        }
        .is_retryable());
        assert!(!ClientError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ClientError::Io { detail: "x".into() }),
        }
        .is_retryable());
    }
}
