//! Typed views of the server's diagnostic commands (`health`, `stats`,
//! `sentinel`, `slo`), so callers — the campaign harness, the chaos
//! soak — never have to scrape raw JSON lines.
//!
//! `maleva-client` deliberately does not depend on `maleva-serve`, so
//! these structs re-declare the handful of fields callers consume;
//! unknown fields in the body are ignored, which keeps the client
//! forward-compatible with server additions.

use serde::{Content, Serialize};

use crate::error::ClientError;

/// Typed body of a `{"cmd":"health"}` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthInfo {
    /// `"ok"` or `"draining"`.
    pub status: String,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Jobs waiting in the scoring queue.
    pub queue_depth: u64,
    /// Queue depth at which admission control starts shedding.
    pub shed_depth: u64,
    /// The per-request deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Requests shed or rejected with `overloaded`.
    pub overloaded: u64,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Generation of the model currently serving (0 = boot model).
    pub model_generation: u64,
}

/// Typed body of a `{"cmd":"reload"}` acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReloadInfo {
    /// The model generation now serving.
    pub generation: u64,
    /// Parameter count of the installed network.
    pub params: u64,
}

/// Typed body of a `{"cmd":"stats"}` response (the subset of the
/// server's `MetricsSnapshot` that remote callers act on).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsInfo {
    /// Score requests received.
    pub requests: u64,
    /// Typed error responses sent.
    pub errors: u64,
    /// Overload rejections.
    pub overloaded: u64,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Requests refused with `throttled` by the sentinel.
    pub sentinel_throttled: u64,
    /// Requests answered with poisoned scores.
    pub sentinel_poisoned: u64,
    /// Clients newly flagged by the sentinel.
    pub sentinel_flagged: u64,
    /// 99th-percentile request latency, µs.
    pub p99_latency_us: u64,
}

/// One per-client row in a `{"cmd":"sentinel"}` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SentinelClientInfo {
    /// The client's identifier.
    pub client_id: String,
    /// Total score queries recorded.
    pub queries: u64,
    /// Near-duplicate queries observed.
    pub near_duplicates: u64,
    /// Decision-boundary verdict flips observed.
    pub verdict_flips: u64,
    /// Whether this client is flagged (sticky).
    pub flagged: bool,
    /// Query index at which the client was flagged (`0` = never).
    pub flagged_at_query: u64,
    /// Queries refused with `throttled`.
    pub throttled: u64,
    /// Queries answered with poisoned scores.
    pub poisoned: u64,
}

/// Typed body of a `{"cmd":"sentinel"}` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SentinelInfo {
    /// Whether the sentinel is enabled.
    pub enabled: bool,
    /// The configured action (`"throttle"` / `"poison"`).
    pub action: String,
    /// Clients currently tracked.
    pub tracked_clients: u64,
    /// Clients currently flagged.
    pub flagged_clients: u64,
    /// Per-client rows, sorted by `client_id`.
    pub clients: Vec<SentinelClientInfo>,
}

impl SentinelInfo {
    /// The row for `client_id`, if tracked.
    pub fn client(&self, client_id: &str) -> Option<&SentinelClientInfo> {
        self.clients.iter().find(|c| c.client_id == client_id)
    }
}

/// One burn window in a `{"cmd":"slo"}` alarm row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloWindowInfo {
    /// The evaluation window, in milliseconds.
    pub window_ms: u64,
    /// The burn rate above which the window counts as breached.
    pub max_burn_rate: f64,
    /// The observed burn rate over the window.
    pub burn_rate: f64,
    /// Whether the engine has a baseline old enough to cover the window.
    pub covered: bool,
    /// Bad events observed in the window.
    pub bad: u64,
    /// Total events observed in the window.
    pub total: u64,
}

/// One alarm row in a `{"cmd":"slo"}` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloAlarmInfo {
    /// The SLO's name.
    pub name: String,
    /// Whether the alarm is currently firing.
    pub firing: bool,
    /// Whether this evaluation flipped the alarm's state.
    pub changed: bool,
    /// Per-window burn-rate detail.
    pub windows: Vec<SloWindowInfo>,
}

/// Typed body of a `{"cmd":"slo"}` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloInfo {
    /// Milliseconds since the server started, at evaluation time.
    pub evaluated_at_ms: u64,
    /// One row per configured SLO.
    pub alarms: Vec<SloAlarmInfo>,
}

impl SloInfo {
    /// The alarm named `name`, if configured.
    pub fn alarm(&self, name: &str) -> Option<&SloAlarmInfo> {
        self.alarms.iter().find(|a| a.name == name)
    }

    /// Whether any configured alarm is firing.
    pub fn any_firing(&self) -> bool {
        self.alarms.iter().any(|a| a.firing)
    }
}

struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

fn protocol(detail: String) -> ClientError {
    ClientError::Protocol { detail }
}

/// Parses the top level of a command response: returns the map under
/// `key`, or a typed [`ClientError::Server`] if the line carries an
/// error body instead.
fn body_under(line: &str, key: &str) -> Result<Vec<(String, Content)>, ClientError> {
    let JsonValue(value) = serde_json::from_str(line)
        .map_err(|e| protocol(format!("response is not JSON: {e} (line: {line:?})")))?;
    let Content::Map(entries) = value else {
        return Err(protocol(format!("response is not an object: {line:?}")));
    };
    if let Some((_, Content::Map(body))) = entries.iter().find(|(k, _)| k == "error") {
        let field = |name: &str| body.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let kind = match field("kind") {
            Some(Content::Str(s)) => s.clone(),
            _ => "unknown".to_string(),
        };
        let detail = match field("detail") {
            Some(Content::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let retryable = matches!(field("retryable"), Some(Content::Bool(true)));
        return Err(ClientError::Server {
            kind,
            detail,
            retryable,
            retry_after_ms: None,
        });
    }
    match entries.into_iter().find(|(k, _)| k == key) {
        Some((_, Content::Map(body))) => Ok(body),
        Some((_, other)) => Err(protocol(format!(
            "`{key}` body is not an object: {other:?}"
        ))),
        None => Err(protocol(format!("response lacks a `{key}` body: {line:?}"))),
    }
}

fn u64_field(body: &[(String, Content)], name: &str) -> u64 {
    match body.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
        Some(Content::U64(v)) => *v,
        Some(Content::I64(v)) => (*v).max(0) as u64,
        Some(Content::F64(v)) if *v >= 0.0 => *v as u64,
        _ => 0,
    }
}

fn bool_field(body: &[(String, Content)], name: &str) -> bool {
    matches!(
        body.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        Some(Content::Bool(true))
    )
}

fn f64_field(body: &[(String, Content)], name: &str) -> f64 {
    match body.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
        Some(Content::F64(v)) => *v,
        Some(Content::U64(v)) => *v as f64,
        Some(Content::I64(v)) => *v as f64,
        _ => 0.0,
    }
}

fn str_field(body: &[(String, Content)], name: &str) -> String {
    match body.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
        Some(Content::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

/// Parses a `{"cmd":"health"}` response line.
///
/// # Errors
///
/// [`ClientError::Protocol`] on an unparseable body,
/// [`ClientError::Server`] if the line carries a typed error.
pub fn parse_health(line: &str) -> Result<HealthInfo, ClientError> {
    let body = body_under(line, "health")?;
    Ok(HealthInfo {
        status: str_field(&body, "status"),
        draining: bool_field(&body, "draining"),
        queue_depth: u64_field(&body, "queue_depth"),
        shed_depth: u64_field(&body, "shed_depth"),
        deadline_ms: u64_field(&body, "deadline_ms"),
        overloaded: u64_field(&body, "overloaded"),
        deadline_exceeded: u64_field(&body, "deadline_exceeded"),
        model_generation: u64_field(&body, "model_generation"),
    })
}

/// Parses a `{"cmd":"reload"}` acknowledgement line.
///
/// # Errors
///
/// As [`parse_health`]; a server that refused the reload answers with a
/// typed `reload_failed` error, surfaced as [`ClientError::Server`].
pub fn parse_reload(line: &str) -> Result<ReloadInfo, ClientError> {
    let body = body_under(line, "reload")?;
    Ok(ReloadInfo {
        generation: u64_field(&body, "generation"),
        params: u64_field(&body, "params"),
    })
}

/// Parses a `{"cmd":"stats"}` response line.
///
/// # Errors
///
/// As [`parse_health`].
pub fn parse_stats(line: &str) -> Result<StatsInfo, ClientError> {
    let body = body_under(line, "stats")?;
    Ok(StatsInfo {
        requests: u64_field(&body, "requests"),
        errors: u64_field(&body, "errors"),
        overloaded: u64_field(&body, "overloaded"),
        deadline_exceeded: u64_field(&body, "deadline_exceeded"),
        cache_hits: u64_field(&body, "cache_hits"),
        cache_misses: u64_field(&body, "cache_misses"),
        sentinel_throttled: u64_field(&body, "sentinel_throttled"),
        sentinel_poisoned: u64_field(&body, "sentinel_poisoned"),
        sentinel_flagged: u64_field(&body, "sentinel_flagged"),
        p99_latency_us: u64_field(&body, "p99_latency_us"),
    })
}

/// Parses a `{"cmd":"sentinel"}` response line.
///
/// # Errors
///
/// As [`parse_health`].
pub fn parse_sentinel(line: &str) -> Result<SentinelInfo, ClientError> {
    let body = body_under(line, "sentinel")?;
    let clients = match body.iter().find(|(k, _)| k == "clients").map(|(_, v)| v) {
        Some(Content::Seq(rows)) => rows
            .iter()
            .filter_map(|row| {
                let Content::Map(row) = row else { return None };
                Some(SentinelClientInfo {
                    client_id: str_field(row, "client_id"),
                    queries: u64_field(row, "queries"),
                    near_duplicates: u64_field(row, "near_duplicates"),
                    verdict_flips: u64_field(row, "verdict_flips"),
                    flagged: bool_field(row, "flagged"),
                    flagged_at_query: u64_field(row, "flagged_at_query"),
                    throttled: u64_field(row, "throttled"),
                    poisoned: u64_field(row, "poisoned"),
                })
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(SentinelInfo {
        enabled: bool_field(&body, "enabled"),
        action: str_field(&body, "action"),
        tracked_clients: u64_field(&body, "tracked_clients"),
        flagged_clients: u64_field(&body, "flagged_clients"),
        clients,
    })
}

/// Parses a `{"cmd":"slo"}` response line.
///
/// # Errors
///
/// As [`parse_health`].
pub fn parse_slo(line: &str) -> Result<SloInfo, ClientError> {
    let body = body_under(line, "slo")?;
    let alarms = match body.iter().find(|(k, _)| k == "alarms").map(|(_, v)| v) {
        Some(Content::Seq(rows)) => rows
            .iter()
            .filter_map(|row| {
                let Content::Map(row) = row else { return None };
                let windows = match row.iter().find(|(k, _)| k == "windows").map(|(_, v)| v) {
                    Some(Content::Seq(ws)) => ws
                        .iter()
                        .filter_map(|w| {
                            let Content::Map(w) = w else { return None };
                            Some(SloWindowInfo {
                                window_ms: u64_field(w, "window_ms"),
                                max_burn_rate: f64_field(w, "max_burn_rate"),
                                burn_rate: f64_field(w, "burn_rate"),
                                covered: bool_field(w, "covered"),
                                bad: u64_field(w, "bad"),
                                total: u64_field(w, "total"),
                            })
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Some(SloAlarmInfo {
                    name: str_field(row, "name"),
                    firing: bool_field(row, "firing"),
                    changed: bool_field(row, "changed"),
                    windows,
                })
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(SloInfo {
        evaluated_at_ms: u64_field(&body, "evaluated_at_ms"),
        alarms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_health_body() {
        let line = "{\"health\":{\"status\":\"ok\",\"draining\":false,\"queue_depth\":3,\
                    \"shed_depth\":48,\"deadline_ms\":30000,\"scorer_panics\":0,\
                    \"row_failures\":0,\"overloaded\":2,\"deadline_exceeded\":1,\"faults\":[]}}";
        let h = parse_health(line).unwrap();
        assert_eq!(h.status, "ok");
        assert!(!h.draining);
        assert_eq!(h.queue_depth, 3);
        assert_eq!(h.shed_depth, 48);
        assert_eq!(h.deadline_ms, 30_000);
        assert_eq!(h.overloaded, 2);
        assert_eq!(h.deadline_exceeded, 1);
    }

    #[test]
    fn parses_a_reload_ack_and_reload_errors() {
        let line = "{\"reload\":{\"generation\":3,\"params\":1234}}";
        let r = parse_reload(line).unwrap();
        assert_eq!(r.generation, 3);
        assert_eq!(r.params, 1234);
        let line = "{\"error\":{\"kind\":\"reload_failed\",\
                    \"detail\":\"input dimension mismatch\",\"retryable\":false}}";
        match parse_reload(line) {
            Err(ClientError::Server {
                kind, retryable, ..
            }) => {
                assert_eq!(kind, "reload_failed");
                assert!(!retryable);
            }
            other => panic!("expected a server error, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_stats_body_ignoring_unknown_fields() {
        let line = "{\"stats\":{\"requests\":10,\"errors\":1,\"overloaded\":0,\
                    \"deadline_exceeded\":0,\"cache_hits\":4,\"cache_misses\":6,\
                    \"sentinel_throttled\":2,\"sentinel_poisoned\":0,\"sentinel_flagged\":1,\
                    \"p99_latency_us\":512,\"mystery_future_field\":true}}";
        let s = parse_stats(line).unwrap();
        assert_eq!(s.requests, 10);
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.sentinel_throttled, 2);
        assert_eq!(s.sentinel_flagged, 1);
        assert_eq!(s.p99_latency_us, 512);
    }

    #[test]
    fn parses_a_sentinel_body() {
        let line = "{\"sentinel\":{\"enabled\":true,\"action\":\"throttle\",\
                    \"tracked_clients\":2,\"flagged_clients\":1,\"clients\":[\
                    {\"client_id\":\"attacker\",\"queries\":40,\"near_duplicates\":20,\
                     \"verdict_flips\":5,\"flagged\":true,\"flagged_at_query\":21,\
                     \"throttled\":7,\"poisoned\":0,\"observed_rps\":12.5},\
                    {\"client_id\":\"benign\",\"queries\":9,\"near_duplicates\":0,\
                     \"verdict_flips\":0,\"flagged\":false,\"flagged_at_query\":0,\
                     \"throttled\":0,\"poisoned\":0,\"observed_rps\":1.0}]}}";
        let s = parse_sentinel(line).unwrap();
        assert!(s.enabled);
        assert_eq!(s.action, "throttle");
        assert_eq!(s.tracked_clients, 2);
        assert_eq!(s.flagged_clients, 1);
        let attacker = s.client("attacker").unwrap();
        assert!(attacker.flagged);
        assert_eq!(attacker.flagged_at_query, 21);
        assert_eq!(attacker.throttled, 7);
        assert!(!s.client("benign").unwrap().flagged);
        assert!(s.client("nobody").is_none());
    }

    #[test]
    fn parses_an_slo_body() {
        let line = "{\"slo\":{\"evaluated_at_ms\":1500,\"alarms\":[\
                    {\"name\":\"request_p99_latency\",\"firing\":true,\"changed\":false,\
                     \"windows\":[{\"window_ms\":60000,\"max_burn_rate\":14.0,\
                     \"burn_rate\":22.5,\"covered\":true,\"bad\":9,\"total\":10}]},\
                    {\"name\":\"error_rate\",\"firing\":false,\"changed\":false,\
                     \"windows\":[]}]}}";
        let s = parse_slo(line).unwrap();
        assert_eq!(s.evaluated_at_ms, 1500);
        assert_eq!(s.alarms.len(), 2);
        assert!(s.any_firing());
        let latency = s.alarm("request_p99_latency").unwrap();
        assert!(latency.firing && !latency.changed);
        let w = &latency.windows[0];
        assert_eq!(w.window_ms, 60_000);
        assert!((w.burn_rate - 22.5).abs() < 1e-9);
        assert!(w.covered);
        assert_eq!((w.bad, w.total), (9, 10));
        assert!(!s.alarm("error_rate").unwrap().firing);
        assert!(s.alarm("nobody").is_none());
    }

    #[test]
    fn error_bodies_surface_as_server_errors() {
        let line = "{\"error\":{\"kind\":\"internal\",\"detail\":\"boom\",\"retryable\":false}}";
        match parse_health(line).unwrap_err() {
            ClientError::Server { kind, .. } => assert_eq!(kind, "internal"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_is_a_protocol_error() {
        for line in ["", "nope", "{\"weird\":1}", "{\"health\":[1]}"] {
            assert!(
                matches!(parse_health(line), Err(ClientError::Protocol { .. })),
                "{line:?}"
            );
        }
    }
}
