//! `maleva-client` — a resilient TCP client for the `maleva-serve`
//! scoring protocol.
//!
//! The server can shed load (`overloaded` + `retry_after_ms`), time out
//! requests (`deadline_exceeded`), drop connections, and answer slowly;
//! this crate is the client half of that contract:
//!
//! * **deadlines** — every [`ScoreClient::score_counts`] call has an
//!   end-to-end budget covering retries and backoff sleeps;
//! * **retries with a budget** ([`backoff`]) — jittered exponential
//!   backoff (deterministic per seed), honoring the server's
//!   `retry_after_ms` hint, gated by a Finagle-style token budget so
//!   retries cannot amplify an outage;
//! * **circuit breaker** ([`breaker`]) — trips after consecutive
//!   transport failures, rejects cheaply while open, and recovers
//!   through a bounded half-open probe window that can never deadlock;
//! * **observability** — a counter for every retry, trip, rejection,
//!   and exhausted budget, in the client's own `maleva-obs` registry;
//!   every call mints a wire trace context (`trace_id` stable across
//!   retries, a fresh `span_id` per attempt) carried on the request
//!   line and mirrored in `client.request` / `client.attempt` spans,
//!   so one logical request is followable client → server in a single
//!   trace.
//!
//! The crate deliberately does not depend on `maleva-serve`: it speaks
//! the wire protocol directly, as an external client would.
//!
//! # Quickstart
//!
//! ```no_run
//! use maleva_client::ScoreClient;
//!
//! let mut client = ScoreClient::connect_to("127.0.0.1:7878");
//! let outcome = client.score_counts(&[0, 3, 12]).unwrap();
//! println!("{} ({:.3}) in {} attempt(s)", outcome.verdict, outcome.score, outcome.attempts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
mod client;
mod error;
pub mod info;

pub use backoff::BackoffPolicy;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{
    encode_reload_request, encode_score_request, encode_score_request_as,
    encode_score_request_traced, ClientConfig, ClientMetrics, ClientMetricsSnapshot, ScoreClient,
    ScoreOutcome,
};
pub use error::ClientError;
pub use info::{
    HealthInfo, ReloadInfo, SentinelClientInfo, SentinelInfo, SloAlarmInfo, SloInfo, SloWindowInfo,
    StatsInfo,
};
