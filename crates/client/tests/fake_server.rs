//! End-to-end client behavior against scripted fake servers.
//!
//! `maleva-client` deliberately does not depend on `maleva-serve`, so
//! these tests stand up tiny scripted TCP listeners that misbehave in
//! controlled ways — close on accept, reply with typed errors, then
//! recover — and assert the retry loop, breaker, and metrics react per
//! contract. (The full-stack chaos soak against the real server lives
//! in `maleva-serve`'s test suite.)

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use maleva_client::{BackoffPolicy, BreakerConfig, ClientConfig, ClientError, ScoreClient};
use maleva_obs::trace::{self, Sink};

const SCORE_LINE: &str =
    "{\"score\":0.75,\"verdict\":\"malware\",\"cached\":false,\"batch_size\":3}";
const OVERLOADED_LINE: &str = "{\"error\":{\"kind\":\"overloaded\",\"detail\":\"queue full\",\
                               \"retryable\":true,\"retry_after_ms\":5}}";
const BAD_DIM_LINE: &str = "{\"error\":{\"kind\":\"wrong_dimension\",\
                            \"detail\":\"expected 3\",\"retryable\":false}}";

/// What a scripted server does with one accepted connection.
enum Script {
    /// Accept, then drop the socket without reading or writing.
    CloseImmediately,
    /// Serve one response line per entry (reading a request line before
    /// each), then close.
    Respond(Vec<&'static str>),
    /// Like `Respond`, but records every request line it reads into the
    /// shared log before answering, so tests can assert on the exact
    /// bytes the client put on the wire.
    Capture(Vec<&'static str>, Arc<Mutex<Vec<String>>>),
}

/// Runs one script per accepted connection, in order, then exits.
fn fake_server(scripts: Vec<Script>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        for script in scripts {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            match script {
                Script::CloseImmediately => drop(stream),
                Script::Respond(lines) => {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for line in lines {
                        let mut req = String::new();
                        if reader.read_line(&mut req).unwrap_or(0) == 0 {
                            break;
                        }
                        let _ = stream.write_all(line.as_bytes());
                        let _ = stream.write_all(b"\n");
                        let _ = stream.flush();
                    }
                }
                Script::Capture(lines, log) => {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for line in lines {
                        let mut req = String::new();
                        if reader.read_line(&mut req).unwrap_or(0) == 0 {
                            break;
                        }
                        log.lock().expect("log").push(req.trim_end().to_string());
                        let _ = stream.write_all(line.as_bytes());
                        let _ = stream.write_all(b"\n");
                        let _ = stream.flush();
                    }
                }
            }
        }
    });
    (addr, handle)
}

fn fast_config(addr: SocketAddr) -> ClientConfig {
    ClientConfig {
        addr: addr.to_string(),
        connect_timeout: Duration::from_secs(2),
        io_timeout: Duration::from_secs(2),
        call_deadline: Duration::from_secs(5),
        max_attempts: 4,
        backoff: BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            jitter_frac: 0.0,
            seed: 0,
        },
        ..ClientConfig::default()
    }
}

const HEALTH_LINE: &str = "{\"health\":{\"status\":\"ok\",\"draining\":false,\
                           \"queue_depth\":2,\"shed_depth\":48,\"deadline_ms\":30000,\
                           \"overloaded\":1,\"deadline_exceeded\":0,\"faults\":[]}}";
const STATS_LINE: &str = "{\"stats\":{\"requests\":11,\"errors\":2,\"overloaded\":1,\
                          \"deadline_exceeded\":0,\"cache_hits\":5,\"cache_misses\":6,\
                          \"sentinel_throttled\":3,\"sentinel_poisoned\":0,\
                          \"sentinel_flagged\":1,\"p99_latency_us\":256}}";
const SENTINEL_LINE: &str = "{\"sentinel\":{\"enabled\":true,\"action\":\"throttle\",\
                             \"tracked_clients\":1,\"flagged_clients\":1,\"clients\":[\
                             {\"client_id\":\"probe\",\"queries\":33,\"near_duplicates\":20,\
                             \"verdict_flips\":4,\"flagged\":true,\"flagged_at_query\":17,\
                             \"throttled\":9,\"poisoned\":0,\"observed_rps\":8.0}]}}";

#[test]
fn typed_health_helper_parses_the_report() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![HEALTH_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let health = client.health().expect("health");
    assert_eq!(health.status, "ok");
    assert!(!health.draining);
    assert_eq!(health.queue_depth, 2);
    assert_eq!(health.overloaded, 1);
    drop(client);
    server.join().unwrap();
}

#[test]
fn typed_stats_helper_parses_the_snapshot() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![STATS_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 11);
    assert_eq!(stats.cache_hits, 5);
    assert_eq!(stats.sentinel_throttled, 3);
    assert_eq!(stats.sentinel_flagged, 1);
    assert_eq!(stats.p99_latency_us, 256);
    drop(client);
    server.join().unwrap();
}

#[test]
fn typed_sentinel_helper_parses_the_report() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![SENTINEL_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let report = client.sentinel().expect("sentinel");
    assert!(report.enabled);
    assert_eq!(report.action, "throttle");
    assert_eq!(report.flagged_clients, 1);
    let probe = report.client("probe").expect("row");
    assert!(probe.flagged);
    assert_eq!(probe.flagged_at_query, 17);
    assert_eq!(probe.throttled, 9);
    drop(client);
    server.join().unwrap();
}

#[test]
fn configured_client_id_rides_every_score_request() {
    // The fake server can't easily capture request bytes with the
    // current Script shape, so pin the encoding helper directly and
    // assert a scripted roundtrip still succeeds with client_id set.
    assert_eq!(
        maleva_client::encode_score_request_as(&[1, 2, 3], "attacker-1"),
        "{\"features\":[1,2,3],\"client_id\":\"attacker-1\"}"
    );
    let (addr, server) = fake_server(vec![Script::Respond(vec![SCORE_LINE])]);
    let mut client = ScoreClient::new(ClientConfig {
        client_id: Some("attacker-1".to_string()),
        ..fast_config(addr)
    });
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 1);
    drop(client);
    server.join().unwrap();
}

#[test]
fn scores_on_the_first_attempt() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![SCORE_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.verdict, "malware");
    assert_eq!(outcome.batch_size, 3);
    assert!((outcome.score - 0.75).abs() < 1e-12);
    let m = client.metrics().snapshot();
    assert_eq!((m.requests, m.retries, m.io_errors), (1, 0, 0));
    drop(client);
    server.join().unwrap();
}

#[test]
fn reconnects_and_retries_after_a_connection_reset() {
    let (addr, server) = fake_server(vec![
        Script::CloseImmediately,
        Script::Respond(vec![SCORE_LINE]),
    ]);
    let mut client = ScoreClient::new(fast_config(addr));
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 2);
    let m = client.metrics().snapshot();
    assert_eq!(m.retries, 1);
    assert_eq!(m.io_errors, 1);
    assert_eq!(m.connects, 2);
    drop(client);
    server.join().unwrap();
}

#[test]
fn honors_the_servers_retry_after_hint() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![OVERLOADED_LINE, SCORE_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let start = Instant::now();
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 2);
    // The hint (5 ms) dominates the 1 ms backoff.
    assert!(start.elapsed() >= Duration::from_millis(5));
    let m = client.metrics().snapshot();
    assert_eq!(m.server_errors, 1);
    assert_eq!(m.retries, 1);
    assert_eq!(m.connects, 1, "typed errors must not drop the connection");
    drop(client);
    server.join().unwrap();
}

#[test]
fn does_not_retry_non_retryable_refusals() {
    let (addr, server) = fake_server(vec![Script::Respond(vec![BAD_DIM_LINE])]);
    let mut client = ScoreClient::new(fast_config(addr));
    let err = client.score_counts(&[1, 2]).expect_err("refused");
    match &err {
        ClientError::Server {
            kind, retryable, ..
        } => {
            assert_eq!(kind, "wrong_dimension");
            assert!(!retryable);
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert!(!err.is_retryable());
    let m = client.metrics().snapshot();
    assert_eq!(m.retries, 0);
    drop(client);
    server.join().unwrap();
}

#[test]
fn gives_up_after_max_attempts_against_a_dead_server() {
    let scripts = (0..4).map(|_| Script::CloseImmediately).collect();
    let (addr, server) = fake_server(scripts);
    let mut client = ScoreClient::new(ClientConfig {
        // Breaker too lax to interfere: this test pins attempt budgets.
        breaker: BreakerConfig {
            failure_threshold: 100,
            ..BreakerConfig::default()
        },
        ..fast_config(addr)
    });
    let err = client.score_counts(&[1, 2, 3]).expect_err("dead server");
    match err {
        ClientError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 4);
            assert!(matches!(*last, ClientError::Io { .. }));
        }
        other => panic!("unexpected error {other:?}"),
    }
    let m = client.metrics().snapshot();
    assert_eq!(m.io_errors, 4);
    assert_eq!(m.retries, 3);
    drop(client);
    server.join().unwrap();
}

/// The tracer sink is process-global; serialize the tests that install
/// one so they don't capture each other's spans.
fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Extracts the number following `"key":` in a JSON line (good enough
/// for the flat integers these tests assert on).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn retries_reuse_the_trace_id_with_fresh_increasing_span_ids() {
    let _guard = sink_lock();
    let captured = trace::install_memory_sink();

    // One connection: a retryable refusal, then success — both request
    // lines land in the capture log.
    let log = Arc::new(Mutex::new(Vec::new()));
    let (addr, server) = fake_server(vec![Script::Capture(
        vec![OVERLOADED_LINE, SCORE_LINE],
        log.clone(),
    )]);
    let mut client = ScoreClient::new(fast_config(addr));
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 2);
    drop(client);
    server.join().unwrap();
    trace::install(Sink::Disabled).expect("disable sink");

    let wire = log.lock().expect("log").clone();
    assert_eq!(
        wire.len(),
        2,
        "expected both attempts on the wire: {wire:?}"
    );
    let trace_ids: Vec<u64> = wire
        .iter()
        .map(|l| json_u64(l, "trace_id").expect("trace_id on the wire"))
        .collect();
    let span_ids: Vec<u64> = wire
        .iter()
        .map(|l| json_u64(l, "span_id").expect("span_id on the wire"))
        .collect();
    // One logical request: the trace id is stable across the retry,
    // while each attempt gets a fresh, increasing span id.
    assert_eq!(trace_ids[0], trace_ids[1], "{wire:?}");
    assert!(trace_ids[0] > 0);
    assert!(span_ids[1] > span_ids[0], "{wire:?}");
    assert!(span_ids[0] > 0);

    // The client's own spans mirror the wire context.
    let lines = captured.lines();
    let attempts: Vec<&String> = lines
        .iter()
        .filter(|l| {
            l.contains("\"name\":\"client.attempt\"")
                && json_u64(l, "trace_id") == Some(trace_ids[0])
        })
        .collect();
    assert_eq!(attempts.len(), 2, "{lines:?}");
    for (i, span) in attempts.iter().enumerate() {
        assert_eq!(json_u64(span, "span_id"), Some(span_ids[i]), "{span}");
        assert_eq!(json_u64(span, "attempt"), Some(i as u64 + 1), "{span}");
    }
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"name\":\"client.request\"")
                && json_u64(l, "trace_id") == Some(trace_ids[0])
                && json_u64(l, "attempts") == Some(2)),
        "{lines:?}"
    );
}

#[test]
fn breaker_reopen_continues_the_same_trace() {
    let _guard = sink_lock();
    let captured = trace::install_memory_sink();

    // Two resets trip the breaker; after its cooldown the half-open
    // probe reaches a healthy capture server.
    let log = Arc::new(Mutex::new(Vec::new()));
    let (addr, server) = fake_server(vec![
        Script::CloseImmediately,
        Script::CloseImmediately,
        Script::Capture(vec![SCORE_LINE], log.clone()),
    ]);
    let mut client = ScoreClient::new(ClientConfig {
        max_attempts: 10,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 5,
            half_open_probes: 1,
            probe_timeout_ms: 1_000,
        },
        ..fast_config(addr)
    });
    let outcome = client.score_counts(&[1, 2, 3]).expect("score");
    assert_eq!(outcome.attempts, 3);
    let m = client.metrics().snapshot();
    assert_eq!(m.breaker_trips, 1);
    assert!(m.breaker_rejections >= 1);
    drop(client);
    server.join().unwrap();
    trace::install(Sink::Disabled).expect("disable sink");

    // The attempt that crossed the reopened breaker still carries the
    // call's original trace id, with a span id minted after (greater
    // than) the failed attempts'.
    let wire = log.lock().expect("log").clone();
    assert_eq!(wire.len(), 1, "{wire:?}");
    let trace_id = json_u64(&wire[0], "trace_id").expect("trace_id on the wire");
    let final_span = json_u64(&wire[0], "span_id").expect("span_id on the wire");
    let lines = captured.lines();
    let span_ids: Vec<u64> = lines
        .iter()
        .filter(|l| {
            l.contains("\"name\":\"client.attempt\"") && json_u64(l, "trace_id") == Some(trace_id)
        })
        .map(|l| json_u64(l, "span_id").expect("span_id recorded"))
        .collect();
    assert_eq!(span_ids.len(), 3, "{lines:?}");
    assert!(span_ids.windows(2).all(|w| w[1] > w[0]), "{span_ids:?}");
    assert_eq!(*span_ids.last().unwrap(), final_span);
}

#[test]
fn breaker_trips_and_rejects_without_touching_the_wire() {
    let scripts = (0..2).map(|_| Script::CloseImmediately).collect();
    let (addr, server) = fake_server(scripts);
    let mut client = ScoreClient::new(ClientConfig {
        max_attempts: 10,
        call_deadline: Duration::from_millis(300),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 60_000, // far beyond the call deadline
            half_open_probes: 1,
            probe_timeout_ms: 1_000,
        },
        ..fast_config(addr)
    });
    let err = client.score_counts(&[1, 2, 3]).expect_err("tripped");
    assert!(
        matches!(err, ClientError::CircuitOpen { retry_in_ms } if retry_in_ms > 0),
        "unexpected error {err:?}"
    );
    let m = client.metrics().snapshot();
    assert_eq!(m.breaker_trips, 1);
    assert_eq!(m.breaker_rejections, 1);
    assert_eq!(m.io_errors, 2);
    assert_eq!(m.connects, 2, "no connection after the trip");
    drop(client);
    server.join().unwrap();
}
