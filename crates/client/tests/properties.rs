//! Property tests for the client's resilience machinery.
//!
//! * The backoff schedule is a pure function of `(policy, attempt)`:
//!   deterministic per seed, monotone in its nominal component, and
//!   bounded by `cap * (1 + jitter)`.
//! * The circuit breaker never deadlocks: after ANY sequence of
//!   acquisitions, reports, and clock advances, honoring at most a few
//!   rejection hints always reaches an admitted call — including from
//!   half-open with probes that never report back.

use std::time::Duration;

use maleva_client::{BackoffPolicy, BreakerConfig, CircuitBreaker};
use proptest::prelude::*;

fn policy() -> impl Strategy<Value = BackoffPolicy> {
    (1u64..100, 1u64..1_000, 0u32..=100, any::<u64>()).prop_map(|(base, extra, jitter, seed)| {
        BackoffPolicy {
            base: Duration::from_millis(base),
            cap: Duration::from_millis(base + extra),
            jitter_frac: f64::from(jitter) / 100.0,
            seed,
        }
    })
}

/// One step of a random breaker workload. Acquired calls report back
/// success/failure only when the step says so — unreported probes are
/// exactly the hangs the breaker must survive.
#[derive(Debug, Clone, Copy)]
enum Step {
    Acquire { report: Option<bool>, advance: u64 },
    Failure { advance: u64 },
    Success { advance: u64 },
}

fn step() -> impl Strategy<Value = Step> {
    (
        0u8..6,
        prop::sample::select(vec![None, Some(true), Some(false)]),
        0u64..700,
    )
        .prop_map(|(kind, report, advance)| match kind {
            0..=2 => Step::Acquire { report, advance },
            3 | 4 => Step::Failure { advance },
            _ => Step::Success { advance },
        })
}

fn config() -> impl Strategy<Value = BreakerConfig> {
    (1u32..6, 1u64..500, 1u32..4, 1u64..500).prop_map(
        |(failure_threshold, cooldown_ms, half_open_probes, probe_timeout_ms)| BreakerConfig {
            failure_threshold,
            cooldown_ms,
            half_open_probes,
            probe_timeout_ms,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same policy => same schedule, attempt by attempt.
    #[test]
    fn backoff_schedule_is_deterministic_per_seed(p in policy()) {
        let q = p.clone();
        for attempt in 0..24u32 {
            prop_assert_eq!(p.delay(attempt), q.delay(attempt));
        }
    }

    /// The nominal schedule is monotone non-decreasing and capped; the
    /// jittered delay stays inside the `[1-j, 1+j]` envelope of it.
    #[test]
    fn backoff_schedule_is_monotone_and_bounded(p in policy()) {
        let mut prev = Duration::ZERO;
        for attempt in 0..24u32 {
            let nominal = p.nominal(attempt);
            prop_assert!(nominal >= prev, "nominal not monotone at {}", attempt);
            prop_assert!(nominal <= p.cap);
            prev = nominal;

            let d = p.delay(attempt).as_secs_f64();
            let n = nominal.as_secs_f64();
            let j = p.jitter_frac;
            prop_assert!(d >= n * (1.0 - j) - 1e-9, "delay {} below envelope {}", d, n);
            prop_assert!(d <= n * (1.0 + j) + 1e-9, "delay {} above envelope {}", d, n);
        }
    }

    /// A different seed decorrelates at least one attempt of a jittered
    /// schedule (no retry stampedes from identically-configured
    /// clients).
    #[test]
    fn backoff_seeds_decorrelate(base in 1u64..50, s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let make = |seed| BackoffPolicy {
            base: Duration::from_millis(base),
            cap: Duration::from_millis(base * 1024),
            jitter_frac: 0.5,
            seed,
        };
        let (a, b) = (make(s1), make(s2));
        let differs = (0..16u32).any(|i| a.delay(i) != b.delay(i));
        prop_assert!(differs, "seeds {} and {} produced identical schedules", s1, s2);
    }

    /// No-deadlock liveness: drive the breaker through an arbitrary
    /// workload (including probes that never report), then honor its
    /// rejection hints — an admitted call must arrive within a few
    /// bounded waits, never an unbounded lockout.
    #[test]
    fn breaker_always_recovers(cfg in config(), steps in prop::collection::vec(step(), 0..40)) {
        let breaker = CircuitBreaker::new(cfg.clone());
        let mut now: u64 = 0;
        let hint_bound = cfg.cooldown_ms.max(cfg.probe_timeout_ms);

        for s in steps {
            match s {
                Step::Acquire { report, advance } => {
                    if let Err(wait) = breaker.try_acquire(now) {
                        prop_assert!(wait > 0, "zero-wait rejection spins");
                        prop_assert!(wait <= hint_bound, "hint {} exceeds bound {}", wait, hint_bound);
                    } else if let Some(ok) = report {
                        if ok { breaker.on_success(); } else { breaker.on_failure(now); }
                    }
                    now += advance;
                }
                Step::Failure { advance } => { breaker.on_failure(now); now += advance; }
                Step::Success { advance } => { breaker.on_success(); now += advance; }
            }
        }

        // From whatever state the workload left behind, honoring the
        // hints must admit a call: one wait to leave Open, at most one
        // more to recycle a saturated half-open probe window.
        let mut admitted = false;
        for _ in 0..3 {
            match breaker.try_acquire(now) {
                Ok(()) => { admitted = true; break; }
                Err(wait) => {
                    prop_assert!(wait > 0 && wait <= hint_bound);
                    now += wait;
                }
            }
        }
        prop_assert!(admitted, "breaker deadlocked in state {:?}", breaker.state());
    }
}
