use maleva_attack::{detection_rate, EvasionAttack, Jsma};
use maleva_core::*;
use maleva_defense::{SqueezeDetector, Squeezer};
fn main() {
    let ctx = ExperimentContext::build(ExperimentScale::quick(), 42).unwrap();
    let sub = greybox::train_substitute(&ctx, ctx.seed ^ 0x5B).unwrap();
    let batch = ctx.attack_batch();
    let (adv, _) = Jsma::new(0.25, 0.05)
        .with_high_confidence()
        .craft_batch(&sub, &batch)
        .unwrap();
    println!(
        "advex target detection: {:.3}",
        detection_rate(ctx.target(), &adv).unwrap()
    );
    let clean = ctx.clean_batch();
    for sq in [
        Squeezer::TrimLow { threshold: 0.15 },
        Squeezer::TrimLow { threshold: 0.26 },
        Squeezer::TrimLow { threshold: 0.35 },
    ] {
        let det = SqueezeDetector::calibrate(ctx.target().clone(), sq, &ctx.x_train, 0.05).unwrap();
        let f = |x: &maleva_linalg::Matrix| {
            let fl = det.flag_adversarial(x).unwrap();
            fl.iter().filter(|&&b| b).count() as f64 / fl.len() as f64
        };
        println!(
            "{sq:?}: thr={:.4} flag clean={:.3} malware={:.3} advex={:.3}",
            det.threshold(),
            f(&clean),
            f(&batch),
            f(&adv)
        );
    }
}
