//! The black-box attack framework of the paper's Figure 2 — proposed as
//! future work there ("we are building the real-world black-box testing
//! framework as proposed in Figure 2 using open source data with
//! different features and models"), implemented here as an extension.
//!
//! The attacker has **no** knowledge of the target: not its model, not
//! its features, not its data. All they can do is submit programs and
//! observe verdicts (a label oracle). Following Papernot et al.'s
//! practical black-box attack, the attacker:
//!
//! 1. builds a small seed corpus of their own programs and labels it by
//!    querying the oracle;
//! 2. featurizes with their **own** representation (binary features over
//!    their own guessed API vocabulary — "different features");
//! 3. trains a substitute ("different model": the Table IV architecture,
//!    which differs from the 4-layer target);
//! 4. augments the corpus Jacobian-style: for each program, insert the
//!    API whose substitute gradient most changes the verdict, query the
//!    oracle for the new label, repeat;
//! 5. crafts JSMA adversarial examples on the substitute and rebuilds
//!    them as real programs (API insertions) scanned by the target.
//!
//! The oracle is abstracted behind [`LabelOracle`] so the same pipeline
//! runs offline (the in-process detector, [`run`]) or live against a
//! `maleva-serve` instance over TCP (the `maleva-campaign` crate). Both
//! paths are bit-identical for the same seed because serving is
//! bit-identical to local scanning. Every oracle interaction is charged
//! to a per-phase [`QueryLedger`] and optionally capped by
//! [`BlackboxConfig::query_budget`] — the real-world constraint that a
//! cloud scanner only answers so many queries before the attacker runs
//! out of accounts.

use maleva_apisim::{ApiVocab, Class, Program};
use maleva_attack::{EvasionAttack, Jsma};
use maleva_features::CountTransform;
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, Trainer};
use serde::{Deserialize, Serialize};

use crate::models::substitute_model;
use crate::{DetectorPipeline, ExperimentContext};

/// Configuration of the black-box run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackboxConfig {
    /// Size of the attacker's initial seed corpus (half clean / half
    /// malware by the attacker's own ground truth).
    pub seed_corpus: usize,
    /// Jacobian-augmentation rounds.
    pub augmentation_rounds: usize,
    /// Fraction of the standard vocabulary the attacker's guessed
    /// vocabulary covers (see [`ApiVocab::attacker_guess`]).
    pub vocab_overlap: f64,
    /// JSMA γ for the final crafting step.
    pub gamma: f64,
    /// Number of defender test-malware programs attacked at the end.
    pub eval_samples: usize,
    /// Total oracle-query budget across every phase (seed labelling,
    /// augmentation, agreement probe, and evaluation scans); `0` means
    /// unlimited. When the budget runs out mid-phase the attacker keeps
    /// whatever they have: a truncated corpus, fewer augmentations, a
    /// smaller probe, or fewer attacked programs.
    pub query_budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlackboxConfig {
    fn default() -> Self {
        BlackboxConfig {
            seed_corpus: 200,
            augmentation_rounds: 2,
            vocab_overlap: 0.6,
            gamma: 0.05,
            eval_samples: 100,
            query_budget: 0,
            seed: 0,
        }
    }
}

/// A label oracle the attacker can query: submit a program, get back a
/// hard malware verdict. Offline this is the in-process detector
/// ([`DetectorOracle`]); live it is a scoring service reached over the
/// wire. The trait is `&mut self` so implementations can count queries,
/// enforce budgets, or maintain connections.
pub trait LabelOracle {
    /// The oracle's verdict for `program` (`true` = malware).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] when the oracle cannot answer (scoring
    /// failure offline; a refused or throttled query live).
    fn label(&mut self, program: &Program) -> Result<bool, NnError>;
}

/// The offline oracle: the deployed detector itself, queried in
/// process. This is what [`run`] uses.
pub struct DetectorOracle<'a> {
    detector: &'a DetectorPipeline,
}

impl<'a> DetectorOracle<'a> {
    /// Wraps a detector as a label oracle.
    pub fn new(detector: &'a DetectorPipeline) -> Self {
        DetectorOracle { detector }
    }
}

impl LabelOracle for DetectorOracle<'_> {
    fn label(&mut self, program: &Program) -> Result<bool, NnError> {
        self.detector.is_malware(program)
    }
}

/// Per-phase oracle-query accounting for one black-box run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLedger {
    /// Queries spent labelling the initial seed corpus.
    pub seed: usize,
    /// Queries spent labelling Jacobian-augmented samples.
    pub augmentation: usize,
    /// Queries spent on the substitute-agreement probe.
    pub agreement: usize,
    /// Queries spent scanning original + rebuilt programs in the final
    /// evaluation.
    pub evaluation: usize,
}

impl QueryLedger {
    /// Total queries across all phases.
    pub fn total(&self) -> usize {
        self.seed + self.augmentation + self.agreement + self.evaluation
    }
}

/// One point on the queries-to-evasion curve: after `queries` total
/// oracle queries, the attacker had accumulated `evasions` evasions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvasionPoint {
    /// Cumulative oracle queries (all phases) when the evasion landed.
    pub queries: usize,
    /// Cumulative evasion count at that moment.
    pub evasions: usize,
}

/// Artifacts of a black-box run.
#[derive(Debug, Clone)]
pub struct BlackboxArtifacts {
    /// The attacker's trained substitute.
    pub substitute: Network,
    /// The attacker's feature vocabulary.
    pub attacker_vocab: ApiVocab,
    /// Oracle queries spent building the substitute (seed labelling +
    /// augmentation + agreement probe; evaluation scans are charged to
    /// the [`QueryLedger`] but excluded here, matching the classic
    /// "extraction cost" accounting).
    pub oracle_queries: usize,
    /// Per-phase query accounting, including evaluation scans.
    pub ledger: QueryLedger,
    /// Substitute agreement with the oracle on a held-out attacker batch.
    pub oracle_agreement: f64,
    /// Target detection rate on the rebuilt adversarial programs.
    pub target_detection: f64,
    /// `1 − target_detection`.
    pub transfer_rate: f64,
    /// Target detection rate on the same programs *before* modification.
    pub baseline_detection: f64,
    /// Programs the final evaluation fully scanned (baseline +
    /// modified); below `eval_samples` when the budget ran out.
    pub attacked: usize,
    /// Evasions achieved: programs detected at baseline whose rebuilt
    /// version the target passed as clean.
    pub evasions: usize,
    /// Total queries spent when the first evasion landed (`None` if the
    /// run produced no evasion).
    pub queries_to_first_evasion: Option<usize>,
    /// Cumulative queries-to-evasion curve, one point per new evasion.
    pub evasion_curve: Vec<EvasionPoint>,
}

/// A serializable summary of [`BlackboxArtifacts`] (everything except
/// the model and vocabulary objects) for JSON reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackboxSummary {
    /// Attacker vocabulary size.
    pub attacker_vocab_len: usize,
    /// See [`BlackboxArtifacts::oracle_queries`].
    pub oracle_queries: usize,
    /// See [`BlackboxArtifacts::ledger`].
    pub ledger: QueryLedger,
    /// See [`BlackboxArtifacts::oracle_agreement`].
    pub oracle_agreement: f64,
    /// See [`BlackboxArtifacts::baseline_detection`].
    pub baseline_detection: f64,
    /// See [`BlackboxArtifacts::target_detection`].
    pub target_detection: f64,
    /// See [`BlackboxArtifacts::transfer_rate`].
    pub transfer_rate: f64,
    /// See [`BlackboxArtifacts::attacked`].
    pub attacked: usize,
    /// See [`BlackboxArtifacts::evasions`].
    pub evasions: usize,
    /// Queries spent when the first evasion landed; `0` when none.
    pub queries_to_first_evasion: usize,
    /// See [`BlackboxArtifacts::evasion_curve`].
    pub evasion_curve: Vec<EvasionPoint>,
}

impl BlackboxArtifacts {
    /// The serializable summary of this run.
    pub fn summary(&self) -> BlackboxSummary {
        BlackboxSummary {
            attacker_vocab_len: self.attacker_vocab.len(),
            oracle_queries: self.oracle_queries,
            ledger: self.ledger,
            oracle_agreement: self.oracle_agreement,
            baseline_detection: self.baseline_detection,
            target_detection: self.target_detection,
            transfer_rate: self.transfer_rate,
            attacked: self.attacked,
            evasions: self.evasions,
            queries_to_first_evasion: self.queries_to_first_evasion.unwrap_or(0),
            evasion_curve: self.evasion_curve.clone(),
        }
    }
}

/// Runs the Figure 2 black-box framework end-to-end against the
/// in-process detector (the offline oracle).
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures.
///
/// # Panics
///
/// Panics if `config.seed_corpus == 0` or `config.vocab_overlap` is
/// outside `(0, 1]`.
pub fn run(ctx: &ExperimentContext, config: &BlackboxConfig) -> Result<BlackboxArtifacts, NnError> {
    let mut oracle = DetectorOracle::new(&ctx.detector);
    run_with_oracle(ctx, config, &mut oracle)
}

/// Runs the Figure 2 black-box framework against an arbitrary
/// [`LabelOracle`] — the in-process detector offline, or a live scoring
/// service over the wire. The attacker's RNG stream depends only on
/// `config.seed`, so two runs with the same config submit the same
/// query sequence regardless of which oracle answers; when the oracles
/// agree (serving is bit-identical to scanning), the runs are
/// identical.
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures, or when the
/// oracle refuses a query (e.g. a live service throttling the client).
/// A refused query is *not* the budget running out — budget exhaustion
/// degrades the run gracefully instead of failing it.
///
/// # Panics
///
/// Panics if `config.seed_corpus == 0` or `config.vocab_overlap` is
/// outside `(0, 1]`.
pub fn run_with_oracle(
    ctx: &ExperimentContext,
    config: &BlackboxConfig,
    oracle: &mut dyn LabelOracle,
) -> Result<BlackboxArtifacts, NnError> {
    assert!(config.seed_corpus > 0, "seed corpus must be non-empty");
    let mut ledger = QueryLedger::default();
    let budget_left = |ledger: &QueryLedger, needed: usize| {
        config.query_budget == 0 || ledger.total() + needed <= config.query_budget
    };
    let mut rng = maleva_apisim::rng(config.seed ^ 0xB1AC_B0C5);

    // The attacker's own feature space: binary features over a guessed
    // vocabulary that only partially overlaps the defender's.
    let attacker_vocab = ApiVocab::attacker_guess(config.vocab_overlap);

    // 1. Seed corpus, labelled by the oracle (the deployed detector).
    let half = config.seed_corpus / 2;
    let mut corpus: Vec<Program> =
        ctx.world
            .sample_batch(half, config.seed_corpus - half, &mut rng);
    let mut labels: Vec<usize> = Vec::with_capacity(corpus.len());
    for p in &corpus {
        if !budget_left(&ledger, 1) {
            break;
        }
        labels.push(usize::from(oracle.label(p)?));
        ledger.seed += 1;
    }
    if labels.is_empty() {
        return Err(NnError::InvalidConfig {
            detail: format!(
                "query budget {} cannot label a single seed sample",
                config.query_budget
            ),
        });
    }
    corpus.truncate(labels.len());

    // 2-4. Train + Jacobian augmentation rounds.
    let attacker_features = |progs: &[Program]| -> Matrix {
        let rows: Vec<Vec<f64>> = progs
            .iter()
            .map(|p| {
                let text = p.render_log(ctx.world.vocab());
                let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
                counts
                    .iter()
                    .map(|&c| CountTransform::Binary.apply(c))
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).expect("uniform rows")
    };

    let mut substitute = substitute_model(
        attacker_vocab.len(),
        ctx.scale.model_scale,
        config.seed ^ 0xBB,
    )?;
    for round in 0..=config.augmentation_rounds {
        let x = attacker_features(&corpus);
        substitute = substitute_model(
            attacker_vocab.len(),
            ctx.scale.model_scale,
            config.seed ^ 0xBB,
        )?;
        Trainer::new(
            ctx.scale
                .substitute_trainer(config.seed.wrapping_add(round as u64)),
        )
        .fit(&mut substitute, &x, &labels)?;

        if round == config.augmentation_rounds {
            break;
        }
        // Augment: for each corpus program, insert the API with the
        // strongest substitute gradient *toward the oracle's label
        // boundary*, then ask the oracle for the new sample's label.
        let mut new_programs = Vec::with_capacity(corpus.len());
        let mut new_labels = Vec::with_capacity(corpus.len());
        for (p, &label) in corpus.iter().zip(labels.iter()) {
            if !budget_left(&ledger, 1) {
                break;
            }
            let text = p.render_log(ctx.world.vocab());
            let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
            let feats: Vec<f64> = counts
                .iter()
                .map(|&c| CountTransform::Binary.apply(c))
                .collect();
            let jac = substitute.probability_jacobian(&feats, 1.0)?;
            // Move across the boundary: increase the feature pushing away
            // from the current label.
            let away_class = 1 - label;
            let mut best = None;
            for (j, &f) in feats.iter().enumerate() {
                if f >= 1.0 {
                    continue;
                }
                let s = jac.get(away_class, j);
                if best.is_none_or(|(_, bv)| s > bv) {
                    best = Some((j, s));
                }
            }
            let Some((j, _)) = best else { continue };
            // The attacker's feature j is an API *name* in their own
            // vocabulary; only names the defender's world also knows can
            // be inserted into real source code.
            let Some(api_name) = attacker_vocab.name(j) else {
                continue;
            };
            let Some(world_idx) = ctx.world.vocab().index_of(api_name) else {
                continue; // fabricated API: cannot exist in a real program
            };
            let mut augmented = p.clone();
            augmented.insert_api_calls(world_idx, 1);
            new_labels.push(usize::from(oracle.label(&augmented)?));
            ledger.augmentation += 1;
            new_programs.push(augmented);
        }
        corpus.extend(new_programs);
        labels.extend(new_labels);
    }

    // Substitute-oracle agreement on a fresh attacker batch.
    let probe = ctx.world.sample_batch(40, 40, &mut rng);
    let probe_x = attacker_features(&probe);
    let sub_preds = substitute.predict(&probe_x)?;
    let mut agree = 0usize;
    let mut probed = 0usize;
    for (p, &sp) in probe.iter().zip(sub_preds.iter()) {
        if !budget_left(&ledger, 1) {
            break;
        }
        let oracle_label = usize::from(oracle.label(p)?);
        ledger.agreement += 1;
        probed += 1;
        if oracle_label == sp {
            agree += 1;
        }
    }
    let oracle_agreement = if probed == 0 {
        0.0
    } else {
        agree as f64 / probed as f64
    };
    let oracle_queries = ledger.seed + ledger.augmentation + ledger.agreement;

    // 5. Craft on the substitute; rebuild as programs; scan with the
    // target. Each attacked program costs two queries: the baseline
    // scan and the rebuilt-program scan.
    let mal_programs: Vec<&Program> = ctx
        .dataset
        .test()
        .iter()
        .filter(|p| p.class() == Class::Malware)
        .take(config.eval_samples)
        .collect();
    let jsma = Jsma::new(1.0, config.gamma);
    let mut detected = 0usize;
    let mut baseline_detected = 0usize;
    let mut attacked = 0usize;
    let mut evasions = 0usize;
    let mut evasion_curve: Vec<EvasionPoint> = Vec::new();
    for prog in &mal_programs {
        if !budget_left(&ledger, 2) {
            break;
        }
        let baseline_hit = oracle.label(prog)?;
        ledger.evaluation += 1;
        if baseline_hit {
            baseline_detected += 1;
        }
        let text = prog.render_log(ctx.world.vocab());
        let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
        let feats: Vec<f64> = counts
            .iter()
            .map(|&c| CountTransform::Binary.apply(c))
            .collect();
        let outcome = jsma.craft(&substitute, &feats)?;
        let mut modified = (*prog).clone();
        for (j, (&b, &a)) in feats.iter().zip(outcome.adversarial.iter()).enumerate() {
            if b == 0.0 && a > 0.0 {
                if let Some(name) = attacker_vocab.name(j) {
                    if let Some(world_idx) = ctx.world.vocab().index_of(name) {
                        modified.insert_api_calls(world_idx, 1);
                    }
                }
            }
        }
        let modified_hit = oracle.label(&modified)?;
        ledger.evaluation += 1;
        attacked += 1;
        if modified_hit {
            detected += 1;
        }
        if baseline_hit && !modified_hit {
            evasions += 1;
            evasion_curve.push(EvasionPoint {
                queries: ledger.total(),
                evasions,
            });
        }
    }
    let n = attacked.max(1) as f64;
    let target_detection = detected as f64 / n;
    Ok(BlackboxArtifacts {
        substitute,
        attacker_vocab,
        oracle_queries,
        ledger,
        oracle_agreement,
        target_detection,
        transfer_rate: 1.0 - target_detection,
        baseline_detection: baseline_detected as f64 / n,
        attacked,
        evasions,
        queries_to_first_evasion: evasion_curve.first().map(|pt| pt.queries),
        evasion_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentContext, ExperimentScale};

    fn small_config() -> BlackboxConfig {
        BlackboxConfig {
            seed_corpus: 60,
            augmentation_rounds: 1,
            vocab_overlap: 0.6,
            gamma: 0.05,
            eval_samples: 30,
            query_budget: 0,
            seed: 3,
        }
    }

    #[test]
    fn blackbox_framework_runs_end_to_end() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 41).unwrap();
        let artifacts = run(&ctx, &small_config()).unwrap();
        // Oracle spend: seed labels + augmentation + agreement probe.
        assert!(artifacts.oracle_queries >= 60);
        assert_eq!(
            artifacts.oracle_queries,
            artifacts.ledger.seed + artifacts.ledger.augmentation + artifacts.ledger.agreement
        );
        assert_eq!(artifacts.ledger.seed, 60);
        assert_eq!(artifacts.ledger.evaluation, 2 * artifacts.attacked);
        assert_eq!(artifacts.attacked, 30);
        // The substitute learned *something* about the oracle.
        assert!(
            artifacts.oracle_agreement > 0.6,
            "agreement {}",
            artifacts.oracle_agreement
        );
        // Rates are consistent.
        assert!((artifacts.transfer_rate + artifacts.target_detection - 1.0).abs() < 1e-12);
        assert!(
            artifacts.baseline_detection >= artifacts.target_detection - 1e-9,
            "modification should not make detection easier: baseline {} vs {}",
            artifacts.baseline_detection,
            artifacts.target_detection
        );
        // The evasion curve is consistent with the evasion count.
        assert_eq!(artifacts.evasion_curve.len(), artifacts.evasions);
        assert!(artifacts
            .evasion_curve
            .windows(2)
            .all(|w| w[0].queries < w[1].queries && w[0].evasions < w[1].evasions));
        assert_eq!(
            artifacts.queries_to_first_evasion,
            artifacts.evasion_curve.first().map(|pt| pt.queries)
        );
    }

    #[test]
    fn blackbox_is_weakest_threat_model() {
        // Black-box transfer should not exceed grey-box transfer at a
        // comparable budget (the paper's knowledge hierarchy).
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 42).unwrap();
        let bb = run(&ctx, &small_config()).unwrap();
        let substitute = crate::greybox::train_substitute(&ctx, 42).unwrap();
        let grey = crate::greybox::operating_point(&ctx, &substitute, 30, 0.4, 0.1).unwrap();
        assert!(
            bb.target_detection >= grey.target_detection - 0.2,
            "black-box ({}) should not be far stronger than grey-box ({})",
            bb.target_detection,
            grey.target_detection
        );
    }

    #[test]
    fn query_budget_caps_total_spend() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 41).unwrap();
        let unlimited = run(&ctx, &small_config()).unwrap();
        let mut config = small_config();
        config.query_budget = 100;
        let capped = run(&ctx, &config).unwrap();
        assert!(capped.ledger.total() <= 100, "{:?}", capped.ledger);
        assert!(capped.ledger.total() < unlimited.ledger.total());
        // Seed labelling is untouched (100 > 60); later phases absorb
        // the shortfall.
        assert_eq!(capped.ledger.seed, 60);
        assert!(capped.attacked < unlimited.attacked.max(1));
    }

    #[test]
    fn budget_too_small_for_a_single_label_is_an_error() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 43).unwrap();
        let mut config = small_config();
        config.query_budget = 0; // sanity: 0 means unlimited, not empty
        assert!(run(&ctx, &config).is_ok());
    }

    #[test]
    #[should_panic(expected = "seed corpus must be non-empty")]
    fn rejects_empty_corpus() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 43).unwrap();
        let mut config = small_config();
        config.seed_corpus = 0;
        let _ = run(&ctx, &config);
    }
}
