//! The black-box attack framework of the paper's Figure 2 — proposed as
//! future work there ("we are building the real-world black-box testing
//! framework as proposed in Figure 2 using open source data with
//! different features and models"), implemented here as an extension.
//!
//! The attacker has **no** knowledge of the target: not its model, not
//! its features, not its data. All they can do is submit programs and
//! observe verdicts (a label oracle). Following Papernot et al.'s
//! practical black-box attack, the attacker:
//!
//! 1. builds a small seed corpus of their own programs and labels it by
//!    querying the oracle;
//! 2. featurizes with their **own** representation (binary features over
//!    their own guessed API vocabulary — "different features");
//! 3. trains a substitute ("different model": the Table IV architecture,
//!    which differs from the 4-layer target);
//! 4. augments the corpus Jacobian-style: for each program, insert the
//!    API whose substitute gradient most changes the verdict, query the
//!    oracle for the new label, repeat;
//! 5. crafts JSMA adversarial examples on the substitute and rebuilds
//!    them as real programs (API insertions) scanned by the target.

use maleva_apisim::{ApiVocab, Class, Program};
use maleva_attack::{EvasionAttack, Jsma};
use maleva_features::CountTransform;
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, Trainer};
use serde::{Deserialize, Serialize};

use crate::models::substitute_model;
use crate::ExperimentContext;

/// Configuration of the black-box run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackboxConfig {
    /// Size of the attacker's initial seed corpus (half clean / half
    /// malware by the attacker's own ground truth).
    pub seed_corpus: usize,
    /// Jacobian-augmentation rounds.
    pub augmentation_rounds: usize,
    /// Fraction of the standard vocabulary the attacker's guessed
    /// vocabulary covers (see [`ApiVocab::attacker_guess`]).
    pub vocab_overlap: f64,
    /// JSMA γ for the final crafting step.
    pub gamma: f64,
    /// Number of defender test-malware programs attacked at the end.
    pub eval_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlackboxConfig {
    fn default() -> Self {
        BlackboxConfig {
            seed_corpus: 200,
            augmentation_rounds: 2,
            vocab_overlap: 0.6,
            gamma: 0.05,
            eval_samples: 100,
            seed: 0,
        }
    }
}

/// Artifacts of a black-box run.
#[derive(Debug, Clone)]
pub struct BlackboxArtifacts {
    /// The attacker's trained substitute.
    pub substitute: Network,
    /// The attacker's feature vocabulary.
    pub attacker_vocab: ApiVocab,
    /// Total number of oracle queries spent (labelling + augmentation).
    pub oracle_queries: usize,
    /// Substitute agreement with the oracle on a held-out attacker batch.
    pub oracle_agreement: f64,
    /// Target detection rate on the rebuilt adversarial programs.
    pub target_detection: f64,
    /// `1 − target_detection`.
    pub transfer_rate: f64,
    /// Target detection rate on the same programs *before* modification.
    pub baseline_detection: f64,
}

/// Runs the Figure 2 black-box framework end-to-end.
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures.
///
/// # Panics
///
/// Panics if `config.seed_corpus == 0` or `config.vocab_overlap` is
/// outside `(0, 1]`.
pub fn run(ctx: &ExperimentContext, config: &BlackboxConfig) -> Result<BlackboxArtifacts, NnError> {
    assert!(config.seed_corpus > 0, "seed corpus must be non-empty");
    let mut oracle_queries = 0usize;
    let mut rng = maleva_apisim::rng(config.seed ^ 0xB1AC_B0C5);

    // The attacker's own feature space: binary features over a guessed
    // vocabulary that only partially overlaps the defender's.
    let attacker_vocab = ApiVocab::attacker_guess(config.vocab_overlap);

    // 1. Seed corpus, labelled by the oracle (the deployed detector).
    let half = config.seed_corpus / 2;
    let mut corpus: Vec<Program> =
        ctx.world
            .sample_batch(half, config.seed_corpus - half, &mut rng);
    let mut labels: Vec<usize> = Vec::with_capacity(corpus.len());
    for p in &corpus {
        labels.push(usize::from(ctx.detector.is_malware(p)?));
        oracle_queries += 1;
    }

    // 2-4. Train + Jacobian augmentation rounds.
    let attacker_features = |progs: &[Program]| -> Matrix {
        let rows: Vec<Vec<f64>> = progs
            .iter()
            .map(|p| {
                let text = p.render_log(ctx.world.vocab());
                let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
                counts
                    .iter()
                    .map(|&c| CountTransform::Binary.apply(c))
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows).expect("uniform rows")
    };

    let mut substitute = substitute_model(
        attacker_vocab.len(),
        ctx.scale.model_scale,
        config.seed ^ 0xBB,
    )?;
    for round in 0..=config.augmentation_rounds {
        let x = attacker_features(&corpus);
        substitute = substitute_model(
            attacker_vocab.len(),
            ctx.scale.model_scale,
            config.seed ^ 0xBB,
        )?;
        Trainer::new(
            ctx.scale
                .substitute_trainer(config.seed.wrapping_add(round as u64)),
        )
        .fit(&mut substitute, &x, &labels)?;

        if round == config.augmentation_rounds {
            break;
        }
        // Augment: for each corpus program, insert the API with the
        // strongest substitute gradient *toward the oracle's label
        // boundary*, then ask the oracle for the new sample's label.
        let mut new_programs = Vec::with_capacity(corpus.len());
        let mut new_labels = Vec::with_capacity(corpus.len());
        for (p, &label) in corpus.iter().zip(labels.iter()) {
            let text = p.render_log(ctx.world.vocab());
            let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
            let feats: Vec<f64> = counts
                .iter()
                .map(|&c| CountTransform::Binary.apply(c))
                .collect();
            let jac = substitute.probability_jacobian(&feats, 1.0)?;
            // Move across the boundary: increase the feature pushing away
            // from the current label.
            let away_class = 1 - label;
            let mut best = None;
            for (j, &f) in feats.iter().enumerate() {
                if f >= 1.0 {
                    continue;
                }
                let s = jac.get(away_class, j);
                if best.is_none_or(|(_, bv)| s > bv) {
                    best = Some((j, s));
                }
            }
            let Some((j, _)) = best else { continue };
            // The attacker's feature j is an API *name* in their own
            // vocabulary; only names the defender's world also knows can
            // be inserted into real source code.
            let Some(api_name) = attacker_vocab.name(j) else {
                continue;
            };
            let Some(world_idx) = ctx.world.vocab().index_of(api_name) else {
                continue; // fabricated API: cannot exist in a real program
            };
            let mut augmented = p.clone();
            augmented.insert_api_calls(world_idx, 1);
            new_labels.push(usize::from(ctx.detector.is_malware(&augmented)?));
            oracle_queries += 1;
            new_programs.push(augmented);
        }
        corpus.extend(new_programs);
        labels.extend(new_labels);
    }

    // Substitute-oracle agreement on a fresh attacker batch.
    let probe = ctx.world.sample_batch(40, 40, &mut rng);
    let probe_x = attacker_features(&probe);
    let sub_preds = substitute.predict(&probe_x)?;
    let mut agree = 0usize;
    for (p, &sp) in probe.iter().zip(sub_preds.iter()) {
        let oracle = usize::from(ctx.detector.is_malware(p)?);
        oracle_queries += 1;
        if oracle == sp {
            agree += 1;
        }
    }
    let oracle_agreement = agree as f64 / probe.len() as f64;

    // 5. Craft on the substitute; rebuild as programs; scan with the
    // target.
    let mal_programs: Vec<&Program> = ctx
        .dataset
        .test()
        .iter()
        .filter(|p| p.class() == Class::Malware)
        .take(config.eval_samples)
        .collect();
    let jsma = Jsma::new(1.0, config.gamma);
    let mut detected = 0usize;
    let mut baseline_detected = 0usize;
    for prog in &mal_programs {
        if ctx.detector.is_malware(prog)? {
            baseline_detected += 1;
        }
        let text = prog.render_log(ctx.world.vocab());
        let counts = maleva_apisim::log::parse_counts(&text, &attacker_vocab);
        let feats: Vec<f64> = counts
            .iter()
            .map(|&c| CountTransform::Binary.apply(c))
            .collect();
        let outcome = jsma.craft(&substitute, &feats)?;
        let mut modified = (*prog).clone();
        for (j, (&b, &a)) in feats.iter().zip(outcome.adversarial.iter()).enumerate() {
            if b == 0.0 && a > 0.0 {
                if let Some(name) = attacker_vocab.name(j) {
                    if let Some(world_idx) = ctx.world.vocab().index_of(name) {
                        modified.insert_api_calls(world_idx, 1);
                    }
                }
            }
        }
        if ctx.detector.is_malware(&modified)? {
            detected += 1;
        }
    }
    let n = mal_programs.len().max(1) as f64;
    let target_detection = detected as f64 / n;
    Ok(BlackboxArtifacts {
        substitute,
        attacker_vocab,
        oracle_queries,
        oracle_agreement,
        target_detection,
        transfer_rate: 1.0 - target_detection,
        baseline_detection: baseline_detected as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentContext, ExperimentScale};

    fn small_config() -> BlackboxConfig {
        BlackboxConfig {
            seed_corpus: 60,
            augmentation_rounds: 1,
            vocab_overlap: 0.6,
            gamma: 0.05,
            eval_samples: 30,
            seed: 3,
        }
    }

    #[test]
    fn blackbox_framework_runs_end_to_end() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 41).unwrap();
        let artifacts = run(&ctx, &small_config()).unwrap();
        // Oracle spend: seed labels + augmentation + agreement probe.
        assert!(artifacts.oracle_queries >= 60);
        // The substitute learned *something* about the oracle.
        assert!(
            artifacts.oracle_agreement > 0.6,
            "agreement {}",
            artifacts.oracle_agreement
        );
        // Rates are consistent.
        assert!((artifacts.transfer_rate + artifacts.target_detection - 1.0).abs() < 1e-12);
        assert!(
            artifacts.baseline_detection >= artifacts.target_detection - 1e-9,
            "modification should not make detection easier: baseline {} vs {}",
            artifacts.baseline_detection,
            artifacts.target_detection
        );
    }

    #[test]
    fn blackbox_is_weakest_threat_model() {
        // Black-box transfer should not exceed grey-box transfer at a
        // comparable budget (the paper's knowledge hierarchy).
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 42).unwrap();
        let bb = run(&ctx, &small_config()).unwrap();
        let substitute = crate::greybox::train_substitute(&ctx, 42).unwrap();
        let grey = crate::greybox::operating_point(&ctx, &substitute, 30, 0.4, 0.1).unwrap();
        assert!(
            bb.target_detection >= grey.target_detection - 0.2,
            "black-box ({}) should not be far stronger than grey-box ({})",
            bb.target_detection,
            grey.target_detection
        );
    }

    #[test]
    #[should_panic(expected = "seed corpus must be non-empty")]
    fn rejects_empty_corpus() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 43).unwrap();
        let mut config = small_config();
        config.seed_corpus = 0;
        let _ = run(&ctx, &config);
    }
}
