use std::path::PathBuf;

use maleva_apisim::{Class, Dataset, DatasetSpec, World, WorldConfig};
use maleva_features::{CountTransform, FeaturePipeline};
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, TrainConfig, Trainer};

use crate::models::{target_model, ModelScale};
use crate::DetectorPipeline;

/// How big an experiment run is: dataset sizes, model widths, training
/// epochs, and how many test malware samples the attacks are launched
/// against.
///
/// The paper trains with 1000 epochs on 57 170 samples and attacks all
/// 28 874 test malware; [`ExperimentScale::paper`] keeps those dataset
/// sizes and model widths but a laptop-honest epoch count (the comparisons
/// are all within-run). `quick` is the default for the `repro` binary,
/// `tiny` for unit tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Preset name (for reports).
    pub name: &'static str,
    /// Dataset split sizes (Table I shape).
    pub dataset: DatasetSpec,
    /// Model width preset.
    pub model_scale: ModelScale,
    /// Epochs for the target model.
    pub target_epochs: usize,
    /// Epochs for substitute / defended models.
    pub substitute_epochs: usize,
    /// Minibatch size (paper: 256).
    pub batch_size: usize,
    /// Learning rate (paper: 0.001, Adam).
    pub learning_rate: f64,
    /// Number of test-malware samples attacks are evaluated on.
    pub attack_samples: usize,
    /// Pair budget for the Figure 5 cross-population L2 estimates.
    pub l2_max_pairs: usize,
    /// Count transformation of the detector's feature pipeline.
    pub transform: CountTransform,
}

impl ExperimentScale {
    /// Paper-sized data and model widths (Table I / Table IV).
    pub fn paper() -> Self {
        ExperimentScale {
            name: "paper",
            dataset: DatasetSpec::paper(),
            model_scale: ModelScale::Paper,
            target_epochs: 30,
            substitute_epochs: 30,
            batch_size: 256,
            learning_rate: 0.001,
            attack_samples: 2_000,
            l2_max_pairs: 20_000,
            transform: CountTransform::Raw,
        }
    }

    /// Minutes-scale preset — the default for the `repro` binary.
    pub fn quick() -> Self {
        ExperimentScale {
            name: "quick",
            dataset: DatasetSpec::quick(),
            model_scale: ModelScale::Quick,
            target_epochs: 30,
            substitute_epochs: 30,
            batch_size: 256,
            learning_rate: 0.001,
            attack_samples: 300,
            l2_max_pairs: 10_000,
            transform: CountTransform::Raw,
        }
    }

    /// Unit-test preset.
    pub fn tiny() -> Self {
        ExperimentScale {
            name: "tiny",
            dataset: DatasetSpec::tiny(),
            model_scale: ModelScale::Tiny,
            target_epochs: 25,
            substitute_epochs: 25,
            batch_size: 32,
            learning_rate: 0.005,
            attack_samples: 40,
            l2_max_pairs: 2_000,
            transform: CountTransform::Raw,
        }
    }

    /// The training configuration for the target model.
    pub fn target_trainer(&self, seed: u64) -> TrainConfig {
        TrainConfig::new()
            .epochs(self.target_epochs)
            .batch_size(self.batch_size)
            .learning_rate(self.learning_rate)
            .seed(seed)
    }

    /// The training configuration for substitute / defended models
    /// (paper Section III-B: Adam, lr 0.001, batch 256).
    pub fn substitute_trainer(&self, seed: u64) -> TrainConfig {
        TrainConfig::new()
            .epochs(self.substitute_epochs)
            .batch_size(self.batch_size)
            .learning_rate(self.learning_rate)
            .seed(seed)
    }
}

/// Where (and whether) a context build checkpoints its target training.
///
/// The plan is deliberately tiny: a directory, a cadence, and a resume
/// flag — the trainer does the heavy lifting (see
/// [`maleva_nn::TrainCheckpoint`]). The target model's snapshots live
/// under `<dir>/target` so future checkpointed models can share the root.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPlan {
    /// Checkpoint root directory; `None` disables checkpointing.
    pub dir: Option<PathBuf>,
    /// Write a snapshot every this many completed epochs.
    pub every: usize,
    /// Resume from an existing snapshot when one is present.
    pub resume: bool,
}

impl CheckpointPlan {
    /// No checkpointing (what [`ExperimentContext::build`] uses).
    pub fn none() -> Self {
        CheckpointPlan::default()
    }

    /// Checkpoint into `dir` every `every` epochs, resuming if `resume`
    /// is set and a snapshot exists.
    pub fn new(dir: impl Into<PathBuf>, every: usize, resume: bool) -> Self {
        CheckpointPlan {
            dir: Some(dir.into()),
            every: every.max(1),
            resume,
        }
    }
}

/// Shared state for all experiments: the synthetic world, the Table I
/// dataset, the fitted feature pipeline, and the trained target detector.
///
/// Build once per seed and pass to the experiment modules; everything
/// downstream is deterministic given `(scale, seed)`.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The scale this context was built at.
    pub scale: ExperimentScale,
    /// The seed this context was built from.
    pub seed: u64,
    /// The generative world (vocabulary + behaviour profiles).
    pub world: World,
    /// The generated Table-I-shaped corpus.
    pub dataset: Dataset,
    /// The deployed detector (vocab + fitted features + trained target).
    pub detector: DetectorPipeline,
    /// Training features (one row per training program).
    pub x_train: Matrix,
    /// Training labels.
    pub y_train: Vec<usize>,
    /// Test features.
    pub x_test: Matrix,
    /// Test labels.
    pub y_test: Vec<usize>,
    /// Test features, malware rows only.
    pub x_test_malware: Matrix,
    /// Test features, clean rows only.
    pub x_test_clean: Matrix,
}

impl ExperimentContext {
    /// Builds the context: generates the dataset, fits the feature
    /// pipeline on the training split, trains the target model (with the
    /// validation split tracked), and assembles the detector.
    ///
    /// # Errors
    ///
    /// Training/shape errors surface as [`NnError`].
    pub fn build(scale: ExperimentScale, seed: u64) -> Result<Self, NnError> {
        Self::build_with_checkpoints(scale, seed, CheckpointPlan::none())
    }

    /// Like [`ExperimentContext::build`], but with fault-tolerant target
    /// training: a [`CheckpointPlan`] names a directory where the trainer
    /// snapshots its state every K epochs, and whether to resume from an
    /// existing snapshot. Everything generated from the seed (world,
    /// dataset, features) is cheap and deterministic, so only the
    /// training loop is checkpointed; a resumed build is bit-identical
    /// to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Training/shape/checkpoint errors surface as [`NnError`].
    pub fn build_with_checkpoints(
        scale: ExperimentScale,
        seed: u64,
        plan: CheckpointPlan,
    ) -> Result<Self, NnError> {
        let mut build_span = maleva_obs::Span::enter("pipeline.build");
        build_span.record("seed", seed);

        let (world, dataset) = {
            let mut span = maleva_obs::Span::enter("pipeline.dataset");
            let world = World::new(WorldConfig::default());
            let dataset = world.build_dataset(&scale.dataset, seed);
            span.record("train_rows", dataset.train().len() as u64);
            span.record("test_rows", dataset.test().len() as u64);
            (world, dataset)
        };

        let (features, x_train, y_train, x_val, y_val, x_test, y_test) = {
            let mut span = maleva_obs::Span::enter("pipeline.features");
            let features = FeaturePipeline::fit(scale.transform, dataset.train());
            span.record("dim", features.dim() as u64);
            let x_train = features.transform_batch(dataset.train());
            let y_train = Dataset::labels(dataset.train());
            let x_val = features.transform_batch(dataset.val());
            let y_val = Dataset::labels(dataset.val());
            let x_test = features.transform_batch(dataset.test());
            let y_test = Dataset::labels(dataset.test());
            (features, x_train, y_train, x_val, y_val, x_test, y_test)
        };

        let mut target = target_model(features.dim(), scale.model_scale, seed ^ 0xA11CE)?;
        let mut train_cfg = scale.target_trainer(seed);
        if let Some(dir) = &plan.dir {
            train_cfg = train_cfg
                .checkpoint_dir(dir.join("target"))
                .checkpoint_every(plan.every)
                .resume(plan.resume);
        }
        {
            let _span = maleva_obs::Span::enter("pipeline.train_target");
            Trainer::new(train_cfg).fit_labeled(
                &mut target,
                &x_train,
                maleva_nn::LabelSource::Hard(&y_train),
                Some((&x_val, &y_val)),
            )?;
        }

        let mal_idx = Dataset::indices_of(dataset.test(), Class::Malware);
        let clean_idx = Dataset::indices_of(dataset.test(), Class::Clean);
        let x_test_malware = x_test.select_rows(&mal_idx);
        let x_test_clean = x_test.select_rows(&clean_idx);

        let detector = DetectorPipeline::new(world.vocab().clone(), features, target)?;
        Ok(ExperimentContext {
            scale,
            seed,
            world,
            dataset,
            detector,
            x_train,
            y_train,
            x_test,
            y_test,
            x_test_malware,
            x_test_clean,
        })
    }

    /// The trained target network.
    pub fn target(&self) -> &Network {
        self.detector.network()
    }

    /// The malware batch attacks are launched against: the first
    /// `min(attack_samples, available)` test-malware rows.
    pub fn attack_batch(&self) -> Matrix {
        let n = self.scale.attack_samples.min(self.x_test_malware.rows());
        let idx: Vec<usize> = (0..n).collect();
        self.x_test_malware.select_rows(&idx)
    }

    /// A clean batch of comparable size (for Figure 5 distances and
    /// squeezer calibration).
    pub fn clean_batch(&self) -> Matrix {
        let n = self.scale.attack_samples.min(self.x_test_clean.rows());
        let idx: Vec<usize> = (0..n).collect();
        self.x_test_clean.select_rows(&idx)
    }

    /// Target accuracy on the full test split.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on shape mismatch (cannot occur for a
    /// well-built context).
    pub fn target_test_accuracy(&self) -> Result<f64, NnError> {
        let logits = self.target().logits(&self.x_test)?;
        maleva_nn::loss::accuracy(&logits, &self.y_test)
    }

    /// ROC AUC of the target's malware score over the full test split.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on shape mismatch or non-finite scores (a
    /// diverged model producing NaN probabilities).
    pub fn target_auc(&self) -> Result<Option<f64>, NnError> {
        let p = self.target().predict_proba(&self.x_test)?;
        let scores: Vec<f64> = (0..p.rows()).map(|r| p.get(r, 1)).collect();
        maleva_eval::auc(&scores, &self.y_test).map_err(|e| NnError::InvalidConfig {
            detail: format!("AUC over test scores: {e}"),
        })
    }

    /// Baseline (no-defense) detection rates:
    /// `(malware TPR, clean TNR)` on the test split.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on shape mismatch.
    pub fn baseline_rates(&self) -> Result<(f64, f64), NnError> {
        let tpr = maleva_attack::detection_rate(self.target(), &self.x_test_malware)?;
        let fpr = maleva_attack::detection_rate(self.target(), &self.x_test_clean)?;
        Ok((tpr, 1.0 - fpr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_trains_a_competent_target() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 1).unwrap();
        let acc = ctx.target_test_accuracy().unwrap();
        assert!(acc > 0.8, "test accuracy {acc}");
        let (tpr, tnr) = ctx.baseline_rates().unwrap();
        assert!(tpr > 0.75, "baseline TPR {tpr}");
        assert!(tnr > 0.75, "baseline TNR {tnr}");
        // Neither should be perfect: the world has boundary cases,
        // matching the paper's 0.883 / 0.964.
        assert!(tpr < 1.0 || tnr < 1.0, "suspiciously perfect detector");
    }

    #[test]
    fn context_is_deterministic() {
        let a = ExperimentContext::build(ExperimentScale::tiny(), 2).unwrap();
        let b = ExperimentContext::build(ExperimentScale::tiny(), 2).unwrap();
        assert_eq!(a.x_train, b.x_train);
        assert_eq!(
            a.target().logits(&a.x_test).unwrap(),
            b.target().logits(&b.x_test).unwrap()
        );
    }

    #[test]
    fn attack_batch_respects_scale() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 3).unwrap();
        let batch = ctx.attack_batch();
        assert_eq!(
            batch.rows(),
            ctx.scale.attack_samples.min(ctx.x_test_malware.rows())
        );
        assert_eq!(batch.cols(), 491);
    }

    #[test]
    fn checkpointed_build_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("maleva-ctx-ckpt");
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: an uninterrupted build.
        let reference = ExperimentContext::build(ExperimentScale::tiny(), 6).unwrap();

        // "Interrupted" build: train only a prefix of the epochs, leaving
        // a checkpoint behind, then rebuild with the full budget resuming
        // from it.
        let mut partial_scale = ExperimentScale::tiny();
        partial_scale.target_epochs = 10;
        let plan = CheckpointPlan::new(&dir, 1, true);
        ExperimentContext::build_with_checkpoints(partial_scale, 6, plan.clone()).unwrap();
        let resumed =
            ExperimentContext::build_with_checkpoints(ExperimentScale::tiny(), 6, plan).unwrap();

        assert_eq!(
            reference.target().logits(&reference.x_test).unwrap(),
            resumed.target().logits(&resumed.x_test).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn splits_have_expected_sizes() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 4).unwrap();
        let spec = &ctx.scale.dataset;
        assert_eq!(ctx.x_train.rows(), spec.train_total());
        assert_eq!(ctx.x_test.rows(), spec.test_total());
        assert_eq!(ctx.x_test_malware.rows(), spec.test_malware);
        assert_eq!(ctx.x_test_clean.rows(), spec.test_clean);
    }
}
