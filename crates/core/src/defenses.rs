//! The defense comparison (paper Section III-C, Tables V & VI).
//!
//! Pipeline:
//!
//! 1. craft grey-box adversarial examples (the paper uses the substitute
//!    at θ = 0.1, γ = 0.02) and split them into a training subset (for
//!    adversarial training) and a held-out evaluation subset;
//! 2. evaluate the undefended target and each defense on the three
//!    Table VI slices — Clean Test (TNR), Malware Test (TPR),
//!    AdvExamples (TPR);
//! 3. report the adversarial-training data recipe (Table V).

use maleva_attack::EvasionAttack;
use maleva_defense::{
    evaluate_detector, evaluate_squeezer, AdversarialTraining, DefenseRow, DefensiveDistillation,
    EnsembleDefense, PcaDefense, SqueezeDetector, Squeezer,
};
use maleva_nn::{Network, NnError};
use serde::{Deserialize, Serialize};

use crate::models::{reduced_model, target_model};
use crate::ExperimentContext;

/// Parameters of the defense comparison.
///
/// The paper crafts its defense dataset at θ = 0.1, γ = 0.02 against a
/// production detector that one API call can flip. The simulated detector
/// is several times more robust, so the *default* operating point here is
/// θ = 0.25, γ = 0.05 — chosen so the undefended advex TPR lands near the
/// paper's 0.304 (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// θ used to craft the adversarial examples (paper: 0.1).
    pub theta: f64,
    /// γ used to craft the adversarial examples (paper: 0.02).
    pub gamma: f64,
    /// Distillation temperature (paper: 50).
    pub distill_temperature: f64,
    /// PCA components (paper: K = 19).
    pub pca_k: usize,
    /// Feature-squeezing false-positive budget used for threshold
    /// calibration.
    pub squeeze_fpr: f64,
    /// Fraction of crafted advex that goes into the adversarial-training
    /// set (the rest is held out for evaluation).
    pub advex_train_fraction: f64,
    /// Craft high-confidence adversarial examples (exhaust the feature
    /// budget) — recommended, since grey-box advex must actually evade
    /// for the defense comparison to be meaningful.
    pub high_confidence: bool,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            theta: 0.25,
            gamma: 0.05,
            distill_temperature: 50.0,
            pca_k: 19,
            squeeze_fpr: 0.05,
            advex_train_fraction: 0.5,
            high_confidence: true,
        }
    }
}

/// Everything the Table V / Table VI reproduction prints.
#[derive(Debug, Clone)]
pub struct DefenseComparison {
    /// Table VI rows for every defense, in the paper's order.
    pub rows: Vec<DefenseRow>,
    /// Table V: the augmented adversarial-training set composition.
    pub advtrain_summary: maleva_defense::AugmentedSetSummary,
    /// Number of adversarial examples held out for evaluation.
    pub advex_eval: usize,
    /// Number of adversarial examples used for adversarial training.
    pub advex_train: usize,
    /// The crafting parameters used.
    pub config: DefenseConfig,
}

impl DefenseComparison {
    /// Renders the comparison as the Table VI text table.
    pub fn render_table_vi(&self) -> String {
        maleva_defense::render_table_vi(&self.rows)
    }

    /// Renders the Table V style summary.
    pub fn render_table_v(&self) -> String {
        let s = &self.advtrain_summary;
        let mut out = String::new();
        out.push_str("Dataset        Number of Samples\n");
        out.push_str(&format!(
            "Training Set   {} ({} clean, {} malware and advEx)\n",
            s.total(),
            s.clean,
            s.malware + s.adversarial
        ));
        out.push_str(&format!(
            "Eval AdvEx     {} (held-out adversarial examples)\n",
            self.advex_eval
        ));
        out
    }

    /// Looks up a `(defense, dataset)` row.
    pub fn row(&self, defense: &str, dataset: &str) -> Option<&DefenseRow> {
        self.rows
            .iter()
            .find(|r| r.defense == defense && r.dataset == dataset)
    }
}

/// Runs the full Table VI comparison: No Defense, AdvTraining,
/// Distillation, FeaSqueezing, DimReduct, plus the paper-suggested
/// AdvTraining+DimReduct ensemble.
///
/// Adversarial examples are crafted on `substitute` (grey-box, like the
/// paper's defense dataset); pass the target itself for a white-box
/// variant.
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures.
pub fn compare_defenses(
    ctx: &ExperimentContext,
    substitute: &Network,
    config: &DefenseConfig,
) -> Result<DefenseComparison, NnError> {
    let malware = ctx.attack_batch();
    let clean = ctx.clean_batch();

    // 1. Craft the adversarial pool and split train/eval.
    let mut jsma = maleva_attack::Jsma::new(config.theta, config.gamma);
    if config.high_confidence {
        jsma = jsma.with_high_confidence();
    }
    let (advex_all, _) = jsma.craft_batch(substitute, &malware)?;
    let n_train = ((advex_all.rows() as f64) * config.advex_train_fraction) as usize;
    let train_idx: Vec<usize> = (0..n_train).collect();
    let eval_idx: Vec<usize> = (n_train..advex_all.rows()).collect();
    let advex_train = advex_all.select_rows(&train_idx);
    let advex_eval = advex_all.select_rows(&eval_idx);

    let mut rows: Vec<DefenseRow> = Vec::new();

    // 2a. No Defense.
    rows.extend(evaluate_detector(
        "No Defense",
        ctx.target(),
        &clean,
        &malware,
        &advex_eval,
    )?);

    // 2b. Adversarial training (fresh target-architecture model).
    let seed = ctx.seed;
    let advtrain = AdversarialTraining::new(ctx.scale.substitute_trainer(seed ^ 0xAD));
    let fresh = target_model(ctx.x_train.cols(), ctx.scale.model_scale, seed ^ 0xAD1)?;
    let (defended, advtrain_summary) =
        advtrain.defend(fresh, &ctx.x_train, &ctx.y_train, &advex_train)?;
    rows.extend(evaluate_detector(
        "AdvTraining",
        &defended,
        &clean,
        &malware,
        &advex_eval,
    )?);

    // 2c. Defensive distillation (teacher + student, both target arch).
    let distill = DefensiveDistillation::new(
        config.distill_temperature,
        ctx.scale.substitute_trainer(seed ^ 0xD1),
        ctx.scale.substitute_trainer(seed ^ 0xD2),
    );
    let teacher = target_model(ctx.x_train.cols(), ctx.scale.model_scale, seed ^ 0xD3)?;
    let student_fresh = target_model(ctx.x_train.cols(), ctx.scale.model_scale, seed ^ 0xD4)?;
    let (student, _) = distill.defend(teacher, student_fresh, &ctx.x_train, &ctx.y_train)?;
    rows.extend(evaluate_detector(
        "Distillation",
        &student,
        &clean,
        &malware,
        &advex_eval,
    )?);

    // 2d. Feature squeezing on the (undefended) target.
    let legit = ctx.x_train.clone();
    // TrimLow just above θ erases the attack's low-mass feature
    // additions while legitimate heavy counts survive.
    let squeezer = SqueezeDetector::calibrate(
        ctx.target().clone(),
        Squeezer::TrimLow {
            threshold: config.theta + 0.01,
        },
        &legit,
        config.squeeze_fpr,
    )?;
    rows.extend(evaluate_squeezer(
        "FeaSqueezing",
        &squeezer,
        &clean,
        &malware,
        &advex_eval,
    )?);

    // 2e. PCA dimensionality reduction (K = 19).
    let reduced = reduced_model(config.pca_k, ctx.scale.model_scale, seed ^ 0x9C)?;
    let pca = PcaDefense::fit(
        config.pca_k,
        reduced,
        &ctx.x_train,
        &ctx.y_train,
        ctx.scale.substitute_trainer(seed ^ 0x91),
    )?;
    rows.extend(evaluate_detector(
        "DimReduct",
        &pca,
        &clean,
        &malware,
        &advex_eval,
    )?);

    // 2f. The paper-suggested ensemble.
    let reduced2 = reduced_model(config.pca_k, ctx.scale.model_scale, seed ^ 0xE1)?;
    let ensemble = EnsembleDefense::fit(
        config.pca_k,
        reduced2,
        &ctx.x_train,
        &ctx.y_train,
        &advex_train,
        ctx.scale.substitute_trainer(seed ^ 0xE2),
    )?;
    rows.extend(evaluate_detector(
        "AdvTrain+DimReduct",
        &ensemble,
        &clean,
        &malware,
        &advex_eval,
    )?);

    Ok(DefenseComparison {
        rows,
        advtrain_summary,
        advex_eval: advex_eval.rows(),
        advex_train: advex_train.rows(),
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greybox::train_substitute;
    use crate::{ExperimentContext, ExperimentScale};

    fn comparison() -> DefenseComparison {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 51).unwrap();
        let substitute = train_substitute(&ctx, 51).unwrap();
        let config = DefenseConfig {
            theta: 0.5,
            gamma: 0.1,
            distill_temperature: 20.0,
            pca_k: 10,
            squeeze_fpr: 0.05,
            advex_train_fraction: 0.5,
            high_confidence: true,
        };
        compare_defenses(&ctx, &substitute, &config).unwrap()
    }

    #[test]
    fn all_defenses_report_three_slices() {
        let c = comparison();
        for name in [
            "No Defense",
            "AdvTraining",
            "Distillation",
            "FeaSqueezing",
            "DimReduct",
            "AdvTrain+DimReduct",
        ] {
            for slice in ["Clean Test", "Malware Test", "AdvExamples"] {
                assert!(
                    c.row(name, slice).is_some(),
                    "missing row ({name}, {slice})"
                );
            }
        }
        assert_eq!(c.rows.len(), 18);
    }

    #[test]
    fn adversarial_training_beats_no_defense_on_advex() {
        let c = comparison();
        let base = c.row("No Defense", "AdvExamples").unwrap().tpr.unwrap();
        let adv = c.row("AdvTraining", "AdvExamples").unwrap().tpr.unwrap();
        assert!(
            adv > base,
            "adversarial training must raise advex TPR: {base} -> {adv}"
        );
        // And keep clean accuracy (the paper's headline property).
        let tnr = c.row("AdvTraining", "Clean Test").unwrap().tnr.unwrap();
        assert!(tnr > 0.8, "AdvTraining clean TNR {tnr}");
    }

    #[test]
    fn tables_render() {
        let c = comparison();
        let t6 = c.render_table_vi();
        assert!(t6.contains("AdvTraining"));
        assert!(t6.contains("DimReduct"));
        let t5 = c.render_table_v();
        assert!(t5.contains("Training Set"));
        assert_eq!(c.advex_train + c.advex_eval, 40);
    }
}

/// Report of the adaptive-attacker experiment (the paper's closing
/// challenge: "It is an open challenge to design a defense against a
/// powerful adaptive attack").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSqueezeReport {
    /// Squeeze-detector flag rate on *naive* adversarial examples.
    pub naive_flag_rate: f64,
    /// Squeeze-detector flag rate on *squeeze-aware* adversarial
    /// examples.
    pub adaptive_flag_rate: f64,
    /// Classifier detection rate on the naive advex.
    pub naive_detection: f64,
    /// Classifier detection rate on the adaptive advex.
    pub adaptive_detection: f64,
    /// Squeeze-detector false-alarm rate on clean samples (context).
    pub clean_flag_rate: f64,
}

/// Runs the adaptive attacker against the feature-squeezing defense:
/// same JSMA budget, but every planted perturbation is raised above the
/// squeezer's trim threshold so squeezing cannot revert it. The paper's
/// prediction — an adaptive attacker blinds the detector — is what this
/// measures.
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures.
pub fn adaptive_squeeze_experiment(
    ctx: &ExperimentContext,
    substitute: &Network,
    config: &DefenseConfig,
) -> Result<AdaptiveSqueezeReport, NnError> {
    use maleva_attack::{detection_rate, Jsma, SqueezeAwareJsma};

    let malware = ctx.attack_batch();
    let clean = ctx.clean_batch();
    let trim = config.theta + 0.01;
    let detector = SqueezeDetector::calibrate(
        ctx.target().clone(),
        Squeezer::TrimLow { threshold: trim },
        &ctx.x_train,
        config.squeeze_fpr,
    )?;

    let mut naive = Jsma::new(config.theta, config.gamma);
    if config.high_confidence {
        naive = naive.with_high_confidence();
    }
    let adaptive = SqueezeAwareJsma::new(naive.clone(), trim, 0.02);

    let (naive_adv, _) = naive.craft_batch(substitute, &malware)?;
    let (adaptive_adv, _) = adaptive.craft_batch(substitute, &malware)?;

    let rate =
        |flags: &[bool]| flags.iter().filter(|&&f| f).count() as f64 / flags.len().max(1) as f64;
    Ok(AdaptiveSqueezeReport {
        naive_flag_rate: rate(&detector.flag_adversarial(&naive_adv)?),
        adaptive_flag_rate: rate(&detector.flag_adversarial(&adaptive_adv)?),
        naive_detection: detection_rate(ctx.target(), &naive_adv)?,
        adaptive_detection: detection_rate(ctx.target(), &adaptive_adv)?,
        clean_flag_rate: rate(&detector.flag_adversarial(&clean)?),
    })
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::greybox::train_substitute;
    use crate::{ExperimentContext, ExperimentScale};

    #[test]
    fn adaptive_attacker_blinds_the_squeezer() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 92).unwrap();
        let substitute = train_substitute(&ctx, 92).unwrap();
        let config = DefenseConfig {
            theta: 0.5,
            gamma: 0.1,
            high_confidence: true,
            ..DefenseConfig::default()
        };
        let report = adaptive_squeeze_experiment(&ctx, &substitute, &config).unwrap();
        // The adaptive attacker must be flagged at most as often as the
        // naive one (typically collapsing toward the clean false-alarm
        // rate), while still evading the classifier comparably.
        assert!(
            report.adaptive_flag_rate <= report.naive_flag_rate + 0.05,
            "adaptive flagged more than naive: {report:?}"
        );
        assert!(
            report.adaptive_detection <= report.naive_detection + 0.2,
            "adaptive attack lost too much classifier evasion: {report:?}"
        );
        for r in [
            report.naive_flag_rate,
            report.adaptive_flag_rate,
            report.clean_flag_rate,
        ] {
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
