//! OS distribution-shift experiment (extension).
//!
//! The paper's corpus deliberately mixes API logs from Win7, WinXP, Win8
//! and Win10 (Section II-A: "The mixed data … were created"). This
//! experiment shows *why*: a detector trained on logs from older OS
//! versions degrades on newer-OS logs, because OS-specific runtime APIs
//! shift the feature distribution. Training on the mixed corpus closes
//! the gap.

use maleva_apisim::{Dataset, World, WorldConfig};
use maleva_features::FeaturePipeline;
use maleva_nn::{NnError, Trainer};
use serde::{Deserialize, Serialize};

use crate::models::target_model;
use crate::{ExperimentContext, ExperimentScale};

/// Results of the OS-shift experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsShiftReport {
    /// Accuracy of the legacy-OS-trained detector on legacy-OS test data.
    pub legacy_on_legacy: f64,
    /// Accuracy of the legacy-OS-trained detector on modern-OS test data
    /// (the shifted condition).
    pub legacy_on_modern: f64,
    /// Accuracy of the mixed-OS-trained detector on modern-OS test data
    /// (the paper's mitigation).
    pub mixed_on_modern: f64,
}

impl OsShiftReport {
    /// The accuracy lost to the OS shift.
    pub fn shift_penalty(&self) -> f64 {
        self.legacy_on_legacy - self.legacy_on_modern
    }

    /// How much of the penalty mixed training recovers.
    pub fn mitigation_gain(&self) -> f64 {
        self.mixed_on_modern - self.legacy_on_modern
    }
}

/// Runs the experiment at the given scale: three worlds sharing the same
/// behaviour profiles but different OS mixes (legacy = XP/7, modern =
/// 8/10, mixed = the default), one detector per training condition.
///
/// # Errors
///
/// Returns [`NnError`] on training failures.
pub fn os_shift_experiment(scale: &ExperimentScale, seed: u64) -> Result<OsShiftReport, NnError> {
    let legacy_world = World::new(WorldConfig {
        os_mix: [0.4, 0.6, 0.0, 0.0],
        ..WorldConfig::default()
    });
    let modern_world = World::new(WorldConfig {
        os_mix: [0.0, 0.0, 0.3, 0.7],
        ..WorldConfig::default()
    });
    let mixed_world = World::new(WorldConfig::default());

    let legacy_data = legacy_world.build_dataset(&scale.dataset, seed);
    let modern_data = modern_world.build_dataset(&scale.dataset, seed ^ 0xD1F7);
    let mixed_data = mixed_world.build_dataset(&scale.dataset, seed ^ 0xD1F8);

    let accuracy = |train: &Dataset,
                    test: &[maleva_apisim::Program],
                    model_seed: u64|
     -> Result<f64, NnError> {
        let pipeline = FeaturePipeline::fit(scale.transform, train.train());
        let x = pipeline.transform_batch(train.train());
        let y = Dataset::labels(train.train());
        let mut net = target_model(pipeline.dim(), scale.model_scale, model_seed)?;
        Trainer::new(scale.target_trainer(seed)).fit(&mut net, &x, &y)?;
        let xt = pipeline.transform_batch(test);
        let yt = Dataset::labels(test);
        maleva_nn::loss::accuracy(&net.logits(&xt)?, &yt)
    };

    Ok(OsShiftReport {
        legacy_on_legacy: accuracy(&legacy_data, legacy_data.test(), seed ^ 0xA)?,
        legacy_on_modern: accuracy(&legacy_data, modern_data.test(), seed ^ 0xA)?,
        mixed_on_modern: accuracy(&mixed_data, modern_data.test(), seed ^ 0xB)?,
    })
}

/// Convenience: run at a context's scale.
///
/// # Errors
///
/// Returns [`NnError`] on training failures.
pub fn os_shift_for(ctx: &ExperimentContext) -> Result<OsShiftReport, NnError> {
    os_shift_experiment(&ctx.scale, ctx.seed ^ 0x05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting_is_consistent() {
        let r = OsShiftReport {
            legacy_on_legacy: 0.9,
            legacy_on_modern: 0.8,
            mixed_on_modern: 0.88,
        };
        assert!((r.shift_penalty() - 0.1).abs() < 1e-12);
        assert!((r.mitigation_gain() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn experiment_runs_and_accuracies_are_sane() {
        let report = os_shift_experiment(&ExperimentScale::tiny(), 7).unwrap();
        for acc in [
            report.legacy_on_legacy,
            report.legacy_on_modern,
            report.mixed_on_modern,
        ] {
            assert!(
                (0.0..=1.0).contains(&acc),
                "accuracy out of range: {report:?}"
            );
            assert!(acc > 0.5, "detector should beat chance: {report:?}");
        }
        // Mixed training should be at least competitive under shift.
        assert!(
            report.mixed_on_modern >= report.legacy_on_modern - 0.1,
            "mixed-OS training should not be much worse under shift: {report:?}"
        );
    }
}
