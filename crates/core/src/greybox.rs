//! The grey-box attack experiments (paper Section III-B, Figure 4).
//!
//! The attacker knows the 491 API features but not the target's training
//! data or model. Three experiments:
//!
//! 1. **Exact features** — train the Table IV substitute on the
//!    attacker's own corpus (same feature pipeline), craft with JSMA,
//!    transfer to the target (Figure 4a/4b).
//! 2. **Binary features** — the attacker knows the API names but not the
//!    count transformation; their substitute uses presence/absence
//!    features. Adversarial *programs* (API insertions) are rebuilt from
//!    the binary perturbation and re-scanned by the real target pipeline
//!    (Figure 4c).
//! 3. **Live test** — see [`live`](crate::live).

use maleva_apisim::{Class, Dataset, Program};
use maleva_attack::sweep::{security_sweep_with, SweepAxis};
use maleva_attack::{detection_rate, EvasionAttack, Jsma};
use maleva_eval::SecurityCurve;
use maleva_features::{CountTransform, FeaturePipeline};
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, Trainer};
use serde::{Deserialize, Serialize};

use crate::models::substitute_model;
use crate::ExperimentContext;

/// Trains the attacker's substitute model (Table IV architecture) on the
/// attacker's *own* balanced corpus — same size as the defender's
/// training set but sampled independently (the attacker has no access to
/// the defender's data), featurized with the defender's pipeline (the
/// grey-box assumption: features are known).
///
/// # Errors
///
/// Returns [`NnError`] on training failures.
pub fn train_substitute(ctx: &ExperimentContext, seed: u64) -> Result<Network, NnError> {
    let spec = &ctx.scale.dataset;
    let mut rng = maleva_apisim::rng(seed ^ 0x5AB5_717E);
    let programs = ctx
        .world
        .sample_batch(spec.train_clean, spec.train_malware, &mut rng);
    let x = ctx.detector.features().transform_batch(&programs);
    let y = Dataset::labels(&programs);
    let mut net = substitute_model(x.cols(), ctx.scale.model_scale, seed ^ 0x5B5B)?;
    Trainer::new(ctx.scale.substitute_trainer(seed)).fit(&mut net, &x, &y)?;
    Ok(net)
}

/// Figure 4(a): γ sweep at θ = 0.1, crafted on the substitute, scored by
/// both substitute and target.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn gamma_transfer_curve(
    ctx: &ExperimentContext,
    substitute: &Network,
    samples: usize,
) -> Result<SecurityCurve, NnError> {
    transfer_curve(ctx, substitute, samples, SweepAxis::paper_gamma())
}

/// Figure 4(b): θ sweep at γ = 0.005 (two features), crafted on the
/// substitute, scored by both models.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn theta_transfer_curve(
    ctx: &ExperimentContext,
    substitute: &Network,
    samples: usize,
) -> Result<SecurityCurve, NnError> {
    let axis = SweepAxis::Theta {
        gamma: 0.005,
        values: (0..=12).map(|i| i as f64 * 0.0125).collect(),
    };
    transfer_curve(ctx, substitute, samples, axis)
}

/// Grey-box sweep over an arbitrary axis.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn transfer_curve(
    ctx: &ExperimentContext,
    substitute: &Network,
    samples: usize,
    axis: SweepAxis,
) -> Result<SecurityCurve, NnError> {
    let batch = capped(ctx, samples);
    // Grey-box attackers craft high-confidence adversarial examples
    // (exhaust the feature budget) to maximize transfer.
    security_sweep_with(
        &Jsma::new(1.0, 1.0).with_high_confidence(),
        substitute,
        &[("substitute", substitute), ("target", ctx.target())],
        &batch,
        &axis,
        None,
    )
}

/// Figure 5 (as published): L2 distances of *grey-box* adversarial
/// examples (crafted on the substitute with the original features).
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn l2_curves(
    ctx: &ExperimentContext,
    substitute: &Network,
    samples: usize,
    axis: SweepAxis,
) -> Result<SecurityCurve, NnError> {
    let malware = capped(ctx, samples);
    let clean = ctx.clean_batch();
    maleva_attack::perturbation::l2_sweep(
        substitute,
        &malware,
        &clean,
        &axis,
        ctx.scale.l2_max_pairs,
    )
}

/// Transfer statistics at one operating point (the paper reports θ = 0.1,
/// γ = 0.005: target detection 0.147, transfer rate 0.853).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// θ used.
    pub theta: f64,
    /// γ used.
    pub gamma: f64,
    /// Detection rate of the *substitute* on the adversarial batch.
    pub substitute_detection: f64,
    /// Detection rate of the *target* on the adversarial batch.
    pub target_detection: f64,
    /// `1 − target_detection`.
    pub transfer_rate: f64,
    /// Number of samples attacked.
    pub attacked: usize,
}

/// Evaluates one grey-box `(θ, γ)` operating point.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
///
/// # Panics
///
/// Panics if `theta <= 0` or `gamma` is outside `[0, 1]`.
pub fn operating_point(
    ctx: &ExperimentContext,
    substitute: &Network,
    samples: usize,
    theta: f64,
    gamma: f64,
) -> Result<TransferReport, NnError> {
    let batch = capped(ctx, samples);
    let (adv, _) = Jsma::new(theta, gamma).craft_batch(substitute, &batch)?;
    let substitute_detection = detection_rate(substitute, &adv)?;
    let target_detection = detection_rate(ctx.target(), &adv)?;
    Ok(TransferReport {
        theta,
        gamma,
        substitute_detection,
        target_detection,
        transfer_rate: 1.0 - target_detection,
        attacked: batch.rows(),
    })
}

/// Result of the binary-features experiment (Figure 4c): the attacker's
/// substitute sees presence/absence features; adversarial *programs* are
/// rebuilt by inserting the chosen API calls and re-scanned end-to-end by
/// the target pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryFeatureReport {
    /// Detection-rate curve: `jsma:substitute` (binary feature space) and
    /// `jsma:target` (end-to-end rescan of modified programs) per γ.
    pub curve: SecurityCurve,
    /// Target detection rate at the strongest sweep point.
    pub final_target_detection: f64,
    /// Transfer rate at the strongest sweep point (paper: 0.3049 — the
    /// attack largely fails without feature knowledge).
    pub final_transfer_rate: f64,
}

/// Runs the binary-features grey-box experiment.
///
/// The attacker: (1) builds their own corpus and a **binary** feature
/// pipeline over the known API names; (2) trains the Table IV substitute
/// on it; (3) for each sweep γ, JSMA-attacks the binary features of the
/// defender's test malware; (4) converts each newly-set feature into an
/// actual API-call insertion in the program source; (5) the defender's
/// real pipeline rescans the modified program's log.
///
/// # Errors
///
/// Returns [`NnError`] on training or shape failures.
pub fn binary_feature_experiment(
    ctx: &ExperimentContext,
    seed: u64,
    samples: usize,
    gammas: &[f64],
) -> Result<BinaryFeatureReport, NnError> {
    // Attacker corpus and binary pipeline.
    let spec = &ctx.scale.dataset;
    let mut rng = maleva_apisim::rng(seed ^ 0xB1AA);
    let corpus = ctx
        .world
        .sample_batch(spec.train_clean, spec.train_malware, &mut rng);
    let bin_pipeline = FeaturePipeline::fit(CountTransform::Binary, &corpus);
    let xb = bin_pipeline.transform_batch(&corpus);
    let yb = Dataset::labels(&corpus);
    let mut substitute = substitute_model(xb.cols(), ctx.scale.model_scale, seed ^ 0xB1B1)?;
    Trainer::new(ctx.scale.substitute_trainer(seed ^ 1)).fit(&mut substitute, &xb, &yb)?;

    // The defender's test malware *programs* (the attack edits source).
    let mal_programs: Vec<&Program> = ctx
        .dataset
        .test()
        .iter()
        .filter(|p| p.class() == Class::Malware)
        .take(samples)
        .collect();

    let theta = 1.0; // binary features: an added API flips 0 → 1
    let mut sub_series = Vec::with_capacity(gammas.len());
    let mut tgt_series = Vec::with_capacity(gammas.len());
    for &gamma in gammas {
        let mut sub_hits = 0usize;
        let mut tgt_hits = 0usize;
        for prog in &mal_programs {
            let bin_feats = bin_pipeline.transform_counts(prog.counts());
            let (adv_feats, evaded) = if gamma > 0.0 {
                let outcome = Jsma::new(theta, gamma).craft(&substitute, &bin_feats)?;
                (outcome.adversarial, outcome.evaded)
            } else {
                let m = Matrix::row_vector(&bin_feats);
                let evaded = substitute.predict(&m)?[0] == 0;
                (bin_feats.clone(), evaded)
            };
            if !evaded {
                sub_hits += 1;
            }
            // Rebuild the program: every feature newly set to 1 becomes an
            // inserted API call.
            let mut modified = (*prog).clone();
            for (api, (&b, &a)) in bin_feats.iter().zip(adv_feats.iter()).enumerate() {
                if b == 0.0 && a > 0.0 {
                    modified.insert_api_calls(api, 1);
                }
            }
            if ctx.detector.is_malware(&modified)? {
                tgt_hits += 1;
            }
        }
        let n = mal_programs.len().max(1) as f64;
        sub_series.push(sub_hits as f64 / n);
        tgt_series.push(tgt_hits as f64 / n);
    }

    let mut curve = SecurityCurve::new("gamma", gammas.to_vec());
    curve.push_series("jsma:substitute", sub_series);
    curve.push_series("jsma:target", tgt_series.clone());
    let final_target_detection = *tgt_series.last().expect("non-empty gammas");
    Ok(BinaryFeatureReport {
        curve,
        final_target_detection,
        final_transfer_rate: 1.0 - final_target_detection,
    })
}

fn capped(ctx: &ExperimentContext, samples: usize) -> Matrix {
    let full = ctx.attack_batch();
    let n = samples.min(full.rows()).max(1);
    let idx: Vec<usize> = (0..n).collect();
    full.select_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentContext, ExperimentScale};

    fn ctx() -> ExperimentContext {
        ExperimentContext::build(ExperimentScale::tiny(), 21).unwrap()
    }

    #[test]
    fn substitute_learns_the_task() {
        let ctx = ctx();
        let substitute = train_substitute(&ctx, 77).unwrap();
        let dr = detection_rate(&substitute, &ctx.x_test_malware).unwrap();
        assert!(dr > 0.75, "substitute malware detection {dr}");
        let fp = detection_rate(&substitute, &ctx.x_test_clean).unwrap();
        assert!(fp < 0.25, "substitute clean false positives {fp}");
    }

    #[test]
    fn greybox_transfer_weakens_the_target() {
        let ctx = ctx();
        let substitute = train_substitute(&ctx, 77).unwrap();
        // Baseline on the *same* capped batch the attack uses.
        let full = ctx.attack_batch();
        let idx: Vec<usize> = (0..30.min(full.rows())).collect();
        let batch = full.select_rows(&idx);
        let baseline = detection_rate(ctx.target(), &batch).unwrap();
        // Tiny-scale models are far more robust than the paper's target,
        // so probe at a strong operating point; the quantitative
        // operating points are exercised at quick scale by the repro
        // binary.
        let report = operating_point(&ctx, &substitute, 30, 0.8, 0.2).unwrap();
        assert!(
            report.target_detection < baseline,
            "transfer should lower target detection: {} vs baseline {}",
            report.target_detection,
            baseline
        );
        assert!((report.transfer_rate + report.target_detection - 1.0).abs() < 1e-12);
        // The attack is stronger on the model it was crafted against.
        assert!(report.substitute_detection <= report.target_detection + 0.25);
    }

    #[test]
    fn transfer_curve_has_both_series() {
        let ctx = ctx();
        let substitute = train_substitute(&ctx, 79).unwrap();
        let axis = SweepAxis::Gamma {
            theta: 0.4,
            values: vec![0.0, 0.05],
        };
        let curve = transfer_curve(&ctx, &substitute, 20, axis).unwrap();
        assert!(curve.series_named("jsma:substitute").is_some());
        assert!(curve.series_named("jsma:target").is_some());
    }

    #[test]
    fn binary_experiment_largely_fails_against_the_target() {
        let ctx = ctx();
        let report = binary_feature_experiment(&ctx, 80, 25, &[0.0, 0.05, 0.1]).unwrap();
        // The paper's Figure 4(c) shape: the substitute's own detection
        // rate collapses as gamma grows...
        let sub = report.curve.series_named("jsma:substitute").unwrap();
        assert!(
            *sub.values.last().unwrap() <= sub.values[0] + 1e-9,
            "substitute curve should decline: {:?}",
            sub.values
        );
        // ...but the target mostly holds (detection stays well above the
        // white-box collapse; paper: 0.6951).
        assert!(
            report.final_target_detection > 0.5,
            "target should largely resist the binary-features attack: {}",
            report.final_target_detection
        );
        assert!((report.final_transfer_rate + report.final_target_detection - 1.0).abs() < 1e-12);
    }
}

/// Trains `n` independent substitutes (different corpora and weight
/// seeds) for the ensemble transfer attack.
///
/// # Errors
///
/// Returns [`NnError`] on training failures.
pub fn train_substitute_ensemble(
    ctx: &ExperimentContext,
    base_seed: u64,
    n: usize,
) -> Result<Vec<Network>, NnError> {
    (0..n)
        .map(|i| train_substitute(ctx, base_seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// Transfer report for the ensemble attack: craft against `members`
/// jointly (mean saliency, majority vote) and score the target.
///
/// This is the transferability booster from the literature the paper
/// cites; compare with [`operating_point`] (single substitute) to see
/// how much averaging substitute gradients buys.
///
/// # Errors
///
/// Returns [`NnError`] on shape mismatches.
pub fn ensemble_operating_point(
    ctx: &ExperimentContext,
    members: &[Network],
    samples: usize,
    theta: f64,
    gamma: f64,
) -> Result<TransferReport, NnError> {
    let batch = capped(ctx, samples);
    let refs: Vec<&Network> = members.iter().collect();
    let attack = maleva_attack::EnsembleJsma::new(theta, gamma);
    let (adv, _) = attack.craft_batch(&refs, &batch)?;
    let substitute_detection = detection_rate(refs[0], &adv)?;
    let target_detection = detection_rate(ctx.target(), &adv)?;
    Ok(TransferReport {
        theta,
        gamma,
        substitute_detection,
        target_detection,
        transfer_rate: 1.0 - target_detection,
        attacked: batch.rows(),
    })
}

#[cfg(test)]
mod ensemble_tests {
    use super::*;
    use crate::{ExperimentContext, ExperimentScale};

    #[test]
    fn ensemble_transfer_is_at_least_as_strong_as_single() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 91).unwrap();
        let members = train_substitute_ensemble(&ctx, 91, 3).unwrap();
        let single = operating_point(&ctx, &members[0], 30, 0.6, 0.15).unwrap();
        let joint = ensemble_operating_point(&ctx, &members, 30, 0.6, 0.15).unwrap();
        assert!(
            joint.target_detection <= single.target_detection + 0.15,
            "ensemble ({}) should not be much weaker than single ({})",
            joint.target_detection,
            single.target_detection
        );
        assert_eq!(joint.attacked, 30);
    }
}
