//! `maleva-core` — the end-to-end framework reproducing *"Malware Evasion
//! Attack and Defense"* (Huang et al., DSN 2019).
//!
//! This crate ties the substrates together into the paper's experiments:
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Threat models (white/grey/black box, §II-B) | [`ThreatModel`] |
//! | Detector pipeline (log → features → DNN) | [`DetectorPipeline`] |
//! | Target & substitute architectures (Table IV) | [`models`] |
//! | Shared experiment state (Table I data, trained target) | [`ExperimentContext`] |
//! | White-box attack, Figure 3 | [`whitebox`] |
//! | Grey-box attacks, Figure 4 + transfer rates | [`greybox`] |
//! | L2 geometry, Figure 5 | [`whitebox::l2_curves`] |
//! | Live grey-box source-edit test (§III-B exp. 3) | [`live`] |
//! | Black-box framework, Figure 2 (paper's future work) | [`blackbox`] |
//! | Defense comparison, Tables V & VI | [`defenses`] |
//!
//! # Quickstart
//!
//! ```no_run
//! use maleva_core::{ExperimentContext, ExperimentScale};
//!
//! # fn main() -> Result<(), maleva_nn::NnError> {
//! // Build the world, the Table-I-shaped dataset, and a trained target.
//! let ctx = ExperimentContext::build(ExperimentScale::quick(), 42)?;
//! println!("target test accuracy: {:.3}", ctx.target_test_accuracy()?);
//!
//! // Figure 3(a): white-box security evaluation curve.
//! let curve = maleva_core::whitebox::gamma_curve(&ctx, 200)?;
//! println!("{}", curve.render());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackbox;
mod context;
pub mod defenses;
pub mod drift;
pub mod greybox;
pub mod live;
pub mod models;
mod pipeline;
mod threat;
pub mod whitebox;

pub use context::{CheckpointPlan, ExperimentContext, ExperimentScale};
pub use pipeline::DetectorPipeline;
pub use threat::ThreatModel;
