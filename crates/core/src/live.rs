//! The live grey-box test (paper Section III-B, third experiment).
//!
//! The paper's most striking result: a security researcher adds **one
//! single API call** to the malware's source code multiple times; the DNN
//! engine's confidence collapses from 98.43% (0 insertions) through
//! 88.88% (1 insertion) to 0% (8 insertions). Here the full loop is
//! mechanized: pick a confidently-detected malware program, use the
//! substitute model to choose the API, insert it `0..=n` times in the
//! "source", re-render the log, and re-scan with the deployed target
//! pipeline each time.

use maleva_apisim::{Class, Program};
use maleva_nn::{Network, NnError};
use serde::{Deserialize, Serialize};

use crate::ExperimentContext;

/// Outcome of a live grey-box run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveTestReport {
    /// Name of the single API the attacker chose to insert.
    pub api_name: String,
    /// Vocabulary index of that API.
    pub api_index: usize,
    /// Target confidence (malware probability) after `i` insertions, for
    /// `i = 0 ..= max_insertions`.
    pub confidences: Vec<f64>,
    /// Number of insertions after which the target verdict flipped to
    /// clean, if it did.
    pub evaded_at: Option<usize>,
}

impl LiveTestReport {
    /// Initial confidence (no insertions).
    pub fn initial_confidence(&self) -> f64 {
        self.confidences[0]
    }

    /// Final confidence (all insertions applied).
    pub fn final_confidence(&self) -> f64 {
        *self.confidences.last().expect("non-empty")
    }

    /// Renders the confidence trajectory as a text table.
    pub fn render(&self) -> String {
        let mut table = maleva_eval::TextTable::new().header(["insertions", "confidence"]);
        for (i, c) in self.confidences.iter().enumerate() {
            table.row([format!("{i}"), format!("{:.2}%", c * 100.0)]);
        }
        format!("inserted API: {}\n{}", self.api_name, table.render())
    }
}

/// Runs the live test on the most confidently detected test-malware
/// program, choosing the inserted API with the substitute model's
/// saliency (the attacker's grey-box knowledge).
///
/// # Errors
///
/// Returns [`NnError`] on shape mismatches.
///
/// # Panics
///
/// Panics if the test split contains no malware.
pub fn live_greybox_test(
    ctx: &ExperimentContext,
    substitute: &Network,
    max_insertions: u32,
) -> Result<LiveTestReport, NnError> {
    // "We were provided a source file and an associated log file": the
    // paper demonstrates one successful instance. A real attacker
    // iterates over samples they can plausibly flip, so rank detected
    // malware by proximity to the decision boundary and report the run
    // with the largest confidence collapse.
    let mut detected: Vec<(&Program, f64)> = Vec::new();
    for prog in ctx
        .dataset
        .test()
        .iter()
        .filter(|p| p.class() == Class::Malware)
    {
        let conf = ctx.detector.scan(prog)?;
        if conf >= 0.5 {
            detected.push((prog, conf));
        }
    }
    assert!(!detected.is_empty(), "test split contains detected malware");
    detected.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite confidence"));

    let mut best_report: Option<LiveTestReport> = None;
    for (prog, _) in detected.into_iter().take(10) {
        let report = run_on_program(ctx, substitute, prog, max_insertions)?;
        let evades = report.evaded_at.is_some();
        let drop = report.initial_confidence() - report.final_confidence();
        let better = match &best_report {
            None => true,
            Some(b) => {
                let b_drop = b.initial_confidence() - b.final_confidence();
                (evades && b.evaded_at.is_none())
                    || (evades == b.evaded_at.is_some() && drop > b_drop)
            }
        };
        if better {
            best_report = Some(report);
        }
        if best_report.as_ref().is_some_and(|r| r.evaded_at.is_some()) {
            break; // the paper stops at the first full evasion
        }
    }
    Ok(best_report.expect("at least one candidate was evaluated"))
}

/// Runs the live loop on a specific program.
///
/// # Errors
///
/// Returns [`NnError`] on shape mismatches.
pub fn run_on_program(
    ctx: &ExperimentContext,
    substitute: &Network,
    program: &Program,
    max_insertions: u32,
) -> Result<LiveTestReport, NnError> {
    let api_index = choose_api(ctx, substitute, program)?;
    let api_name = ctx
        .world
        .vocab()
        .name(api_index)
        .expect("index within vocabulary")
        .to_string();

    let mut confidences = Vec::with_capacity(max_insertions as usize + 1);
    let mut evaded_at = None;
    for n in 0..=max_insertions {
        // Edit the source: insert the API n times, rebuild, re-scan.
        let mut modified = program.clone();
        if n > 0 {
            modified.insert_api_calls(api_index, n);
        }
        let confidence = ctx.detector.scan(&modified)?;
        if evaded_at.is_none() && confidence < 0.5 {
            evaded_at = Some(n as usize);
        }
        confidences.push(confidence);
    }
    Ok(LiveTestReport {
        api_name,
        api_index,
        confidences,
        evaded_at,
    })
}

/// The attacker's API choice. The substitute's saliency map shortlists
/// candidate APIs (gradient toward the clean class); the attacker then
/// simulates the full insertion path *on the substitute* and picks the
/// API whose repeated insertion lowers the substitute's malware
/// probability the most. All knowledge used is grey-box legal: the
/// substitute plus the (known) feature pipeline.
fn choose_api(
    ctx: &ExperimentContext,
    substitute: &Network,
    program: &Program,
) -> Result<usize, NnError> {
    let pipeline = ctx.detector.features();
    let feats = pipeline.transform_counts(program.counts());
    let jac = substitute.probability_jacobian(&feats, 1.0)?;

    // Shortlist by saliency.
    let mut candidates: Vec<usize> = (0..feats.len())
        .filter(|&j| feats[j] < 1.0 - 1e-12)
        .collect();
    candidates.sort_by(|&a, &b| {
        jac.get(0, b)
            .partial_cmp(&jac.get(0, a))
            .expect("finite saliency")
    });
    candidates.truncate(12);

    // Simulate the insertion path on the substitute.
    let budget = 16u32;
    let mut best = candidates.first().copied().unwrap_or(0);
    let mut best_prob = f64::INFINITY;
    for &api in &candidates {
        let mut counts = program.counts().to_vec();
        counts[api] = counts[api].saturating_add(budget);
        let f = pipeline.transform_counts(&counts);
        let p = substitute.predict_proba(&maleva_linalg::Matrix::row_vector(&f))?;
        let malware_prob = p.get(0, 1);
        if malware_prob < best_prob {
            best_prob = malware_prob;
            best = api;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greybox::train_substitute;
    use crate::{ExperimentContext, ExperimentScale};

    fn setup() -> (ExperimentContext, Network) {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 31).unwrap();
        let substitute = train_substitute(&ctx, 31).unwrap();
        (ctx, substitute)
    }

    #[test]
    fn live_test_reduces_confidence() {
        let (ctx, substitute) = setup();
        let report = live_greybox_test(&ctx, &substitute, 24).unwrap();
        assert_eq!(report.confidences.len(), 25);
        assert!(
            report.initial_confidence() > 0.5,
            "starting sample must be detected: {}",
            report.initial_confidence()
        );
        assert!(
            report.final_confidence() < report.initial_confidence(),
            "repeated insertion should cut confidence: {} -> {}",
            report.initial_confidence(),
            report.final_confidence()
        );
    }

    #[test]
    fn report_is_internally_consistent() {
        let (ctx, substitute) = setup();
        let report = live_greybox_test(&ctx, &substitute, 8).unwrap();
        assert_eq!(
            ctx.world.vocab().index_of(&report.api_name),
            Some(report.api_index)
        );
        if let Some(n) = report.evaded_at {
            assert!(report.confidences[n] < 0.5);
        }
        let rendered = report.render();
        assert!(rendered.contains(&report.api_name));
        assert!(rendered.contains("insertions"));
    }

    #[test]
    fn zero_insertions_matches_direct_scan() {
        let (ctx, substitute) = setup();
        let program = ctx
            .dataset
            .test()
            .iter()
            .find(|p| p.class() == Class::Malware)
            .unwrap();
        let report = run_on_program(&ctx, &substitute, program, 0).unwrap();
        let direct = ctx.detector.scan(program).unwrap();
        assert!((report.confidences[0] - direct).abs() < 1e-12);
    }
}
