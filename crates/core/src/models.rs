//! The paper's model architectures.
//!
//! * **Target model** — "a 4-layer fully connected DNN (The target model
//!   is proprietary, so we cannot release the detail information.)". Our
//!   stand-in is 491 → 512 → 256 → 2 at paper scale.
//! * **Substitute model** — Table IV: 491 → 1200 → 1500 → 1300 → 2,
//!   trained with Adam, learning rate 0.001, batch size 256.
//!
//! Each architecture also has a width-scaled `quick`/`tiny` variant so
//! experiments run on a laptop; the *depth* (layer count) always matches
//! the paper, since transferability depends on architectural dissimilarity
//! between target (4-layer) and substitute (5-layer).

use maleva_nn::{Activation, Network, NetworkBuilder, NnError};

/// Width multiplier presets for the paper architectures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelScale {
    /// Full paper widths (1200/1500/1300 substitute hidden layers).
    Paper,
    /// ~1/12 widths; minutes-scale experiments.
    Quick,
    /// ~1/40 widths; unit-test scale.
    Tiny,
    /// An explicit width multiplier in `(0, 1]`.
    Custom(f64),
}

impl ModelScale {
    fn factor(self) -> f64 {
        match self {
            ModelScale::Paper => 1.0,
            ModelScale::Quick => 1.0 / 12.0,
            ModelScale::Tiny => 1.0 / 40.0,
            ModelScale::Custom(f) => {
                assert!(
                    f > 0.0 && f <= 1.0,
                    "custom scale must be in (0, 1], got {f}"
                );
                f
            }
        }
    }

    fn width(self, paper_width: usize) -> usize {
        ((paper_width as f64 * self.factor()).round() as usize).max(4)
    }
}

/// Builds the (simulated-proprietary) 4-layer target model:
/// `input → 512·s → 256·s → 2`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero input dimension.
pub fn target_model(input_dim: usize, scale: ModelScale, seed: u64) -> Result<Network, NnError> {
    NetworkBuilder::new(input_dim)
        .layer(scale.width(512), Activation::ReLU)
        .layer(scale.width(256), Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
}

/// Builds the Table IV 5-layer substitute model:
/// `input → 1200·s → 1500·s → 1300·s → 2`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero input dimension.
pub fn substitute_model(
    input_dim: usize,
    scale: ModelScale,
    seed: u64,
) -> Result<Network, NnError> {
    NetworkBuilder::new(input_dim)
        .layer(scale.width(1200), Activation::ReLU)
        .layer(scale.width(1500), Activation::ReLU)
        .layer(scale.width(1300), Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
}

/// Builds the classifier used over PCA-reduced inputs (dimensionality-
/// reduction defense, K = 19 in the paper): `k → 64·s → 2`.
///
/// A shallower stack than the target — with only K inputs, the paper-size
/// hidden layers would be grossly overparameterized.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero input dimension.
pub fn reduced_model(k: usize, scale: ModelScale, seed: u64) -> Result<Network, NnError> {
    NetworkBuilder::new(k)
        .layer(scale.width(64).max(8), Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_model_takes_k_inputs() {
        let net = reduced_model(19, ModelScale::Quick, 0).unwrap();
        assert_eq!(net.input_dim(), 19);
        assert_eq!(net.num_classes(), 2);
    }

    #[test]
    fn paper_substitute_matches_table_iv() {
        let net = substitute_model(491, ModelScale::Paper, 0).unwrap();
        assert_eq!(net.dims(), vec![491, 1200, 1500, 1300, 2]);
    }

    #[test]
    fn target_is_four_layers_substitute_is_five() {
        // Counting layers as the paper does (including input and output
        // "layers" of the fully-connected stack): target has 3 weight
        // matrices (4 node layers), substitute has 4 (5 node layers).
        let t = target_model(491, ModelScale::Quick, 0).unwrap();
        let s = substitute_model(491, ModelScale::Quick, 0).unwrap();
        assert_eq!(t.layers().len(), 3);
        assert_eq!(s.layers().len(), 4);
    }

    #[test]
    fn scales_shrink_widths_but_keep_depth() {
        let paper = substitute_model(491, ModelScale::Paper, 0).unwrap();
        let quick = substitute_model(491, ModelScale::Quick, 0).unwrap();
        let tiny = substitute_model(491, ModelScale::Tiny, 0).unwrap();
        assert_eq!(paper.dims().len(), quick.dims().len());
        assert_eq!(paper.dims().len(), tiny.dims().len());
        assert!(quick.param_count() < paper.param_count() / 50);
        assert!(tiny.param_count() < quick.param_count());
        // Output layer stays 2-wide at every scale.
        assert_eq!(quick.num_classes(), 2);
        assert_eq!(tiny.num_classes(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = target_model(32, ModelScale::Tiny, 1).unwrap();
        let b = target_model(32, ModelScale::Tiny, 2).unwrap();
        let x = maleva_linalg::Matrix::filled(1, 32, 0.5);
        assert_ne!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }
}
