use maleva_apisim::{ApiVocab, Program};
use maleva_features::FeaturePipeline;
use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

/// The end-to-end detector: sandbox log → 491 features → DNN → verdict.
///
/// This is the deployed artifact of the paper's Figure 2 — the thing an
/// attacker queries. It owns the fitted [`FeaturePipeline`] (the
/// defender's secret feature engineering) and the trained [`Network`].
#[derive(Debug, Clone)]
pub struct DetectorPipeline {
    vocab: ApiVocab,
    features: FeaturePipeline,
    network: Network,
}

impl DetectorPipeline {
    /// Assembles a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the network's input width
    /// differs from the feature pipeline's dimensionality or the
    /// vocabulary size differs from the pipeline's.
    pub fn new(
        vocab: ApiVocab,
        features: FeaturePipeline,
        network: Network,
    ) -> Result<Self, NnError> {
        if network.input_dim() != features.dim() {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "network expects {} inputs but the feature pipeline produces {}",
                    network.input_dim(),
                    features.dim()
                ),
            });
        }
        if vocab.len() != features.dim() {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "vocabulary has {} APIs but the feature pipeline expects {}",
                    vocab.len(),
                    features.dim()
                ),
            });
        }
        Ok(DetectorPipeline {
            vocab,
            features,
            network,
        })
    }

    /// The detector's API vocabulary.
    pub fn vocab(&self) -> &ApiVocab {
        &self.vocab
    }

    /// The fitted feature pipeline.
    pub fn features(&self) -> &FeaturePipeline {
        &self.features
    }

    /// The trained classifier.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Replaces the classifier (e.g. with a defended retrained model).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] on input-width mismatch.
    pub fn with_network(self, network: Network) -> Result<Self, NnError> {
        DetectorPipeline::new(self.vocab, self.features, network)
    }

    /// Scans a program end-to-end **through its log text** — render the
    /// log, parse counts, extract features, classify. This is the full
    /// deployment path the live grey-box test exercises.
    ///
    /// Returns the malware confidence in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on internal shape mismatches.
    pub fn scan(&self, program: &Program) -> Result<f64, NnError> {
        let log_text = program.render_log(&self.vocab);
        self.scan_log(&log_text)
    }

    /// Scans raw log text (the paper's engine consumes log files).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on internal shape mismatches.
    pub fn scan_log(&self, log_text: &str) -> Result<f64, NnError> {
        let mut span = maleva_obs::Span::enter("pipeline.scan");
        // Stage timers are pure diagnostics; the clock is only read when
        // a trace sink is installed.
        let t0 = span.is_active().then(std::time::Instant::now);
        let counts = maleva_apisim::log::parse_counts(log_text, &self.vocab);
        let t1 = span.is_active().then(std::time::Instant::now);
        let feats = self.features.transform_counts(&counts);
        let t2 = span.is_active().then(std::time::Instant::now);
        let p = self.network.predict_proba(&Matrix::row_vector(&feats))?;
        let score = p.get(0, 1);
        if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
            span.record("parse_us", t1.duration_since(t0).as_micros() as u64);
            span.record("featurize_us", t2.duration_since(t1).as_micros() as u64);
            span.record("classify_us", t2.elapsed().as_micros() as u64);
            span.record("score", score);
        }
        Ok(score)
    }

    /// Hard verdict for a program: `true` = malware.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on internal shape mismatches.
    pub fn is_malware(&self, program: &Program) -> Result<bool, NnError> {
        Ok(self.scan(program)? >= 0.5)
    }

    /// Extracts the feature matrix for a batch of programs (the direct
    /// count path, bypassing log rendering — used for bulk experiments).
    pub fn featurize(&self, programs: &[Program]) -> Matrix {
        self.features.transform_batch(programs)
    }

    /// Serializes the whole deployed detector (vocabulary + fitted
    /// feature pipeline + trained network) to JSON — the artifact the
    /// `maleva` CLI trains once and scans with repeatedly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] on encoding failure.
    pub fn to_json(&self) -> Result<String, NnError> {
        #[derive(serde::Serialize)]
        struct Raw<'a> {
            vocab: &'a ApiVocab,
            features: &'a FeaturePipeline,
            network: &'a Network,
        }
        serde_json::to_string(&Raw {
            vocab: &self.vocab,
            features: &self.features,
            network: &self.network,
        })
        .map_err(|e| NnError::Serialization {
            detail: e.to_string(),
        })
    }

    /// Restores a detector saved with [`DetectorPipeline::to_json`],
    /// re-validating all component invariants.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] on decode failure and
    /// [`NnError::InvalidConfig`] if the components do not fit together.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        #[derive(serde::Deserialize)]
        struct Raw {
            vocab: ApiVocab,
            features: FeaturePipeline,
            network: Network,
        }
        let raw: Raw = serde_json::from_str(json).map_err(|e| NnError::Serialization {
            detail: e.to_string(),
        })?;
        DetectorPipeline::new(raw.vocab, raw.features, raw.network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{target_model, ModelScale};
    use maleva_apisim::{Class, Dataset, DatasetSpec, World, WorldConfig};
    use maleva_features::CountTransform;
    use maleva_nn::{TrainConfig, Trainer};

    fn trained_pipeline() -> (DetectorPipeline, World, Dataset) {
        let world = World::new(WorldConfig::default());
        let ds = world.build_dataset(&DatasetSpec::tiny(), 5);
        let features = FeaturePipeline::fit(CountTransform::Log1p, ds.train());
        let x = features.transform_batch(ds.train());
        let y = Dataset::labels(ds.train());
        let mut net = target_model(features.dim(), ModelScale::Tiny, 7).unwrap();
        Trainer::new(
            TrainConfig::new()
                .epochs(25)
                .batch_size(32)
                .learning_rate(0.005),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        let p = DetectorPipeline::new(world.vocab().clone(), features, net).unwrap();
        (p, world, ds)
    }

    #[test]
    fn scan_matches_featurize_path() {
        let (pipeline, _, ds) = trained_pipeline();
        // The log path and the direct count path agree.
        let prog = &ds.test()[0];
        let via_log = pipeline.scan(prog).unwrap();
        let x = pipeline.featurize(std::slice::from_ref(prog));
        let direct = pipeline.network().predict_proba(&x).unwrap().get(0, 1);
        assert!((via_log - direct).abs() < 1e-12);
    }

    #[test]
    fn trained_pipeline_detects_most_test_malware() {
        let (pipeline, _, ds) = trained_pipeline();
        let mut correct = 0usize;
        let mut total = 0usize;
        for prog in ds.test() {
            let verdict = pipeline.is_malware(prog).unwrap();
            if verdict == (prog.class() == Class::Malware) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "end-to-end accuracy {acc}");
    }

    #[test]
    fn rejects_mismatched_components() {
        let (pipeline, world, ds) = trained_pipeline();
        let bad_net = target_model(32, ModelScale::Tiny, 0).unwrap();
        assert!(
            DetectorPipeline::new(world.vocab().clone(), pipeline.features().clone(), bad_net)
                .is_err()
        );
        let bad_vocab = maleva_apisim::ApiVocab::attacker_guess(0.3);
        let features = FeaturePipeline::fit(CountTransform::Log1p, ds.train());
        let net = target_model(features.dim(), ModelScale::Tiny, 0).unwrap();
        assert!(DetectorPipeline::new(bad_vocab, features, net).is_err());
    }

    #[test]
    fn scan_log_handles_foreign_text() {
        let (pipeline, _, _) = trained_pipeline();
        // Unknown APIs only → all-zero features → some deterministic score.
        let score = pipeline.scan_log("unknownapi:1 ()\"1\"\n").unwrap();
        assert!((0.0..=1.0).contains(&score));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::{ExperimentContext, ExperimentScale};

    #[test]
    fn detector_round_trips_through_json() {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 93).unwrap();
        let json = ctx.detector.to_json().unwrap();
        let restored = DetectorPipeline::from_json(&json).unwrap();
        for prog in ctx.dataset.test().iter().take(5) {
            assert_eq!(
                ctx.detector.scan(prog).unwrap(),
                restored.scan(prog).unwrap()
            );
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(DetectorPipeline::from_json("{oops").is_err());
        assert!(DetectorPipeline::from_json("{}").is_err());
    }
}
