use serde::{Deserialize, Serialize};

/// The attacker-knowledge models of the paper's Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatModel {
    /// "The attacker has complete knowledge of the system, including
    /// training data, features, and ML models (i.e. DNN architecture and
    /// parameters)." Attacks are crafted directly against the target.
    WhiteBox,
    /// "The attacker has no knowledge of training data and ML model, but
    /// knowledge of the features." Attacks are crafted against a
    /// self-trained substitute and transferred.
    GreyBox,
    /// "The attacker has no knowledge of the system." The target is only
    /// a label oracle; features, data and model are all the attacker's
    /// own (Figure 2 framework).
    BlackBox,
}

impl ThreatModel {
    /// Whether the attacker can read the target model's parameters.
    pub fn knows_model(self) -> bool {
        matches!(self, ThreatModel::WhiteBox)
    }

    /// Whether the attacker knows the defender's exact feature space.
    pub fn knows_features(self) -> bool {
        matches!(self, ThreatModel::WhiteBox | ThreatModel::GreyBox)
    }

    /// Whether the attacker can see the defender's training data.
    pub fn knows_training_data(self) -> bool {
        matches!(self, ThreatModel::WhiteBox)
    }
}

impl std::fmt::Display for ThreatModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ThreatModel::WhiteBox => "white-box",
            ThreatModel::GreyBox => "grey-box",
            ThreatModel::BlackBox => "black-box",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_lattice_matches_paper() {
        assert!(ThreatModel::WhiteBox.knows_model());
        assert!(ThreatModel::WhiteBox.knows_features());
        assert!(ThreatModel::WhiteBox.knows_training_data());

        assert!(!ThreatModel::GreyBox.knows_model());
        assert!(ThreatModel::GreyBox.knows_features());
        assert!(!ThreatModel::GreyBox.knows_training_data());

        assert!(!ThreatModel::BlackBox.knows_model());
        assert!(!ThreatModel::BlackBox.knows_features());
        assert!(!ThreatModel::BlackBox.knows_training_data());
    }

    #[test]
    fn display_names() {
        assert_eq!(ThreatModel::GreyBox.to_string(), "grey-box");
    }
}
