//! The white-box attack experiment (paper Section III-A, Figure 3).
//!
//! The attacker knows everything — including the target's parameters — so
//! adversarial examples are crafted directly against the target model and
//! scored by it. Each curve carries the paper's random-noise control
//! series.

use maleva_attack::sweep::{security_sweep, SweepAxis};
use maleva_attack::{detection_rate, EvasionAttack, Jsma};
use maleva_eval::SecurityCurve;
use maleva_linalg::Matrix;
use maleva_nn::NnError;
use serde::{Deserialize, Serialize};

use crate::ExperimentContext;

/// Figure 3(a): detection rate vs γ at θ = 0.1, on at most `samples`
/// test-malware rows, with the random-addition control.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn gamma_curve(ctx: &ExperimentContext, samples: usize) -> Result<SecurityCurve, NnError> {
    curve(ctx, samples, SweepAxis::paper_gamma())
}

/// Figure 3(b): detection rate vs θ at γ = 0.025, with the random
/// control.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn theta_curve(ctx: &ExperimentContext, samples: usize) -> Result<SecurityCurve, NnError> {
    curve(ctx, samples, SweepAxis::paper_theta())
}

/// White-box sweep over an arbitrary axis.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn curve(
    ctx: &ExperimentContext,
    samples: usize,
    axis: SweepAxis,
) -> Result<SecurityCurve, NnError> {
    let batch = capped_batch(ctx, samples);
    security_sweep(
        ctx.target(),
        &[("target", ctx.target())],
        &batch,
        &axis,
        Some(ctx.seed ^ 0x5EED),
    )
}

/// Figure 5 counterpart computed white-box (see
/// [`greybox`](crate::greybox) for the paper's grey-box variant): mean L2
/// distances between malware, adversarial examples, and clean samples as
/// attack strength varies.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
pub fn l2_curves(
    ctx: &ExperimentContext,
    samples: usize,
    axis: SweepAxis,
) -> Result<SecurityCurve, NnError> {
    let malware = capped_batch(ctx, samples);
    let clean = ctx.clean_batch();
    maleva_attack::perturbation::l2_sweep(
        ctx.target(),
        &malware,
        &clean,
        &axis,
        ctx.scale.l2_max_pairs,
    )
}

/// The paper's headline white-box operating point: θ = 0.1, γ = 0.025
/// (adding up to 12 of 491 features), where the detection rate collapsed
/// to 0.099 and 26 015 of 28 874 malware evaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// θ used.
    pub theta: f64,
    /// γ used.
    pub gamma: f64,
    /// Detection rate on the adversarial batch.
    pub detection_rate: f64,
    /// Number of malware samples that evaded.
    pub evasions: usize,
    /// Number attacked.
    pub attacked: usize,
    /// Mean number of features actually modified per sample.
    pub mean_features_modified: f64,
    /// Mean L2 perturbation.
    pub mean_l2: f64,
}

/// Evaluates one `(θ, γ)` operating point white-box.
///
/// # Errors
///
/// Returns [`NnError`] on internal shape mismatches.
///
/// # Panics
///
/// Panics if `theta <= 0` or `gamma` is outside `[0, 1]`.
pub fn operating_point(
    ctx: &ExperimentContext,
    samples: usize,
    theta: f64,
    gamma: f64,
) -> Result<OperatingPoint, NnError> {
    let batch = capped_batch(ctx, samples);
    let jsma = Jsma::new(theta, gamma);
    let (adv, outcomes) = jsma.craft_batch(ctx.target(), &batch)?;
    let dr = detection_rate(ctx.target(), &adv)?;
    let preds = ctx.target().predict(&adv)?;
    let evasions = preds.iter().filter(|&&p| p == 0).count();
    let n = outcomes.len().max(1) as f64;
    Ok(OperatingPoint {
        theta,
        gamma,
        detection_rate: dr,
        evasions,
        attacked: outcomes.len(),
        mean_features_modified: outcomes
            .iter()
            .map(|o| o.features_modified() as f64)
            .sum::<f64>()
            / n,
        mean_l2: outcomes.iter().map(|o| o.l2_distance).sum::<f64>() / n,
    })
}

fn capped_batch(ctx: &ExperimentContext, samples: usize) -> Matrix {
    let full = ctx.attack_batch();
    let n = samples.min(full.rows()).max(1);
    let idx: Vec<usize> = (0..n).collect();
    full.select_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentScale;

    fn ctx() -> ExperimentContext {
        ExperimentContext::build(ExperimentScale::tiny(), 11).unwrap()
    }

    #[test]
    fn gamma_curve_has_jsma_and_random_series() {
        let ctx = ctx();
        let curve = gamma_curve(&ctx, 20).unwrap();
        assert_eq!(curve.strength.len(), 7);
        assert!(curve.series_named("jsma:target").is_some());
        assert!(curve.series_named("random:target").is_some());
        // Strength zero equals the clean baseline for both series.
        let j = curve.series_named("jsma:target").unwrap();
        let r = curve.series_named("random:target").unwrap();
        assert!((j.values[0] - r.values[0]).abs() < 1e-12);
    }

    #[test]
    fn operating_point_reports_consistent_counts() {
        let ctx = ctx();
        let op = operating_point(&ctx, 20, 0.3, 0.1).unwrap();
        assert_eq!(op.attacked, 20);
        assert!((op.detection_rate - (1.0 - op.evasions as f64 / 20.0)).abs() < 1e-12);
        assert!(op.mean_features_modified <= (0.1f64 * 491.0).floor());
        assert!(op.mean_l2 >= 0.0);
    }

    #[test]
    fn stronger_theta_never_raises_detection_much() {
        let ctx = ctx();
        let weak = operating_point(&ctx, 20, 0.05, 0.05).unwrap();
        let strong = operating_point(&ctx, 20, 0.9, 0.05).unwrap();
        assert!(strong.detection_rate <= weak.detection_rate + 0.15);
    }

    #[test]
    fn l2_curve_has_three_series() {
        let ctx = ctx();
        let axis = SweepAxis::Gamma {
            theta: 0.3,
            values: vec![0.0, 0.02],
        };
        let c = l2_curves(&ctx, 20, axis).unwrap();
        assert!(c.series_named("mal-adv").is_some());
        assert!(c.series_named("mal-clean").is_some());
        assert!(c.series_named("clean-adv").is_some());
    }
}
