use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

/// Adversarial training (paper Section II-C-1, Table V recipe).
///
/// The defender augments the training set with adversarial examples
/// (labelled malware) and retrains. The paper additionally does a "sanity
/// check on the data to reduce the duplicated samples" and re-balances by
/// adding clean samples — both reproduced here: exact duplicate rows are
/// dropped, and the augmented set is checked for class balance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarialTraining {
    trainer: TrainConfig,
    /// Drop exact duplicate rows before training (the paper's sanity
    /// check).
    pub deduplicate: bool,
}

/// Summary of the augmented training set (the shape of the paper's
/// Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AugmentedSetSummary {
    /// Clean rows in the final training set.
    pub clean: usize,
    /// Original malware rows in the final training set.
    pub malware: usize,
    /// Adversarial-example rows in the final training set.
    pub adversarial: usize,
    /// Rows removed by deduplication.
    pub duplicates_removed: usize,
}

impl AugmentedSetSummary {
    /// Total rows trained on.
    pub fn total(&self) -> usize {
        self.clean + self.malware + self.adversarial
    }
}

impl AdversarialTraining {
    /// Creates the defense with the given retraining configuration.
    pub fn new(trainer: TrainConfig) -> Self {
        AdversarialTraining {
            trainer,
            deduplicate: true,
        }
    }

    /// Disables the duplicate sanity check (ablation).
    pub fn without_deduplication(mut self) -> Self {
        self.deduplicate = false;
        self
    }

    /// Trains `fresh` on the original data augmented with `advex` rows
    /// labelled malware. Returns the defended network and the Table V
    /// style summary of what was trained on.
    ///
    /// # Errors
    ///
    /// * [`NnError::LabelMismatch`] if `y.len() != x.rows()`.
    /// * Any training error bubbles up.
    ///
    /// # Panics
    ///
    /// Panics if `advex` has a different column count from `x`.
    pub fn defend(
        &self,
        mut fresh: Network,
        x: &Matrix,
        y: &[usize],
        advex: &Matrix,
    ) -> Result<(Network, AugmentedSetSummary), NnError> {
        if y.len() != x.rows() {
            return Err(NnError::LabelMismatch {
                detail: format!("{} labels for {} rows", y.len(), x.rows()),
            });
        }
        assert_eq!(
            x.cols(),
            advex.cols(),
            "adversarial examples must share the feature space"
        );

        // Assemble augmented rows.
        let mut rows: Vec<(Vec<f64>, usize, Kind)> = Vec::with_capacity(x.rows() + advex.rows());
        for (r, &label) in y.iter().enumerate() {
            rows.push((x.row(r).to_vec(), label, Kind::Original));
        }
        for r in 0..advex.rows() {
            rows.push((advex.row(r).to_vec(), 1, Kind::Adversarial));
        }

        // The paper's sanity check: drop exact duplicates.
        let mut duplicates_removed = 0usize;
        if self.deduplicate {
            let mut seen: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
            rows.retain(|(row, _, _)| {
                let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
                if seen.insert(key) {
                    true
                } else {
                    duplicates_removed += 1;
                    false
                }
            });
        }

        let mut clean = 0usize;
        let mut malware = 0usize;
        let mut adversarial = 0usize;
        for (_, label, kind) in &rows {
            match (label, kind) {
                (_, Kind::Adversarial) => adversarial += 1,
                (0, Kind::Original) => clean += 1,
                (_, Kind::Original) => malware += 1,
            }
        }

        let data: Vec<Vec<f64>> = rows.iter().map(|(r, _, _)| r.clone()).collect();
        let labels: Vec<usize> = rows.iter().map(|(_, l, _)| *l).collect();
        let xa = Matrix::from_rows(&data).expect("uniform augmented rows");
        Trainer::new(self.trainer.clone()).fit(&mut fresh, &xa, &labels)?;

        Ok((
            fresh,
            AugmentedSetSummary {
                clean,
                malware,
                adversarial,
                duplicates_removed,
            },
        ))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Original,
    Adversarial,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::Detector;
    use maleva_attack::{EvasionAttack, Jsma};

    fn setup() -> (Matrix, Vec<usize>, Matrix, Matrix, Network, Matrix) {
        let (x, y, mal, clean) = dataset(12, 32);
        let base = trained_net(12, 1, &x, &y);
        let jsma = Jsma::new(0.4, 0.5);
        let (advex, _) = jsma.craft_batch(&base, &mal).unwrap();
        (x, y, mal, clean, base, advex)
    }

    #[test]
    fn adversarial_training_restores_advex_detection() {
        let (x, y, mal, clean, base, advex) = setup();
        // Baseline: the attack works.
        let base_adv_tpr = detection(&base, &advex);
        assert!(
            base_adv_tpr < 0.5,
            "attack should evade baseline: {base_adv_tpr}"
        );

        let defense = AdversarialTraining::new(
            TrainConfig::new()
                .epochs(60)
                .batch_size(16)
                .learning_rate(0.02),
        );
        let (defended, summary) = defense.defend(fresh_net(12, 2), &x, &y, &advex).unwrap();

        let adv_tpr = detection(&defended, &advex);
        assert!(
            adv_tpr > 0.9,
            "defended model should detect advex: {adv_tpr} (paper: 0.304 -> 0.931)"
        );
        // Original performance preserved.
        assert!(detection(&defended, &mal) > 0.9);
        let clean_fpr = detection(&defended, &clean);
        assert!(clean_fpr < 0.1, "clean FPR {clean_fpr}");
        // The fixture repeats feature rows every 7 samples, so the sanity
        // check collapses duplicates — some adversarial rows must survive.
        assert!(summary.adversarial > 0 && summary.adversarial <= advex.rows());
    }

    #[test]
    fn deduplication_removes_exact_copies() {
        let (x, y, _, _, _, advex) = setup();
        // Duplicate the advex block to force duplicates.
        let doubled = advex.vstack(&advex).unwrap();
        let defense = AdversarialTraining::new(
            TrainConfig::new()
                .epochs(2)
                .batch_size(16)
                .learning_rate(0.02),
        );
        let (_, summary) = defense.defend(fresh_net(12, 3), &x, &y, &doubled).unwrap();
        assert!(summary.duplicates_removed >= advex.rows());
        let (_, summary_off) = AdversarialTraining::new(
            TrainConfig::new()
                .epochs(2)
                .batch_size(16)
                .learning_rate(0.02),
        )
        .without_deduplication()
        .defend(fresh_net(12, 3), &x, &y, &doubled)
        .unwrap();
        assert_eq!(summary_off.duplicates_removed, 0);
        assert!(summary_off.total() > summary.total());
    }

    #[test]
    fn summary_counts_add_up() {
        let (x, y, _, _, _, advex) = setup();
        let defense = AdversarialTraining::new(
            TrainConfig::new()
                .epochs(1)
                .batch_size(16)
                .learning_rate(0.02),
        )
        .without_deduplication();
        let (_, s) = defense.defend(fresh_net(12, 4), &x, &y, &advex).unwrap();
        assert_eq!(s.total(), x.rows() + advex.rows());
        assert_eq!(s.clean + s.malware, x.rows());
        assert_eq!(s.adversarial, advex.rows());
    }

    #[test]
    fn rejects_label_mismatch() {
        let (x, _, _, _, _, advex) = setup();
        let defense = AdversarialTraining::new(TrainConfig::new().epochs(1));
        assert!(defense
            .defend(fresh_net(12, 5), &x, &[0, 1], &advex)
            .is_err());
    }

    fn detection(net: &Network, x: &Matrix) -> f64 {
        let labels = net.predict_labels(x).unwrap();
        labels.iter().filter(|&&l| l == 1).count() as f64 / labels.len() as f64
    }
}
