use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

/// Defensive distillation (paper Section II-C-2; Papernot et al. 2016).
///
/// Two models: a **teacher** trained normally at softmax temperature `T`,
/// and a **student** trained on the teacher's temperature-`T` soft labels
/// ("the additional knowledge in probabilities, compared to hard class
/// labels"). The student is deployed at `T = 1`, where its elevated
/// training temperature flattens input gradients and so raises the cost
/// of gradient-based attacks. The paper uses `T = 50`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefensiveDistillation {
    /// Distillation temperature (paper: 50).
    pub temperature: f64,
    teacher_config: TrainConfig,
    student_config: TrainConfig,
}

impl DefensiveDistillation {
    /// Creates the defense. The temperature is injected into both
    /// training configurations.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`.
    pub fn new(temperature: f64, teacher: TrainConfig, student: TrainConfig) -> Self {
        assert!(
            temperature > 0.0,
            "distillation temperature must be positive, got {temperature}"
        );
        DefensiveDistillation {
            temperature,
            teacher_config: teacher.temperature(temperature),
            student_config: student.temperature(temperature),
        }
    }

    /// Runs the two-stage distillation: trains `teacher` on `(x, y)` at
    /// temperature `T`, extracts its soft labels at `T`, trains `student`
    /// on those soft labels at `T`, and returns `(student, teacher)`.
    ///
    /// The returned student should be *queried at temperature 1* (its
    /// plain [`Network::predict`] / [`Network::predict_proba`]).
    ///
    /// # Errors
    ///
    /// Label or shape inconsistencies, via [`NnError`].
    pub fn defend(
        &self,
        mut teacher: Network,
        mut student: Network,
        x: &Matrix,
        y: &[usize],
    ) -> Result<(Network, Network), NnError> {
        Trainer::new(self.teacher_config.clone()).fit(&mut teacher, x, y)?;
        let soft = teacher.predict_proba_at(x, self.temperature)?;
        Trainer::new(self.student_config.clone()).fit_soft(&mut student, x, &soft)?;
        Ok((student, teacher))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::Detector;
    use maleva_attack::{detection_rate, EvasionAttack, Jsma};

    fn configs() -> (TrainConfig, TrainConfig) {
        (
            TrainConfig::new()
                .epochs(80)
                .batch_size(16)
                .learning_rate(0.05),
            TrainConfig::new()
                .epochs(80)
                .batch_size(16)
                .learning_rate(0.05),
        )
    }

    #[test]
    fn student_learns_the_task() {
        let (x, y, mal, clean) = dataset(12, 32);
        let (tc, sc) = configs();
        let d = DefensiveDistillation::new(20.0, tc, sc);
        let (student, teacher) = d
            .defend(fresh_net(12, 10), fresh_net(12, 11), &x, &y)
            .unwrap();
        // Teacher and student both classify well at deployment (T = 1).
        for net in [&student, &teacher] {
            let mal_labels = net.predict_labels(&mal).unwrap();
            let tpr =
                mal_labels.iter().filter(|&&l| l == 1).count() as f64 / mal_labels.len() as f64;
            assert!(tpr > 0.85, "TPR {tpr}");
            let clean_labels = net.predict_labels(&clean).unwrap();
            let fpr =
                clean_labels.iter().filter(|&&l| l == 1).count() as f64 / clean_labels.len() as f64;
            assert!(fpr < 0.15, "FPR {fpr}");
        }
    }

    #[test]
    fn distilled_student_resists_whitebox_jsma_better_than_baseline() {
        let (x, y, mal, _) = dataset(12, 32);
        let baseline = trained_net(12, 12, &x, &y);
        let (tc, sc) = configs();
        let d = DefensiveDistillation::new(50.0, tc, sc);
        let (student, _) = d
            .defend(fresh_net(12, 13), fresh_net(12, 14), &x, &y)
            .unwrap();

        // White-box JSMA against each model at a mild strength.
        let jsma = Jsma::new(0.2, 0.25);
        let (adv_base, _) = jsma.craft_batch(&baseline, &mal).unwrap();
        let (adv_student, _) = jsma.craft_batch(&student, &mal).unwrap();
        let dr_base = detection_rate(&baseline, &adv_base).unwrap();
        let dr_student = detection_rate(&student, &adv_student).unwrap();
        assert!(
            dr_student >= dr_base,
            "distilled model should resist at least as well: student {dr_student} vs base {dr_base}"
        );
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_bad_temperature() {
        let (tc, sc) = configs();
        DefensiveDistillation::new(0.0, tc, sc);
    }

    #[test]
    fn errors_propagate_from_training() {
        let (x, _, _, _) = dataset(12, 8);
        let (tc, sc) = configs();
        let d = DefensiveDistillation::new(10.0, tc, sc);
        // Wrong label count.
        assert!(d
            .defend(fresh_net(12, 15), fresh_net(12, 16), &x, &[0])
            .is_err());
    }
}
