use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError, TrainConfig};

use crate::{Detector, PcaDefense};

/// The combination the paper's discussion proposes: **adversarial
/// training + dimensionality reduction** ("The results suggest we may
/// consider ensemble adversarial training and dimension reduction").
///
/// The training set is augmented with adversarial examples (labelled
/// malware), PCA(k) is fit on the augmented set, and the reduced
/// classifier is trained on the projected augmented data — aiming for the
/// advex recall of DimReduct without its clean-TNR collapse.
#[derive(Debug, Clone)]
pub struct EnsembleDefense {
    inner: PcaDefense,
}

impl EnsembleDefense {
    /// Fits the ensemble defense.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidConfig`] if `reduced_net.input_dim() != k`.
    /// * PCA or training failures bubble up.
    ///
    /// # Panics
    ///
    /// Panics if `advex` has a different column count from `x` or
    /// `y.len() != x.rows()`.
    pub fn fit(
        k: usize,
        reduced_net: Network,
        x: &Matrix,
        y: &[usize],
        advex: &Matrix,
        trainer: TrainConfig,
    ) -> Result<Self, NnError> {
        assert_eq!(x.cols(), advex.cols(), "feature space mismatch");
        assert_eq!(y.len(), x.rows(), "label count mismatch");
        let xa = x.vstack(advex)?;
        let mut ya = y.to_vec();
        ya.extend(std::iter::repeat_n(1, advex.rows()));
        let inner = PcaDefense::fit(k, reduced_net, &xa, &ya, trainer)?;
        Ok(EnsembleDefense { inner })
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// The underlying PCA-defended model.
    pub fn inner(&self) -> &PcaDefense {
        &self.inner
    }
}

impl Detector for EnsembleDefense {
    fn predict_labels(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        self.inner.predict_labels(x)
    }

    fn malware_scores(&self, x: &Matrix) -> Result<Vec<f64>, NnError> {
        self.inner.malware_scores(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use maleva_attack::{EvasionAttack, Jsma};
    use maleva_nn::{Activation, NetworkBuilder};

    #[test]
    fn ensemble_detects_advex_and_keeps_clean_accuracy() {
        let (x, y, mal, clean) = dataset(12, 32);
        let base = trained_net(12, 40, &x, &y);
        let jsma = Jsma::new(0.3, 0.4);
        let (advex, _) = jsma.craft_batch(&base, &mal).unwrap();

        let k = 4;
        let reduced = NetworkBuilder::new(k)
            .layer(16, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(41)
            .build()
            .unwrap();
        let defense = EnsembleDefense::fit(
            k,
            reduced,
            &x,
            &y,
            &advex,
            TrainConfig::new()
                .epochs(80)
                .batch_size(16)
                .learning_rate(0.02),
        )
        .unwrap();
        assert_eq!(defense.k(), k);

        let rate = |labels: &[usize], class: usize| {
            labels.iter().filter(|&&l| l == class).count() as f64 / labels.len() as f64
        };
        let adv_tpr = rate(&defense.predict_labels(&advex).unwrap(), 1);
        let mal_tpr = rate(&defense.predict_labels(&mal).unwrap(), 1);
        let clean_tnr = rate(&defense.predict_labels(&clean).unwrap(), 0);
        assert!(adv_tpr > 0.8, "advex TPR {adv_tpr}");
        assert!(mal_tpr > 0.85, "malware TPR {mal_tpr}");
        assert!(clean_tnr > 0.85, "clean TNR {clean_tnr}");
    }

    #[test]
    #[should_panic(expected = "feature space mismatch")]
    fn rejects_mismatched_advex() {
        let (x, y, _, _) = dataset(12, 8);
        let reduced = fresh_net(3, 42);
        let _ = EnsembleDefense::fit(
            3,
            reduced,
            &x,
            &y,
            &Matrix::zeros(2, 5),
            TrainConfig::new().epochs(1),
        );
    }
}
