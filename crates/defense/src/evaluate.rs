use maleva_linalg::Matrix;
use maleva_nn::NnError;
use serde::{Deserialize, Serialize};

use crate::{Detector, SqueezeDetector};

/// One row of the paper's Table VI: a defense evaluated on one dataset
/// slice, reporting TPR and/or TNR (the inapplicable rate is `None`,
/// printed as "nan" like the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseRow {
    /// Defense name ("No Defense", "AdvTraining", …).
    pub defense: String,
    /// Dataset slice name ("Clean Test", "Malware Test", "AdvExamples").
    pub dataset: String,
    /// True positive rate on the slice, if defined.
    pub tpr: Option<f64>,
    /// True negative rate on the slice, if defined.
    pub tnr: Option<f64>,
}

/// Evaluates a label-producing defense on the three Table VI slices:
///
/// * **Clean Test** — TNR (clean predicted clean);
/// * **Malware Test** — TPR (malware predicted malware);
/// * **AdvExamples** — TPR (adversarial malware still predicted malware).
///
/// # Errors
///
/// Returns [`NnError`] on batch-width mismatches.
pub fn evaluate_detector(
    name: &str,
    detector: &dyn Detector,
    clean: &Matrix,
    malware: &Matrix,
    advex: &Matrix,
) -> Result<Vec<DefenseRow>, NnError> {
    let rate = |labels: &[usize], class: usize| -> Option<f64> {
        if labels.is_empty() {
            None
        } else {
            Some(labels.iter().filter(|&&l| l == class).count() as f64 / labels.len() as f64)
        }
    };
    let clean_labels = detector.predict_labels(clean)?;
    let mal_labels = detector.predict_labels(malware)?;
    let adv_labels = detector.predict_labels(advex)?;
    Ok(vec![
        DefenseRow {
            defense: name.to_string(),
            dataset: "Clean Test".to_string(),
            tpr: None,
            tnr: rate(&clean_labels, 0),
        },
        DefenseRow {
            defense: name.to_string(),
            dataset: "Malware Test".to_string(),
            tpr: rate(&mal_labels, 1),
            tnr: None,
        },
        DefenseRow {
            defense: name.to_string(),
            dataset: "AdvExamples".to_string(),
            tpr: rate(&adv_labels, 1),
            tnr: None,
        },
    ])
}

/// Evaluates the feature-squeezing detector in the same three-slice shape.
/// The squeezer detects *adversarialness*, not malware, so the slices
/// read differently (mirroring Table VI's FeaSqueezing block):
///
/// * **Clean Test** — TNR: clean samples *not* flagged adversarial;
/// * **Malware Test** — TNR: genuine malware *not* flagged adversarial;
/// * **AdvExamples** — TPR: adversarial examples flagged adversarial.
///
/// # Errors
///
/// Returns [`NnError`] on batch-width mismatches.
pub fn evaluate_squeezer(
    name: &str,
    detector: &SqueezeDetector,
    clean: &Matrix,
    malware: &Matrix,
    advex: &Matrix,
) -> Result<Vec<DefenseRow>, NnError> {
    let not_flagged = |flags: &[bool]| -> Option<f64> {
        if flags.is_empty() {
            None
        } else {
            Some(flags.iter().filter(|&&f| !f).count() as f64 / flags.len() as f64)
        }
    };
    let flagged = |flags: &[bool]| not_flagged(flags).map(|r| 1.0 - r);
    let clean_flags = detector.flag_adversarial(clean)?;
    let mal_flags = detector.flag_adversarial(malware)?;
    let adv_flags = detector.flag_adversarial(advex)?;
    Ok(vec![
        DefenseRow {
            defense: name.to_string(),
            dataset: "Clean Test".to_string(),
            tpr: None,
            tnr: not_flagged(&clean_flags),
        },
        DefenseRow {
            defense: name.to_string(),
            dataset: "Malware Test".to_string(),
            tpr: None,
            tnr: not_flagged(&mal_flags),
        },
        DefenseRow {
            defense: name.to_string(),
            dataset: "AdvExamples".to_string(),
            tpr: flagged(&adv_flags),
            tnr: None,
        },
    ])
}

/// Renders defense rows as a Table VI style text table.
pub fn render_table_vi(rows: &[DefenseRow]) -> String {
    let mut table = maleva_eval::TextTable::new().header(["Dataset Name", "", "TPR", "TNR"]);
    let mut last = "";
    for row in rows {
        let defense = if row.defense == last {
            ""
        } else {
            &row.defense
        };
        last = &row.defense;
        table.row([
            defense.to_string(),
            row.dataset.clone(),
            maleva_eval::fmt_rate(row.tpr),
            maleva_eval::fmt_rate(row.tnr),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::Squeezer;
    use maleva_attack::{EvasionAttack, Jsma};

    #[test]
    fn detector_rows_have_table_vi_shape() {
        let (x, y, mal, clean) = dataset(12, 24);
        let net = trained_net(12, 50, &x, &y);
        let jsma = Jsma::new(0.3, 0.4);
        let (advex, _) = jsma.craft_batch(&net, &mal).unwrap();
        let rows = evaluate_detector("No Defense", &net, &clean, &mal, &advex).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].dataset, "Clean Test");
        assert!(rows[0].tpr.is_none() && rows[0].tnr.is_some());
        assert!(rows[1].tpr.is_some() && rows[1].tnr.is_none());
        assert!(rows[2].tpr.is_some());
        // The attack works, so advex TPR < malware TPR.
        assert!(rows[2].tpr.unwrap() < rows[1].tpr.unwrap());
    }

    #[test]
    fn squeezer_rows_have_table_vi_shape() {
        let (x, y, mal, clean) = dataset(12, 24);
        let net = trained_net(12, 51, &x, &y);
        let jsma = Jsma::new(0.3, 0.4);
        let (advex, _) = jsma.craft_batch(&net, &mal).unwrap();
        let legit = clean.vstack(&mal).unwrap();
        let det =
            SqueezeDetector::calibrate(net, Squeezer::Binarize { threshold: 0.25 }, &legit, 0.1)
                .unwrap();
        let rows = evaluate_squeezer("FeaSqueezing", &det, &clean, &mal, &advex).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].tnr.is_some());
        assert!(rows[1].tnr.is_some());
        assert!(rows[2].tpr.is_some());
    }

    #[test]
    fn table_rendering_includes_nan_cells() {
        let rows = vec![
            DefenseRow {
                defense: "No Defense".into(),
                dataset: "Clean Test".into(),
                tpr: None,
                tnr: Some(0.964),
            },
            DefenseRow {
                defense: "No Defense".into(),
                dataset: "Malware Test".into(),
                tpr: Some(0.883),
                tnr: None,
            },
        ];
        let text = render_table_vi(&rows);
        assert!(text.contains("nan"));
        assert!(text.contains("0.964"));
        assert!(text.contains("0.883"));
        // Defense name printed once per block.
        assert_eq!(text.matches("No Defense").count(), 1);
    }

    #[test]
    fn empty_slices_produce_none_rates() {
        let (x, y, mal, _) = dataset(12, 8);
        let net = trained_net(12, 52, &x, &y);
        let empty = Matrix::zeros(0, 12);
        let rows = evaluate_detector("d", &net, &empty, &mal, &empty).unwrap();
        assert!(rows[0].tnr.is_none());
        assert!(rows[2].tpr.is_none());
    }
}
