//! Defenses against adversarial malware evasion.
//!
//! The paper (Section II-C) evaluates four defenses chosen for "low impact
//! on model architecture and model speed, and maintain model accuracy":
//!
//! 1. **Adversarial training** ([`AdversarialTraining`]) — inject
//!    adversarial examples into the training set (Table V recipe) and
//!    retrain. The paper's winner: advex TPR 0.304 → 0.931 with clean TNR
//!    preserved (Table VI).
//! 2. **Defensive distillation** ([`DefensiveDistillation`]) — train a
//!    teacher at temperature T = 50, then train a student on the
//!    teacher's soft labels at the same temperature; deploy at T = 1.
//! 3. **Feature squeezing** ([`SqueezeDetector`]) — compare the model's
//!    prediction on the raw input with its prediction on a squeezed
//!    input; an L1 gap above threshold flags the sample as adversarial.
//! 4. **Dimensionality reduction** ([`PcaDefense`]) — train the classifier
//!    on the first K = 19 principal components, restricting the attacker
//!    to perturbations visible in that subspace.
//!
//! Plus the combination the paper's discussion suggests ("we may consider
//! ensemble adversarial training and dimension reduction"):
//! [`EnsembleDefense`].
//!
//! All label-producing defenses implement [`Detector`], so the Table VI
//! harness ([`DefenseRow`], [`evaluate_detector`]) treats them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advtrain;
mod distill;
mod ensemble;
mod evaluate;
mod pca_defense;
mod squeeze;

pub use advtrain::{AdversarialTraining, AugmentedSetSummary};
pub use distill::DefensiveDistillation;
pub use ensemble::EnsembleDefense;
pub use evaluate::{evaluate_detector, evaluate_squeezer, render_table_vi, DefenseRow};
pub use pca_defense::PcaDefense;
pub use squeeze::{SqueezeDetector, Squeezer};

use maleva_linalg::Matrix;
use maleva_nn::{Network, NnError};

/// A malware detector: anything that maps feature batches to class labels
/// and malware scores. Implemented by raw [`Network`]s and by the
/// label-producing defenses, so evaluation code is defense-agnostic.
pub trait Detector {
    /// Hard labels (0 = clean, 1 = malware) per row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the batch width is wrong.
    fn predict_labels(&self, x: &Matrix) -> Result<Vec<usize>, NnError>;

    /// Malware probability per row (class-1 softmax output at T = 1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the batch width is wrong.
    fn malware_scores(&self, x: &Matrix) -> Result<Vec<f64>, NnError>;
}

impl Detector for Network {
    fn predict_labels(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        self.predict(x)
    }

    fn malware_scores(&self, x: &Matrix) -> Result<Vec<f64>, NnError> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows()).map(|r| p.get(r, 1)).collect())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use maleva_linalg::Matrix;
    use maleva_nn::{Activation, Network, NetworkBuilder, TrainConfig, Trainer};

    /// Small 2-class dataset with the malware-domain geometry (weak
    /// malware signal, strong clean signal, common baseline).
    pub fn dataset(dim: usize, n: usize) -> (Matrix, Vec<usize>, Matrix, Matrix) {
        let third = dim / 3;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut mal_rows = Vec::new();
        let mut clean_rows = Vec::new();
        for i in 0..n {
            let j = (i % 7) as f64 * 0.02;
            let mal: Vec<f64> = (0..dim)
                .map(|f| {
                    if f < third {
                        0.35 + j
                    } else if f < 2 * third {
                        0.02 + j * 0.3
                    } else {
                        0.3 + j
                    }
                })
                .collect();
            let clean: Vec<f64> = (0..dim)
                .map(|f| {
                    if f < third {
                        0.2 + j * 0.5
                    } else if f < 2 * third {
                        0.5 + j
                    } else {
                        0.3 + j
                    }
                })
                .collect();
            rows.push(mal.clone());
            labels.push(1);
            rows.push(clean.clone());
            labels.push(0);
            mal_rows.push(mal);
            clean_rows.push(clean);
        }
        (
            Matrix::from_rows(&rows).unwrap(),
            labels,
            Matrix::from_rows(&mal_rows).unwrap(),
            Matrix::from_rows(&clean_rows).unwrap(),
        )
    }

    pub fn fresh_net(dim: usize, seed: u64) -> Network {
        NetworkBuilder::new(dim)
            .layer(16, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    pub fn trained_net(dim: usize, seed: u64, x: &Matrix, y: &[usize]) -> Network {
        let mut net = fresh_net(dim, seed);
        Trainer::new(
            TrainConfig::new()
                .epochs(60)
                .batch_size(16)
                .learning_rate(0.02)
                .seed(seed),
        )
        .fit(&mut net, x, y)
        .unwrap();
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::*;

    #[test]
    fn network_implements_detector() {
        let (x, y, mal, clean) = dataset(12, 32);
        let net = trained_net(12, 1, &x, &y);
        let labels = net.predict_labels(&mal).unwrap();
        assert!(labels.iter().filter(|&&l| l == 1).count() > 30);
        let scores = net.malware_scores(&clean).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 0.3, "clean should have low malware scores: {mean}");
    }
}
