use maleva_linalg::{Matrix, Pca};
use maleva_nn::{Network, NnError, TrainConfig, Trainer};

use crate::Detector;

/// The dimensionality-reduction defense (paper Section II-C-4; Bhagoji et
/// al. 2017).
///
/// "Instead of training a classifier on the original data, it reduces the
/// features from the n-dimension to k (k ≪ n), and trains the classifier
/// on the reduced input. The defense restricts the attacker to the first
/// k components." The paper selects **K = 19** over the 491 features.
#[derive(Debug, Clone)]
pub struct PcaDefense {
    pca: Pca,
    net: Network,
}

impl PcaDefense {
    /// Fits the defense: PCA(k) on the training batch, then trains
    /// `reduced_net` — a freshly built network whose input dimension must
    /// equal `k` — on the projected data.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidConfig`] if `reduced_net.input_dim() != k`.
    /// * PCA or training failures bubble up.
    pub fn fit(
        k: usize,
        mut reduced_net: Network,
        x: &Matrix,
        y: &[usize],
        trainer: TrainConfig,
    ) -> Result<Self, NnError> {
        if reduced_net.input_dim() != k {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "reduced network expects {} inputs but k = {k}",
                    reduced_net.input_dim()
                ),
            });
        }
        let pca = Pca::fit(x, k)?;
        let z = pca.transform(x)?;
        Trainer::new(trainer).fit(&mut reduced_net, &z, y)?;
        Ok(PcaDefense {
            pca,
            net: reduced_net,
        })
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.pca.n_components()
    }

    /// The fitted projection.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// The classifier over the reduced space.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Projects a full-dimensional batch into the defense's input space.
    ///
    /// # Errors
    ///
    /// Returns an error if the batch width differs from the fitted
    /// feature count.
    pub fn reduce(&self, x: &Matrix) -> Result<Matrix, NnError> {
        Ok(self.pca.transform(x)?)
    }
}

impl Detector for PcaDefense {
    fn predict_labels(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        self.net.predict(&self.reduce(x)?)
    }

    fn malware_scores(&self, x: &Matrix) -> Result<Vec<f64>, NnError> {
        let p = self.net.predict_proba(&self.reduce(x)?)?;
        Ok((0..p.rows()).map(|r| p.get(r, 1)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use maleva_attack::{EvasionAttack, Jsma};

    fn fit_defense(k: usize, seed: u64) -> (PcaDefense, Matrix, Vec<usize>, Matrix, Matrix) {
        let (x, y, mal, clean) = dataset(12, 32);
        let net = maleva_nn::NetworkBuilder::new(k)
            .layer(16, maleva_nn::Activation::ReLU)
            .layer(2, maleva_nn::Activation::Identity)
            .seed(seed)
            .build()
            .unwrap();
        let defense = PcaDefense::fit(
            k,
            net,
            &x,
            &y,
            TrainConfig::new()
                .epochs(80)
                .batch_size(16)
                .learning_rate(0.02),
        )
        .unwrap();
        (defense, x, y, mal, clean)
    }

    #[test]
    fn reduced_classifier_still_separates_classes() {
        let (defense, _, _, mal, clean) = fit_defense(3, 30);
        let mal_labels = defense.predict_labels(&mal).unwrap();
        let tpr = mal_labels.iter().filter(|&&l| l == 1).count() as f64 / mal_labels.len() as f64;
        assert!(tpr > 0.9, "TPR {tpr}");
        let clean_labels = defense.predict_labels(&clean).unwrap();
        let fpr =
            clean_labels.iter().filter(|&&l| l == 1).count() as f64 / clean_labels.len() as f64;
        assert!(fpr < 0.1, "FPR {fpr}");
    }

    #[test]
    fn detects_advex_crafted_against_full_model() {
        // The paper's Table VI: DimReduct detects transferred advex well
        // (0.913). Craft against an undefended full-dimensional model and
        // check the reduced model still flags most of them. The base model
        // is deliberately lightly trained: JSMA stops as soon as *it*
        // flips, so a fragile base leaves the advex close to the malware
        // manifold, where the better-trained reduced classifier should
        // still detect them.
        let (defense, x, y, mal, _) = fit_defense(3, 31);
        let mut base = fresh_net(12, 99);
        Trainer::new(
            TrainConfig::new()
                .epochs(2)
                .batch_size(16)
                .learning_rate(0.02),
        )
        .fit(&mut base, &x, &y)
        .unwrap();
        let jsma = Jsma::new(0.3, 0.4);
        let (advex, _) = jsma.craft_batch(&base, &mal).unwrap();
        let adv_labels = defense.predict_labels(&advex).unwrap();
        let adv_tpr =
            adv_labels.iter().filter(|&&l| l == 1).count() as f64 / adv_labels.len() as f64;
        let base_labels = base.predict(&advex).unwrap();
        let base_tpr =
            base_labels.iter().filter(|&&l| l == 1).count() as f64 / base_labels.len() as f64;
        assert!(
            adv_tpr > base_tpr,
            "PCA defense should detect transferred advex better: {adv_tpr} vs {base_tpr}"
        );
    }

    #[test]
    fn k_accessor_and_scores() {
        let (defense, _, _, mal, _) = fit_defense(4, 33);
        assert_eq!(defense.k(), 4);
        let scores = defense.malware_scores(&mal).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn rejects_mismatched_network() {
        let (x, y, _, _) = dataset(12, 8);
        let net = fresh_net(12, 34); // wrong: expects 12 inputs, not k=3
        let err = PcaDefense::fit(3, net, &x, &y, TrainConfig::new().epochs(1));
        assert!(err.is_err());
    }

    #[test]
    fn reduce_rejects_wrong_width() {
        let (defense, _, _, _, _) = fit_defense(3, 35);
        assert!(defense.reduce(&Matrix::zeros(2, 5)).is_err());
    }
}
