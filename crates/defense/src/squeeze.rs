use maleva_linalg::{norm, Matrix};
use maleva_nn::{Network, NnError};
use serde::{Deserialize, Serialize};

/// An input squeezer: a lossy transform that collapses the attacker's
/// perturbation space (paper Section II-C-3; Xu et al. 2018).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Squeezer {
    /// Reduce each feature to `bits` of depth:
    /// `round(x · (2^bits − 1)) / (2^bits − 1)`.
    BitDepth {
        /// Bits of precision to keep (1..=16).
        bits: u8,
    },
    /// Collapse each feature to 0/1 at a threshold — the natural squeezer
    /// for API-count features (presence/absence).
    Binarize {
        /// Values strictly above this become 1.
        threshold: f64,
    },
    /// Zero out features below a threshold, keeping larger values
    /// unchanged. For count features this *removes* the sparse low-mass
    /// additions an add-only evasion attack plants, while legitimate
    /// class evidence (heavier counts) survives — the squeezer that
    /// actually bites in the malware domain.
    TrimLow {
        /// Values strictly below this become 0.
        threshold: f64,
    },
}

impl Squeezer {
    /// Applies the squeezer to a feature batch.
    ///
    /// # Panics
    ///
    /// Panics if a `BitDepth` squeezer has `bits` outside `1..=16`.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        match *self {
            Squeezer::BitDepth { bits } => {
                assert!(
                    (1..=16).contains(&bits),
                    "bits must be in 1..=16, got {bits}"
                );
                let levels = ((1u32 << bits) - 1) as f64;
                x.map(|v| (v.clamp(0.0, 1.0) * levels).round() / levels)
            }
            Squeezer::Binarize { threshold } => x.map(|v| if v > threshold { 1.0 } else { 0.0 }),
            Squeezer::TrimLow { threshold } => x.map(|v| if v < threshold { 0.0 } else { v }),
        }
    }
}

/// The feature-squeezing adversarial-example detector.
///
/// "We used L1 norm to measure the distance between the model's
/// prediction on the original sample and the prediction on the sample
/// after squeezing. If the distance is larger than a threshold, then the
/// input sample is an adversarial example." (paper Section II-C-3)
#[derive(Debug, Clone)]
pub struct SqueezeDetector {
    net: Network,
    squeezer: Squeezer,
    threshold: f64,
}

impl SqueezeDetector {
    /// Creates a detector with an explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn new(net: Network, squeezer: Squeezer, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be non-negative and finite, got {threshold}"
        );
        SqueezeDetector {
            net,
            squeezer,
            threshold,
        }
    }

    /// Calibrates the threshold on legitimate samples so that roughly
    /// `false_positive_rate` of them would be flagged: the threshold is
    /// the `(1 − fpr)` quantile of legitimate L1 scores.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on batch-width mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `legitimate` is empty or `false_positive_rate` is not in
    /// `(0, 1)`.
    pub fn calibrate(
        net: Network,
        squeezer: Squeezer,
        legitimate: &Matrix,
        false_positive_rate: f64,
    ) -> Result<Self, NnError> {
        assert!(
            legitimate.rows() > 0,
            "need legitimate samples to calibrate"
        );
        assert!(
            false_positive_rate > 0.0 && false_positive_rate < 1.0,
            "false_positive_rate must be in (0, 1)"
        );
        let mut scores = scores_for(&net, squeezer, legitimate)?;
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let idx = (((1.0 - false_positive_rate) * scores.len() as f64).ceil() as usize)
            .min(scores.len() - 1);
        let threshold = scores[idx];
        Ok(SqueezeDetector {
            net,
            squeezer,
            threshold,
        })
    }

    /// The calibrated L1 threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying model.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The squeezer in use.
    pub fn squeezer(&self) -> Squeezer {
        self.squeezer
    }

    /// L1 distance between predictions on raw and squeezed inputs, per
    /// row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on batch-width mismatch.
    pub fn scores(&self, x: &Matrix) -> Result<Vec<f64>, NnError> {
        scores_for(&self.net, self.squeezer, x)
    }

    /// Flags each row as adversarial (`true`) when its score exceeds the
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on batch-width mismatch.
    pub fn flag_adversarial(&self, x: &Matrix) -> Result<Vec<bool>, NnError> {
        Ok(self
            .scores(x)?
            .into_iter()
            .map(|s| s > self.threshold)
            .collect())
    }
}

fn scores_for(net: &Network, squeezer: Squeezer, x: &Matrix) -> Result<Vec<f64>, NnError> {
    let p_raw = net.predict_proba(x)?;
    let p_sq = net.predict_proba(&squeezer.apply(x))?;
    Ok(p_raw
        .rows_iter()
        .zip(p_sq.rows_iter())
        .map(|(a, b)| norm::l1_distance(a, b))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use maleva_attack::{EvasionAttack, Jsma};

    #[test]
    fn bit_depth_squeezing_quantizes() {
        let x = Matrix::from_rows(&[vec![0.0, 0.26, 0.74, 1.0]]).unwrap();
        let sq = Squeezer::BitDepth { bits: 1 }.apply(&x);
        assert_eq!(sq.row(0), &[0.0, 0.0, 1.0, 1.0]);
        let sq2 = Squeezer::BitDepth { bits: 2 }.apply(&x);
        // 3 levels: 0, 1/3, 2/3, 1
        assert!((sq2.get(0, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binarize_squeezing_thresholds() {
        let x = Matrix::from_rows(&[vec![0.0, 0.1, 0.5, 0.9]]).unwrap();
        let sq = Squeezer::Binarize { threshold: 0.3 }.apply(&x);
        assert_eq!(sq.row(0), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn squeezing_is_idempotent() {
        let x = Matrix::from_rows(&[vec![0.13, 0.57, 0.99]]).unwrap();
        for squeezer in [
            Squeezer::BitDepth { bits: 3 },
            Squeezer::Binarize { threshold: 0.5 },
            Squeezer::TrimLow { threshold: 0.3 },
        ] {
            let once = squeezer.apply(&x);
            let twice = squeezer.apply(&once);
            assert_eq!(once, twice, "{squeezer:?} not idempotent");
        }
    }

    #[test]
    fn calibrated_detector_flags_advex_more_than_legit() {
        let (x, y, mal, clean) = dataset(12, 32);
        let net = trained_net(12, 20, &x, &y);
        let jsma = Jsma::new(0.3, 0.5);
        let (advex, _) = jsma.craft_batch(&net, &mal).unwrap();

        let legit = clean.vstack(&mal).unwrap();
        let det =
            SqueezeDetector::calibrate(net, Squeezer::Binarize { threshold: 0.25 }, &legit, 0.1)
                .unwrap();

        let legit_flags = det.flag_adversarial(&legit).unwrap();
        let legit_rate =
            legit_flags.iter().filter(|&&f| f).count() as f64 / legit_flags.len() as f64;
        assert!(legit_rate <= 0.2, "legit false alarms {legit_rate}");

        let adv_flags = det.flag_adversarial(&advex).unwrap();
        let adv_rate = adv_flags.iter().filter(|&&f| f).count() as f64 / adv_flags.len() as f64;
        assert!(
            adv_rate > legit_rate,
            "advex should be flagged more often: {adv_rate} vs {legit_rate}"
        );
    }

    #[test]
    fn threshold_zero_flags_any_difference() {
        let (x, y, mal, _) = dataset(12, 16);
        let net = trained_net(12, 21, &x, &y);
        let det = SqueezeDetector::new(net, Squeezer::Binarize { threshold: 0.25 }, 0.0);
        // Scores are non-negative; with threshold 0 anything > 0 flags.
        let scores = det.scores(&mal).unwrap();
        let flags = det.flag_adversarial(&mal).unwrap();
        for (s, f) in scores.iter().zip(flags) {
            assert_eq!(f, *s > 0.0);
        }
    }

    #[test]
    fn accessors_expose_configuration() {
        let (x, y, _, _) = dataset(12, 8);
        let net = trained_net(12, 22, &x, &y);
        let det = SqueezeDetector::new(net, Squeezer::BitDepth { bits: 2 }, 0.5);
        assert_eq!(det.threshold(), 0.5);
        assert_eq!(det.squeezer(), Squeezer::BitDepth { bits: 2 });
        assert_eq!(det.network().input_dim(), 12);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=16")]
    fn bad_bit_depth_panics() {
        Squeezer::BitDepth { bits: 0 }.apply(&Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "need legitimate samples")]
    fn calibrate_rejects_empty() {
        let (x, y, _, _) = dataset(12, 8);
        let net = trained_net(12, 23, &x, &y);
        let _ = SqueezeDetector::calibrate(
            net,
            Squeezer::Binarize { threshold: 0.5 },
            &Matrix::zeros(0, 12),
            0.05,
        );
    }
}

#[cfg(test)]
mod trim_tests {
    use super::*;

    #[test]
    fn trim_low_zeroes_small_values_only() {
        let x = maleva_linalg::Matrix::from_rows(&[vec![0.0, 0.1, 0.3, 0.9]]).unwrap();
        let sq = Squeezer::TrimLow { threshold: 0.25 }.apply(&x);
        assert_eq!(sq.row(0), &[0.0, 0.0, 0.3, 0.9]);
    }

    #[test]
    fn trim_low_removes_addonly_perturbation() {
        // A sparse small addition (the attack) is erased; heavy legit
        // counts survive.
        let legit = maleva_linalg::Matrix::from_rows(&[vec![0.8, 0.0, 0.6, 0.0]]).unwrap();
        let adv = maleva_linalg::Matrix::from_rows(&[vec![0.8, 0.15, 0.6, 0.15]]).unwrap();
        let sq = Squeezer::TrimLow { threshold: 0.2 };
        assert_eq!(sq.apply(&adv), sq.apply(&legit));
    }
}
