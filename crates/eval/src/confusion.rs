use serde::{Deserialize, Serialize};

/// A binary confusion matrix with the positive class = malware (label 1).
///
/// The paper's Table VI reports TPR (malware detected as malware) and TNR
/// (clean passed as clean) per dataset slice; this type computes all four
/// rates plus the usual derived metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Actual positive, predicted positive.
    pub tp: usize,
    /// Actual negative, predicted negative.
    pub tn: usize,
    /// Actual negative, predicted positive.
    pub fp: usize,
    /// Actual positive, predicted negative.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel label/prediction slices
    /// (1 = positive/malware, 0 = negative/clean).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or contain labels
    /// other than 0/1.
    pub fn from_predictions(actual: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(
            actual.len(),
            predicted.len(),
            "actual and predicted lengths differ"
        );
        let mut m = ConfusionMatrix::default();
        for (&a, &p) in actual.iter().zip(predicted.iter()) {
            assert!(a <= 1 && p <= 1, "labels must be 0 or 1 (got {a}, {p})");
            match (a, p) {
                (1, 1) => m.tp += 1,
                (0, 0) => m.tn += 1,
                (0, 1) => m.fp += 1,
                (1, 0) => m.fn_ += 1,
                _ => unreachable!(),
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// True positive rate (recall / detection rate): `TP / (TP + FN)`.
    /// `None` when there are no actual positives (the paper prints "nan").
    pub fn tpr(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// True negative rate: `TN / (TN + FP)`. `None` with no actual
    /// negatives.
    pub fn tnr(&self) -> Option<f64> {
        ratio(self.tn, self.tn + self.fp)
    }

    /// False positive rate: `FP / (FP + TN)`.
    pub fn fpr(&self) -> Option<f64> {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False negative rate: `FN / (FN + TP)`.
    pub fn fnr(&self) -> Option<f64> {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// Accuracy over all samples; `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        ratio(self.tp + self.tn, self.total())
    }

    /// Precision: `TP / (TP + FP)`; `None` with no predicted positives.
    pub fn precision(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 score; `None` when precision or recall is undefined or both are
    /// zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.tpr()?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

fn ratio(num: usize, den: usize) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn opt(v: Option<f64>) -> String {
            v.map(|x| format!("{x:.3}"))
                .unwrap_or_else(|| "nan".to_string())
        }
        write!(
            f,
            "TP={} TN={} FP={} FN={} | TPR={} TNR={} FPR={} FNR={}",
            self.tp,
            self.tn,
            self.fp,
            self.fn_,
            opt(self.tpr()),
            opt(self.tnr()),
            opt(self.fpr()),
            opt(self.fnr())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_predictions_counts_cells() {
        let actual = [1, 1, 0, 0, 1, 0];
        let predicted = [1, 0, 0, 1, 1, 0];
        let m = ConfusionMatrix::from_predictions(&actual, &predicted);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn rates() {
        let m = ConfusionMatrix {
            tp: 8,
            fn_: 2,
            tn: 9,
            fp: 1,
        };
        assert_eq!(m.tpr(), Some(0.8));
        assert_eq!(m.fnr(), Some(0.2));
        assert_eq!(m.tnr(), Some(0.9));
        assert_eq!(m.fpr(), Some(0.1));
        assert_eq!(m.accuracy(), Some(0.85));
        assert_eq!(m.precision(), Some(8.0 / 9.0));
        let f1 = m.f1().unwrap();
        assert!((f1 - (2.0 * (8.0 / 9.0) * 0.8 / ((8.0 / 9.0) + 0.8))).abs() < 1e-12);
    }

    #[test]
    fn undefined_rates_are_none_like_the_papers_nan() {
        // Malware-only slice: TNR is undefined (paper prints "nan").
        let m = ConfusionMatrix::from_predictions(&[1, 1, 1], &[1, 0, 1]);
        assert_eq!(m.tnr(), None);
        assert!((m.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Clean-only slice: TPR undefined.
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 1]);
        assert_eq!(m.tpr(), None);
        assert_eq!(m.tnr(), Some(0.5));
    }

    #[test]
    fn empty_matrix_is_all_none() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.tpr(), None);
        assert_eq!(m.accuracy(), None);
        assert_eq!(m.f1(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.tp, 2);
        assert_eq!(a.fn_, 8);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_predictions(&[1], &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "labels must be 0 or 1")]
    fn non_binary_labels_panic() {
        ConfusionMatrix::from_predictions(&[2], &[0]);
    }

    #[test]
    fn display_prints_nan_for_undefined() {
        let m = ConfusionMatrix::from_predictions(&[1, 1], &[1, 1]);
        let s = m.to_string();
        assert!(s.contains("TPR=1.000"));
        assert!(s.contains("TNR=nan"));
    }
}
