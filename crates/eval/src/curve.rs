use serde::{Deserialize, Serialize};

/// One named series of a security evaluation curve (e.g. "JSMA" vs
/// "random noise" in Figure 3, or "substitute" vs "target" in Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveSeries {
    /// Display name of the series.
    pub name: String,
    /// Y value (detection rate, or L2 distance for Figure 5) per strength
    /// point, aligned with the parent curve's `strength` vector.
    pub values: Vec<f64>,
}

/// A security evaluation curve: metric values as a function of attack
/// strength (the paper's Figures 3–5 are all instances of this shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityCurve {
    /// Name of the strength axis (`"gamma"` or `"theta"`).
    pub strength_label: String,
    /// Attack-strength values (x axis).
    pub strength: Vec<f64>,
    /// One or more named series (y values).
    pub series: Vec<CurveSeries>,
}

impl SecurityCurve {
    /// Creates an empty curve over the given strength axis.
    pub fn new(strength_label: impl Into<String>, strength: Vec<f64>) -> Self {
        SecurityCurve {
            strength_label: strength_label.into(),
            strength,
            series: Vec::new(),
        }
    }

    /// Adds a named series.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of strength
    /// points.
    pub fn push_series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.strength.len(),
            "series length must match strength axis"
        );
        self.series.push(CurveSeries {
            name: name.into(),
            values,
        });
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&CurveSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the curve as an aligned text table, one row per strength
    /// point — the form the `repro` binary prints for each figure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>10}", self.strength_label));
        for s in &self.series {
            out.push_str(&format!("  {:>18}", truncate(&s.name, 18)));
        }
        out.push('\n');
        for (i, &x) in self.strength.iter().enumerate() {
            out.push_str(&format!("{x:>10.4}"));
            for s in &self.series {
                out.push_str(&format!("  {:>18.4}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the curve as CSV (header row: strength label + series
    /// names; one data row per strength point) — the export format for
    /// replotting figures with external tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.strength_label);
        for s in &self.series {
            out.push(',');
            // Escape embedded commas/quotes per RFC 4180.
            if s.name.contains(',') || s.name.contains('"') {
                out.push('"');
                out.push_str(&s.name.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(&s.name);
            }
        }
        out.push('\n');
        for (i, &x) in self.strength.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push_str(&format!(",{}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Whether a series is monotonically non-increasing (within `tol`),
    /// the expected shape of a successful evasion curve.
    pub fn is_nonincreasing(&self, name: &str, tol: f64) -> Option<bool> {
        let s = self.series_named(name)?;
        Some(s.values.windows(2).all(|w| w[1] <= w[0] + tol))
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> SecurityCurve {
        let mut c = SecurityCurve::new("gamma", vec![0.0, 0.005, 0.01]);
        c.push_series("jsma", vec![0.9, 0.5, 0.1]);
        c.push_series("random", vec![0.9, 0.89, 0.9]);
        c
    }

    #[test]
    fn series_lookup() {
        let c = curve();
        assert_eq!(c.series_named("jsma").unwrap().values[2], 0.1);
        assert!(c.series_named("nope").is_none());
    }

    #[test]
    fn monotonicity_check() {
        let c = curve();
        assert_eq!(c.is_nonincreasing("jsma", 0.0), Some(true));
        assert_eq!(c.is_nonincreasing("random", 0.001), Some(false));
        assert_eq!(c.is_nonincreasing("random", 0.05), Some(true));
        assert_eq!(c.is_nonincreasing("nope", 0.0), None);
    }

    #[test]
    fn render_contains_all_points() {
        let text = curve().render();
        assert!(text.contains("gamma"));
        assert!(text.contains("jsma"));
        assert!(text.contains("0.0050"));
        assert!(text.contains("0.1000"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn csv_export_round_trips_values() {
        let text = curve().to_csv();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "gamma,jsma,random");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,"));
        assert!(lines[3].contains("0.1"));
    }

    #[test]
    fn csv_escapes_awkward_series_names() {
        let mut c = SecurityCurve::new("theta", vec![1.0]);
        c.push_series("a,b", vec![0.5]);
        let csv = c.to_csv();
        assert!(csv.starts_with("theta,\"a,b\""), "csv: {csv}");
    }

    #[test]
    #[should_panic(expected = "must match strength axis")]
    fn mismatched_series_panics() {
        let mut c = SecurityCurve::new("theta", vec![0.0, 0.1]);
        c.push_series("bad", vec![1.0]);
    }
}
