use std::error::Error;
use std::fmt;

/// Error type for metric computation over scores and labels.
///
/// The metric functions used to `assert!`/`expect` on these conditions;
/// a NaN score coming out of a diverged model would abort the whole
/// experiment sweep instead of failing the one evaluation that saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// `scores` and `labels` have different lengths.
    LengthMismatch {
        /// Number of scores supplied.
        scores: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A score is NaN, so no total order over thresholds exists.
    NanScore {
        /// Index of the first NaN score.
        index: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch { scores, labels } => {
                write!(f, "{scores} scores but {labels} labels")
            }
            EvalError::NanScore { index } => write!(f, "score at index {index} is NaN"),
        }
    }
}

impl Error for EvalError {}

/// Validates a scores/labels pair for metric computation: equal lengths
/// and no NaN scores.
pub(crate) fn validate_inputs(scores: &[f64], labels: &[usize]) -> Result<(), EvalError> {
    if scores.len() != labels.len() {
        return Err(EvalError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if let Some(index) = scores.iter().position(|s| s.is_nan()) {
        return Err(EvalError::NanScore { index });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = EvalError::LengthMismatch {
            scores: 3,
            labels: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = EvalError::NanScore { index: 7 };
        assert!(e.to_string().contains("index 7"));
    }

    #[test]
    fn validation_finds_the_first_nan() {
        assert_eq!(validate_inputs(&[0.1, 0.2], &[0, 1]), Ok(()));
        assert_eq!(
            validate_inputs(&[0.1], &[0, 1]),
            Err(EvalError::LengthMismatch {
                scores: 1,
                labels: 2
            })
        );
        assert_eq!(
            validate_inputs(&[0.1, f64::NAN, f64::NAN], &[0, 1, 1]),
            Err(EvalError::NanScore { index: 1 })
        );
    }
}
