//! Evaluation metrics for the `maleva` reproduction.
//!
//! The paper's metrics (Section II-D):
//!
//! * **attack evaluation** — the security evaluation curve (detection rate
//!   as a function of attack strength), the transfer rate, and L2
//!   perturbation distance;
//! * **defense evaluation** — the confusion matrix: TPR, TNR, FPR, FNR.
//!
//! This crate provides those plus ROC/AUC and plain-text table rendering
//! used by the `repro` binary to print every table and figure series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confusion;
mod curve;
mod error;
mod pr;
mod roc;
mod table;

pub use confusion::ConfusionMatrix;
pub use curve::{CurveSeries, SecurityCurve};
pub use error::EvalError;
pub use pr::{average_precision, pr_points, PrPoint};
pub use roc::{auc, roc_points, RocPoint};
pub use table::{fmt_rate, TextTable};

/// Detection rate: the fraction of (actual) positives predicted positive.
///
/// For a batch of malware samples this is the paper's headline number —
/// e.g. "the detection rate drops to 0.099" in the white-box attack.
/// Returns `None` for an empty batch.
pub fn detection_rate(predicted_positive: &[bool]) -> Option<f64> {
    if predicted_positive.is_empty() {
        return None;
    }
    Some(predicted_positive.iter().filter(|&&p| p).count() as f64 / predicted_positive.len() as f64)
}

/// Transfer rate of an attack: `1 − detection rate` of the target model on
/// adversarial examples crafted against a *different* (substitute) model.
/// Returns `None` for an empty batch.
pub fn transfer_rate(target_detected: &[bool]) -> Option<f64> {
    detection_rate(target_detected).map(|d| 1.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_rate_counts_positives() {
        assert_eq!(detection_rate(&[true, true, false, false]), Some(0.5));
        assert_eq!(detection_rate(&[true]), Some(1.0));
        assert_eq!(detection_rate(&[]), None);
    }

    #[test]
    fn transfer_rate_is_complement() {
        let detected = [true, false, false, false];
        assert_eq!(transfer_rate(&detected), Some(0.75));
        assert_eq!(transfer_rate(&[]), None);
    }
}
