//! Precision–recall analysis.
//!
//! ROC curves (see [`roc`](crate::roc_points)) can flatter a detector on
//! imbalanced data; the paper's test set is 64% malware, and deployment
//! corpora are far more skewed, so precision–recall is the complementary
//! view a production malware-detection evaluation needs.

use serde::{Deserialize, Serialize};

use crate::error::{validate_inputs, EvalError};

/// One operating point on a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Recall (true positive rate) at the threshold.
    pub recall: f64,
    /// Precision at the threshold.
    pub precision: f64,
}

/// Computes precision–recall points from scores (higher = more positive)
/// and binary labels (1 = positive), ordered by increasing recall.
///
/// Returns an empty vector when there are no positives.
///
/// # Errors
///
/// [`EvalError::LengthMismatch`] when scores and labels differ in
/// length, [`EvalError::NanScore`] when any score is NaN.
pub fn pr_points(scores: &[f64], labels: &[usize]) -> Result<Vec<PrPoint>, EvalError> {
    validate_inputs(scores, labels)?;
    let pos = labels.iter().filter(|&&l| l == 1).count();
    if pos == 0 {
        return Ok(Vec::new());
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // NaN was ruled out above, so the comparison is total.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut points = Vec::with_capacity(scores.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0usize;
    while i < order.len() {
        let thr = scores[order[i]];
        while i < order.len() && scores[order[i]] == thr {
            if labels[order[i]] == 1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(PrPoint {
            threshold: thr,
            recall: tp as f64 / pos as f64,
            precision: tp as f64 / (tp + fp) as f64,
        });
    }
    Ok(points)
}

/// Average precision: the area under the PR curve by the step-function
/// (sklearn-style) sum `Σ (Rᵢ − Rᵢ₋₁) · Pᵢ`. Returns `Ok(None)` when
/// there are no positives.
///
/// # Errors
///
/// [`EvalError::LengthMismatch`] when scores and labels differ in
/// length, [`EvalError::NanScore`] when any score is NaN.
pub fn average_precision(scores: &[f64], labels: &[usize]) -> Result<Option<f64>, EvalError> {
    let pts = pr_points(scores, labels)?;
    if pts.is_empty() {
        return Ok(None);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &pts {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    Ok(Some(ap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_ap_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((average_precision(&scores, &labels).unwrap().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_low_ap() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        // With both positives ranked last: AP = (0.5-0)*1/3 + (1-0.5)*2/4.
        let expected = 0.5 * (1.0 / 3.0) + 0.5 * 0.5;
        let ap = average_precision(&scores, &labels).unwrap().unwrap();
        assert!((ap - expected).abs() < 1e-12);
    }

    #[test]
    fn curve_ends_at_full_recall() {
        let scores = [0.7, 0.3, 0.6, 0.1];
        let labels = [1, 0, 0, 1];
        let pts = pr_points(&scores, &labels).unwrap();
        assert!((pts.last().unwrap().recall - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].recall >= w[0].recall, "recall must be nondecreasing");
        }
    }

    #[test]
    fn all_negative_labels_give_none() {
        assert_eq!(average_precision(&[0.5, 0.4], &[0, 0]), Ok(None));
        assert!(pr_points(&[0.5], &[0]).unwrap().is_empty());
    }

    #[test]
    fn ties_are_grouped() {
        let scores = [0.5, 0.5, 0.5];
        let labels = [1, 0, 1];
        let pts = pr_points(&scores, &labels).unwrap();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pts[0].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_inputs_are_a_typed_error() {
        assert_eq!(
            pr_points(&[0.1], &[1, 0]),
            Err(EvalError::LengthMismatch {
                scores: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn nan_scores_are_a_typed_error() {
        assert_eq!(
            average_precision(&[f64::NAN, 0.2], &[1, 0]),
            Err(EvalError::NanScore { index: 0 })
        );
    }
}
