use serde::{Deserialize, Serialize};

use crate::error::{validate_inputs, EvalError};

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False positive rate at the threshold.
    pub fpr: f64,
    /// True positive rate at the threshold.
    pub tpr: f64,
}

/// Computes ROC points from scores (higher = more positive) and binary
/// labels (1 = positive). Points are ordered by increasing FPR.
///
/// Returns an empty vector when either class is absent.
///
/// # Errors
///
/// [`EvalError::LengthMismatch`] when scores and labels differ in
/// length, [`EvalError::NanScore`] when any score is NaN.
pub fn roc_points(scores: &[f64], labels: &[usize]) -> Result<Vec<RocPoint>, EvalError> {
    validate_inputs(scores, labels)?;
    let pos = labels.iter().filter(|&&l| l == 1).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return Ok(Vec::new());
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // NaN was ruled out above, so the comparison is total.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut points = Vec::with_capacity(scores.len() + 1);
    let mut tp = 0usize;
    let mut fp = 0usize;
    points.push(RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    });
    let mut i = 0;
    while i < order.len() {
        let thr = scores[order[i]];
        // Consume all samples tied at this threshold together.
        while i < order.len() && scores[order[i]] == thr {
            if labels[order[i]] == 1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: thr,
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }
    Ok(points)
}

/// Area under the ROC curve by trapezoidal integration. Returns
/// `Ok(None)` when either class is absent.
///
/// # Errors
///
/// [`EvalError::LengthMismatch`] when scores and labels differ in
/// length, [`EvalError::NanScore`] when any score is NaN.
pub fn auc(scores: &[f64], labels: &[usize]) -> Result<Option<f64>, EvalError> {
    let pts = roc_points(scores, labels)?;
    if pts.is_empty() {
        return Ok(None);
    }
    let mut area = 0.0;
    for w in pts.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    Ok(Some(area))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((auc(&scores, &labels).unwrap().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        assert!(auc(&scores, &labels).unwrap().unwrap() < 1e-12);
    }

    #[test]
    fn random_interleaving_has_auc_half() {
        let scores = [0.4, 0.4, 0.4, 0.4];
        let labels = [1, 0, 1, 0];
        assert!((auc(&scores, &labels).unwrap().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_starts_at_origin_ends_at_one_one() {
        let scores = [0.7, 0.3, 0.6, 0.1];
        let labels = [1, 0, 0, 1];
        let pts = roc_points(&scores, &labels).unwrap();
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn degenerate_classes_yield_none() {
        assert_eq!(auc(&[0.5, 0.6], &[1, 1]), Ok(None));
        assert_eq!(auc(&[0.5, 0.6], &[0, 0]), Ok(None));
        assert!(roc_points(&[0.5], &[1]).unwrap().is_empty());
    }

    #[test]
    fn ties_are_handled_together() {
        // Two tied scores of opposite class: the ROC should move
        // diagonally, giving AUC 0.5.
        let scores = [0.5, 0.5];
        let labels = [1, 0];
        assert!((auc(&scores, &labels).unwrap().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mismatched_inputs_are_a_typed_error() {
        assert_eq!(
            auc(&[0.1], &[1, 0]),
            Err(EvalError::LengthMismatch {
                scores: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn nan_scores_are_a_typed_error() {
        assert_eq!(
            auc(&[0.3, f64::NAN, 0.2], &[1, 0, 1]),
            Err(EvalError::NanScore { index: 1 })
        );
        assert_eq!(
            roc_points(&[f64::NAN], &[1]),
            Err(EvalError::NanScore { index: 0 })
        );
    }
}
