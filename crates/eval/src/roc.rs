use serde::{Deserialize, Serialize};

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False positive rate at the threshold.
    pub fpr: f64,
    /// True positive rate at the threshold.
    pub tpr: f64,
}

/// Computes ROC points from scores (higher = more positive) and binary
/// labels (1 = positive). Points are ordered by increasing FPR.
///
/// Returns an empty vector when either class is absent.
pub fn roc_points(scores: &[f64], labels: &[usize]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l == 1).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));

    let mut points = Vec::with_capacity(scores.len() + 1);
    let mut tp = 0usize;
    let mut fp = 0usize;
    points.push(RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    });
    let mut i = 0;
    while i < order.len() {
        let thr = scores[order[i]];
        // Consume all samples tied at this threshold together.
        while i < order.len() && scores[order[i]] == thr {
            if labels[order[i]] == 1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: thr,
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }
    points
}

/// Area under the ROC curve by trapezoidal integration. Returns `None`
/// when either class is absent.
pub fn auc(scores: &[f64], labels: &[usize]) -> Option<f64> {
    let pts = roc_points(scores, labels);
    if pts.is_empty() {
        return None;
    }
    let mut area = 0.0;
    for w in pts.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    Some(area)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((auc(&scores, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        assert!(auc(&scores, &labels).unwrap() < 1e-12);
    }

    #[test]
    fn random_interleaving_has_auc_half() {
        let scores = [0.4, 0.4, 0.4, 0.4];
        let labels = [1, 0, 1, 0];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_starts_at_origin_ends_at_one_one() {
        let scores = [0.7, 0.3, 0.6, 0.1];
        let labels = [1, 0, 0, 1];
        let pts = roc_points(&scores, &labels);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn degenerate_classes_yield_none() {
        assert_eq!(auc(&[0.5, 0.6], &[1, 1]), None);
        assert_eq!(auc(&[0.5, 0.6], &[0, 0]), None);
        assert!(roc_points(&[0.5], &[1]).is_empty());
    }

    #[test]
    fn ties_are_handled_together() {
        // Two tied scores of opposite class: the ROC should move
        // diagonally, giving AUC 0.5.
        let scores = [0.5, 0.5];
        let labels = [1, 0];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        auc(&[0.1], &[1, 0]);
    }
}
