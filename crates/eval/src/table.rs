/// A minimal aligned-text table builder used by the `repro` binary to
/// print the paper's tables (I, IV, V, VI).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TextTable::default()
    }

    /// Sets the header row.
    pub fn header<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if a header was set and the row width differs from it.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        if !self.header.is_empty() {
            assert_eq!(
                row.len(),
                self.header.len(),
                "row width {} differs from header width {}",
                row.len(),
                self.header.len()
            );
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        if ncols == 0 {
            return String::new();
        }
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.header.is_empty() {
            render_row(&mut out, &self.header, &widths);
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }
}

fn render_row(out: &mut String, row: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let cell = row.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{cell:<width$}"));
    }
    // Trim trailing padding for clean diffs.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Formats an `Option<f64>` like the paper's Table VI ("nan" when a rate
/// is undefined for a slice).
pub fn fmt_rate(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}"))
        .unwrap_or_else(|| "nan".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new().header(["Name", "TPR", "TNR"]);
        t.row(["No Defense", "0.883", "nan"]);
        t.row(["AdvTraining", "0.931", "0.995"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "0.883" and "0.931" start at the same offset.
        let off2 = lines[2].find("0.883").unwrap();
        let off3 = lines[3].find("0.931").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn headerless_table_renders_rows_only() {
        let mut t = TextTable::new();
        t.row(["a", "b"]);
        let s = t.render();
        assert_eq!(s, "a  b\n");
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(TextTable::new().render(), "");
        assert!(TextTable::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn jagged_row_panics_with_header() {
        let mut t = TextTable::new().header(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn fmt_rate_matches_paper_style() {
        assert_eq!(fmt_rate(Some(0.8831)), "0.883");
        assert_eq!(fmt_rate(None), "nan");
    }
}
