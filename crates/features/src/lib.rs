//! Feature extraction for the `maleva` reproduction.
//!
//! The paper (Section II-A): *"The raw counts of the APIs were applied to
//! feature transformation and the values were normalized to \[0,1\]."* This
//! crate implements that pipeline and its variants:
//!
//! * [`CountTransform::Log1p`] — the default transformation (`ln(1+c)`),
//!   compressing heavy-tailed counts before scaling.
//! * [`CountTransform::Raw`] — no transformation, straight max-scaling.
//! * [`CountTransform::Binary`] — presence/absence features, the variant
//!   the second grey-box experiment's substitute model uses ("when the API
//!   appears, the feature value equals one").
//!
//! A [`FeaturePipeline`] is **fit on training data** (per-feature scale
//! denominators) and then applied to any batch, mirroring how the real
//! system's normalization constants are part of the (potentially secret)
//! feature engineering — which is exactly the knowledge gap grey-box
//! experiment 2 probes.
//!
//! # Example
//!
//! ```
//! use maleva_apisim::{World, WorldConfig, Class};
//! use maleva_features::{CountTransform, FeaturePipeline};
//!
//! let world = World::new(WorldConfig::default());
//! let mut rng = maleva_apisim::rng(7);
//! let programs = world.sample_batch(20, 20, &mut rng);
//!
//! let pipeline = FeaturePipeline::fit(CountTransform::Log1p, &programs);
//! let x = pipeline.transform_batch(&programs);
//! assert_eq!(x.shape(), (40, 491));
//! assert!(x.iter().all(|v| (0.0..=1.0).contains(&v)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use maleva_apisim::{ApiVocab, Program};
use maleva_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The count transformation applied before `[0,1]` scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CountTransform {
    /// `ln(1 + count)` — compresses heavy-tailed counts (default).
    #[default]
    Log1p,
    /// Raw counts, max-scaled.
    Raw,
    /// `1` if the API appears at all, else `0` (grey-box experiment 2's
    /// substitute features). Needs no fitted scale.
    Binary,
}

impl CountTransform {
    /// Applies the transformation to one raw count.
    pub fn apply(self, count: u32) -> f64 {
        match self {
            CountTransform::Log1p => (1.0 + count as f64).ln(),
            CountTransform::Raw => count as f64,
            CountTransform::Binary => {
                if count > 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Inverts the transformation, returning the (possibly fractional)
    /// count that would produce `value`. Binary inverts to 0/1.
    pub fn invert(self, value: f64) -> f64 {
        match self {
            CountTransform::Log1p => value.exp() - 1.0,
            CountTransform::Raw => value,
            CountTransform::Binary => {
                if value > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A fitted feature pipeline: transformation + per-feature scale.
///
/// Values are clamped into `[0, 1]`, so test samples exceeding the
/// training maximum saturate rather than escape the feature box (matching
/// the attack model, which perturbs within `[0, 1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturePipeline {
    transform: CountTransform,
    /// Per-feature denominators (transformed training maxima, floored at
    /// a small epsilon). `None` for [`CountTransform::Binary`].
    scale: Option<Vec<f64>>,
    dim: usize,
}

/// Minimum denominator so never-seen features do not divide by zero.
const MIN_SCALE: f64 = 1e-9;

impl FeaturePipeline {
    /// Fits the pipeline on training programs: records the per-feature
    /// maximum of the transformed counts.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or count vectors have differing
    /// lengths.
    pub fn fit(transform: CountTransform, programs: &[Program]) -> Self {
        assert!(!programs.is_empty(), "cannot fit a pipeline on no data");
        let dim = programs[0].counts().len();
        let scale = match transform {
            CountTransform::Binary => None,
            _ => {
                let mut maxs = vec![MIN_SCALE; dim];
                for p in programs {
                    assert_eq!(p.counts().len(), dim, "inconsistent count vector lengths");
                    for (m, &c) in maxs.iter_mut().zip(p.counts()) {
                        let v = transform.apply(c);
                        if v > *m {
                            *m = v;
                        }
                    }
                }
                Some(maxs)
            }
        };
        FeaturePipeline {
            transform,
            scale,
            dim,
        }
    }

    /// Fits on raw count slices instead of [`Program`]s.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or rows have differing lengths.
    pub fn fit_counts(transform: CountTransform, counts: &[Vec<u32>]) -> Self {
        assert!(!counts.is_empty(), "cannot fit a pipeline on no data");
        let dim = counts[0].len();
        let scale = match transform {
            CountTransform::Binary => None,
            _ => {
                let mut maxs = vec![MIN_SCALE; dim];
                for row in counts {
                    assert_eq!(row.len(), dim, "inconsistent count vector lengths");
                    for (m, &c) in maxs.iter_mut().zip(row) {
                        let v = transform.apply(c);
                        if v > *m {
                            *m = v;
                        }
                    }
                }
                Some(maxs)
            }
        };
        FeaturePipeline {
            transform,
            scale,
            dim,
        }
    }

    /// The transformation this pipeline applies.
    pub fn transform_kind(&self) -> CountTransform {
        self.transform
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Transforms one count vector into a `[0,1]` feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the fitted dimensionality.
    pub fn transform_counts(&self, counts: &[u32]) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.dim,
            "expected {} counts, got {}",
            self.dim,
            counts.len()
        );
        match &self.scale {
            None => counts.iter().map(|&c| self.transform.apply(c)).collect(),
            Some(scale) => counts
                .iter()
                .zip(scale.iter())
                .map(|(&c, &s)| (self.transform.apply(c) / s).clamp(0.0, 1.0))
                .collect(),
        }
    }

    /// Transforms a batch of programs into a feature matrix (one row per
    /// program).
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or has inconsistent count lengths.
    pub fn transform_batch(&self, programs: &[Program]) -> Matrix {
        assert!(!programs.is_empty(), "empty batch");
        let rows: Vec<Vec<f64>> = programs
            .iter()
            .map(|p| self.transform_counts(p.counts()))
            .collect();
        Matrix::from_rows(&rows).expect("uniform feature rows")
    }

    /// Cross-vocabulary path: renders each program's log with
    /// `generating_vocab`, re-parses it against `target_vocab`, and
    /// transforms the resulting counts. This is how an attacker whose
    /// feature vocabulary differs from the defender's actually sees the
    /// data (grey-box experiment 2 / black-box framework).
    ///
    /// # Panics
    ///
    /// Panics if `target_vocab.len()` differs from the fitted
    /// dimensionality.
    pub fn transform_via_logs(
        &self,
        programs: &[Program],
        generating_vocab: &ApiVocab,
        target_vocab: &ApiVocab,
    ) -> Matrix {
        assert_eq!(
            target_vocab.len(),
            self.dim,
            "pipeline fitted for {} features but target vocabulary has {}",
            self.dim,
            target_vocab.len()
        );
        let rows: Vec<Vec<f64>> = programs
            .iter()
            .map(|p| {
                let text = p.render_log(generating_vocab);
                let counts = maleva_apisim::log::parse_counts(&text, target_vocab);
                self.transform_counts(&counts)
            })
            .collect();
        Matrix::from_rows(&rows).expect("uniform feature rows")
    }

    /// How many additional raw API calls are needed to move feature `i`
    /// from its current count to the feature value `target` (clamped to
    /// `[0,1]`). Returns 0 when the target is at or below the current
    /// feature value. Binary features need exactly 1 call if currently
    /// absent.
    ///
    /// This is the bridge from a feature-space perturbation (what JSMA
    /// produces) back to the paper's "add API calls in the source code"
    /// action.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn calls_needed(&self, i: usize, current_count: u32, target: f64) -> u32 {
        assert!(i < self.dim, "feature index {i} out of range");
        let target = target.clamp(0.0, 1.0);
        match &self.scale {
            None => {
                if target > 0.0 && current_count == 0 {
                    1
                } else {
                    0
                }
            }
            Some(scale) => {
                let current = (self.transform.apply(current_count) / scale[i]).clamp(0.0, 1.0);
                if target <= current {
                    return 0;
                }
                let needed_transformed = target * scale[i];
                let needed_count = self.transform.invert(needed_transformed).ceil();
                (needed_count as i64 - current_count as i64).max(0) as u32
            }
        }
    }

    /// Borrows the fitted per-feature scale denominators (`None` for
    /// binary pipelines).
    pub fn scale(&self) -> Option<&[f64]> {
        self.scale.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_apisim::{World, WorldConfig};

    fn sample_programs(n: usize, seed: u64) -> Vec<Program> {
        let world = World::new(WorldConfig::default());
        let mut rng = maleva_apisim::rng(seed);
        world.sample_batch(n / 2, n - n / 2, &mut rng)
    }

    #[test]
    fn transforms_apply_and_invert() {
        assert_eq!(CountTransform::Raw.apply(7), 7.0);
        assert_eq!(CountTransform::Binary.apply(0), 0.0);
        assert_eq!(CountTransform::Binary.apply(9), 1.0);
        assert!((CountTransform::Log1p.apply(0)).abs() < 1e-12);
        for c in [0u32, 1, 5, 100] {
            let t = CountTransform::Log1p;
            assert!((t.invert(t.apply(c)) - c as f64).abs() < 1e-9);
        }
        assert_eq!(CountTransform::Binary.invert(1.0), 1.0);
        assert_eq!(CountTransform::Binary.invert(0.0), 0.0);
    }

    #[test]
    fn fitted_pipeline_outputs_unit_interval() {
        let programs = sample_programs(30, 1);
        for t in [
            CountTransform::Log1p,
            CountTransform::Raw,
            CountTransform::Binary,
        ] {
            let p = FeaturePipeline::fit(t, &programs);
            let x = p.transform_batch(&programs);
            assert!(
                x.iter().all(|v| (0.0..=1.0).contains(&v)),
                "{t:?} produced out-of-range values"
            );
        }
    }

    #[test]
    fn training_max_maps_to_one() {
        let programs = sample_programs(30, 2);
        let p = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        let x = p.transform_batch(&programs);
        // At least one feature hits exactly 1.0 (the max sample).
        let max = x.iter().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_larger_counts_saturate() {
        let programs = sample_programs(10, 3);
        let p = FeaturePipeline::fit(CountTransform::Raw, &programs);
        let mut huge = programs[0].counts().to_vec();
        for c in huge.iter_mut() {
            *c = c.saturating_mul(1000).saturating_add(1000);
        }
        let f = p.transform_counts(&huge);
        assert!(f.iter().all(|&v| v <= 1.0));
        assert!(f.iter().any(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn binary_pipeline_is_presence_indicator() {
        let programs = sample_programs(10, 4);
        let p = FeaturePipeline::fit(CountTransform::Binary, &programs);
        let f = p.transform_counts(programs[0].counts());
        for (v, &c) in f.iter().zip(programs[0].counts()) {
            assert_eq!(*v, if c > 0 { 1.0 } else { 0.0 });
        }
        assert!(p.scale().is_none());
    }

    #[test]
    fn fit_counts_matches_fit_programs() {
        let programs = sample_programs(12, 5);
        let counts: Vec<Vec<u32>> = programs.iter().map(|p| p.counts().to_vec()).collect();
        let a = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        let b = FeaturePipeline::fit_counts(CountTransform::Log1p, &counts);
        assert_eq!(a, b);
    }

    #[test]
    fn via_logs_matches_direct_transform_for_same_vocab() {
        let world = World::default();
        let mut rng = maleva_apisim::rng(6);
        let programs = world.sample_batch(4, 4, &mut rng);
        let p = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        let direct = p.transform_batch(&programs);
        let via = p.transform_via_logs(&programs, world.vocab(), world.vocab());
        assert_eq!(direct, via);
    }

    #[test]
    fn via_logs_loses_information_across_vocabularies() {
        let world = World::default();
        let mut rng = maleva_apisim::rng(7);
        let programs = world.sample_batch(3, 3, &mut rng);
        let attacker_vocab = ApiVocab::attacker_guess(0.5);
        let counts: Vec<Vec<u32>> = programs
            .iter()
            .map(|p| {
                maleva_apisim::log::parse_counts(&p.render_log(world.vocab()), &attacker_vocab)
            })
            .collect();
        let p = FeaturePipeline::fit_counts(CountTransform::Binary, &counts);
        let x = p.transform_via_logs(&programs, world.vocab(), &attacker_vocab);
        assert_eq!(x.cols(), attacker_vocab.len());
        // Some mass must be lost: attacker features see fewer distinct APIs
        // than the full vocabulary path.
        let full =
            FeaturePipeline::fit(CountTransform::Binary, &programs).transform_batch(&programs);
        assert!(x.sum() < full.sum());
    }

    #[test]
    fn calls_needed_round_trips_through_transform() {
        let programs = sample_programs(20, 8);
        let p = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        let i = 42;
        let current = 3u32;
        let target = 0.8;
        let add = p.calls_needed(i, current, target);
        if add > 0 {
            let f = p.transform_counts(&{
                let mut c = vec![0u32; p.dim()];
                c[i] = current + add;
                c
            });
            assert!(
                f[i] >= target - 1e-9,
                "after adding {add} calls, f = {}",
                f[i]
            );
        }
    }

    #[test]
    fn calls_needed_is_zero_when_target_already_met() {
        let programs = sample_programs(10, 9);
        let p = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        assert_eq!(p.calls_needed(0, 50, 0.0), 0);
    }

    #[test]
    fn calls_needed_binary_semantics() {
        let programs = sample_programs(10, 10);
        let p = FeaturePipeline::fit(CountTransform::Binary, &programs);
        assert_eq!(p.calls_needed(5, 0, 0.7), 1);
        assert_eq!(p.calls_needed(5, 2, 0.7), 0);
        assert_eq!(p.calls_needed(5, 0, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn fit_rejects_empty() {
        FeaturePipeline::fit(CountTransform::Log1p, &[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn transform_rejects_wrong_width() {
        let programs = sample_programs(4, 11);
        let p = FeaturePipeline::fit(CountTransform::Log1p, &programs);
        p.transform_counts(&[1, 2, 3]);
    }
}
