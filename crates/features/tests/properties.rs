//! Property-based tests for the feature pipeline: range, monotonicity,
//! and the feature↔API-call bridge.

use maleva_apisim::{Family, OsVersion, Program};
use maleva_features::{CountTransform, FeaturePipeline};
use proptest::prelude::*;

const DIM: usize = 16;

fn counts_vec() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..200, DIM)
}

fn programs(rows: Vec<Vec<u32>>) -> Vec<Program> {
    rows.into_iter()
        .map(|c| Program::new(Family::Office, OsVersion::Win10, c))
        .collect()
}

fn transforms() -> impl Strategy<Value = CountTransform> {
    prop::sample::select(vec![
        CountTransform::Raw,
        CountTransform::Log1p,
        CountTransform::Binary,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn output_is_always_in_unit_interval(train in prop::collection::vec(counts_vec(), 1..8),
                                         probe in counts_vec(),
                                         t in transforms()) {
        let pipeline = FeaturePipeline::fit(t, &programs(train));
        let f = pipeline.transform_counts(&probe);
        prop_assert!(f.iter().all(|v| (0.0..=1.0).contains(v)), "{t:?}: {f:?}");
    }

    #[test]
    fn transform_is_monotone_in_counts(train in prop::collection::vec(counts_vec(), 1..8),
                                       base in counts_vec(),
                                       idx in 0usize..DIM,
                                       add in 1u32..100,
                                       t in transforms()) {
        // Adding API calls can never *decrease* any feature — the property
        // the add-only attack relies on.
        let pipeline = FeaturePipeline::fit(t, &programs(train));
        let lo = pipeline.transform_counts(&base);
        let mut bumped = base.clone();
        bumped[idx] = bumped[idx].saturating_add(add);
        let hi = pipeline.transform_counts(&bumped);
        for (l, h) in lo.iter().zip(hi.iter()) {
            prop_assert!(h + 1e-12 >= *l);
        }
    }

    #[test]
    fn zero_counts_map_to_zero_features(train in prop::collection::vec(counts_vec(), 1..8),
                                        t in transforms()) {
        let pipeline = FeaturePipeline::fit(t, &programs(train));
        let f = pipeline.transform_counts(&[0u32; DIM]);
        prop_assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn calls_needed_reaches_the_target(train in prop::collection::vec(counts_vec(), 2..8),
                                       current in 0u32..50,
                                       idx in 0usize..DIM,
                                       target in 0.0f64..1.0) {
        let pipeline = FeaturePipeline::fit(CountTransform::Log1p, &programs(train));
        let add = pipeline.calls_needed(idx, current, target);
        let mut counts = vec![0u32; DIM];
        counts[idx] = current + add;
        let f = pipeline.transform_counts(&counts);
        if add > 0 {
            prop_assert!(
                f[idx] + 1e-9 >= target.min(1.0),
                "after {add} calls feature is {} < target {target}",
                f[idx]
            );
        }
    }

    #[test]
    fn calls_needed_is_minimal_for_raw(train in prop::collection::vec(counts_vec(), 2..8),
                                       idx in 0usize..DIM,
                                       target in 0.05f64..1.0) {
        let pipeline = FeaturePipeline::fit(CountTransform::Raw, &programs(train));
        let add = pipeline.calls_needed(idx, 0, target);
        prop_assume!(add > 1);
        // One call fewer must miss the target.
        let mut counts = vec![0u32; DIM];
        counts[idx] = add - 1;
        let f = pipeline.transform_counts(&counts);
        prop_assert!(f[idx] < target, "calls_needed not minimal: {} >= {target} with {add}-1 calls", f[idx]);
    }

    #[test]
    fn binary_pipeline_equals_presence(train in prop::collection::vec(counts_vec(), 1..6),
                                       probe in counts_vec()) {
        let pipeline = FeaturePipeline::fit(CountTransform::Binary, &programs(train));
        let f = pipeline.transform_counts(&probe);
        for (v, &c) in f.iter().zip(probe.iter()) {
            prop_assert_eq!(*v, if c > 0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn fit_is_order_insensitive(mut rows in prop::collection::vec(counts_vec(), 2..8)) {
        let a = FeaturePipeline::fit_counts(CountTransform::Log1p, &rows);
        rows.reverse();
        let b = FeaturePipeline::fit_counts(CountTransform::Log1p, &rows);
        prop_assert_eq!(a, b); // max-based scaling ignores sample order
    }
}
