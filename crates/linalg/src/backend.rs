//! Pluggable dispatch for the dense-product hot path.
//!
//! Every GEMM-family product in the workspace — `nn` forward/backward
//! and `input_jacobian`, `stats::covariance`, `pca` transforms, the
//! serve scoring path — goes through [`Matrix::matmul`] /
//! [`Matrix::matmul_tn`] / [`Matrix::matmul_nt`] / [`Matrix::gemv`],
//! and those methods dispatch through the process-wide
//! [`LinalgBackend`] selected here. Swapping the backend swaps the
//! kernel under the entire workload at once; nothing else in the
//! workspace names a concrete kernel.
//!
//! Backend resolution, in priority order (mirroring
//! [`pool::set_threads`]):
//!
//! 1. [`set_backend`] — programmatic override (the CLI `--backend`
//!    flags call this), `None` clears it;
//! 2. the `MALEVA_BACKEND` environment variable (`scalar`, `blocked`,
//!    `pooled`, `simd`; unparseable values are ignored, like
//!    `MALEVA_THREADS`);
//! 3. the default, [`BackendKind::Pooled`] — the seed behavior.
//!
//! # Contract
//!
//! | backend   | precision | vs scalar reference        | parallel      |
//! |-----------|-----------|----------------------------|---------------|
//! | `Scalar`  | f64       | *is* the reference         | never         |
//! | `Blocked` | f64       | bit-identical              | never         |
//! | `Pooled`  | f64       | bit-identical              | large matmuls |
//! | `Simd`    | f32       | ≤ 1e-5 relative tolerance  | large matmuls |
//!
//! All four are deterministic: given the same operands (and for
//! `Pooled`/`Simd`, any thread count) they return the same bytes on
//! every run. The differential proptest suite
//! (`tests/backend_differential.rs`) pins both columns of the contract.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{kernels, pool, simd, LinalgError, Matrix};

/// The four product shapes every backend must implement.
///
/// Implementations own their dimension checks (through the shared
/// helpers in `kernels`), so the typed
/// [`LinalgError::DimensionMismatch`] a caller sees is identical no
/// matter which backend is active.
pub trait LinalgBackend: Send + Sync {
    /// Which [`BackendKind`] this implementation is.
    fn kind(&self) -> BackendKind;

    /// Matrix product `a * b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `a.cols() != b.rows()`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError>;

    /// Transposed-left product `aᵀ * b` (no transpose materialized).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `a.rows() != b.rows()`.
    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError>;

    /// Transposed-right product `a * bᵀ` (no transpose materialized).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `a.cols() != b.cols()`.
    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError>;

    /// Matrix-vector product `a * x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != a.cols()`.
    fn gemv(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError>;
}

/// Names one of the built-in [`LinalgBackend`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The plain i-k-j f64 reference kernel — slow, and the definition
    /// of correct for everything else.
    Scalar,
    /// Cache-blocked f64, single-threaded, bit-identical to `Scalar`.
    Blocked,
    /// `Blocked` plus row-partitioned pool dispatch for large matmuls;
    /// bit-identical to `Scalar` at every thread count. The default.
    Pooled,
    /// f32 panel micro-kernels written to autovectorize; deterministic,
    /// within 1e-5 relative tolerance of `Scalar`.
    Simd,
}

impl BackendKind {
    /// All selectable kinds, in documentation order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Scalar,
        BackendKind::Blocked,
        BackendKind::Pooled,
        BackendKind::Simd,
    ];

    /// The lowercase name `--backend` / `MALEVA_BACKEND` accept.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Blocked => "blocked",
            BackendKind::Pooled => "pooled",
            BackendKind::Simd => "simd",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(BackendKind::Scalar),
            "blocked" => Ok(BackendKind::Blocked),
            "pooled" => Ok(BackendKind::Pooled),
            "simd" => Ok(BackendKind::Simd),
            other => Err(format!(
                "unknown backend `{other}` (expected scalar|blocked|pooled|simd)"
            )),
        }
    }
}

/// `0` means "no override"; otherwise `BackendKind as usize + 1`.
static BACKEND_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn kind_to_tag(kind: BackendKind) -> usize {
    match kind {
        BackendKind::Scalar => 1,
        BackendKind::Blocked => 2,
        BackendKind::Pooled => 3,
        BackendKind::Simd => 4,
    }
}

fn tag_to_kind(tag: usize) -> Option<BackendKind> {
    match tag {
        1 => Some(BackendKind::Scalar),
        2 => Some(BackendKind::Blocked),
        3 => Some(BackendKind::Pooled),
        4 => Some(BackendKind::Simd),
        _ => None,
    }
}

/// Overrides the backend every `Matrix` product dispatches through
/// (`None` clears the override and falls back to `MALEVA_BACKEND` /
/// the `Pooled` default). Called once at startup by `--backend` flags;
/// takes effect for all subsequent products process-wide.
pub fn set_backend(kind: Option<BackendKind>) {
    BACKEND_OVERRIDE.store(kind.map_or(0, kind_to_tag), Ordering::SeqCst);
}

/// The [`BackendKind`] products will dispatch through right now. See
/// the module docs for the resolution order.
pub fn effective_kind() -> BackendKind {
    if let Some(kind) = tag_to_kind(BACKEND_OVERRIDE.load(Ordering::SeqCst)) {
        return kind;
    }
    if let Ok(raw) = std::env::var("MALEVA_BACKEND") {
        if let Ok(kind) = raw.parse::<BackendKind>() {
            return kind;
        }
    }
    BackendKind::Pooled
}

/// The active backend instance ([`effective_kind`] resolved to its
/// implementation). This is what `Matrix` products call.
pub fn active() -> &'static dyn LinalgBackend {
    of(effective_kind())
}

/// The backend instance for `kind`, independent of the process-wide
/// selection — tests and benchmarks use this to compare backends
/// side-by-side without mutating global state.
pub fn of(kind: BackendKind) -> &'static dyn LinalgBackend {
    match kind {
        BackendKind::Scalar => &Scalar,
        BackendKind::Blocked => &Blocked,
        BackendKind::Pooled => &Pooled,
        BackendKind::Simd => &Simd,
    }
}

/// The f64 reference backend: every product is routed through the
/// scalar i-k-j kernel (transposes materialized where needed), so its
/// output *defines* what `Blocked` and `Pooled` must reproduce bitwise.
pub struct Scalar;

impl LinalgBackend for Scalar {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::matmul_scalar(a, b)
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::check_tn_dims(a, b)?;
        kernels::matmul_scalar(&a.transpose(), b)
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::check_nt_dims(a, b)?;
        kernels::matmul_scalar(a, &b.transpose())
    }

    fn gemv(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        kernels::check_gemv_dims(a, x)?;
        Ok(kernels::matmul_scalar(a, &Matrix::col_vector(x))?.into_vec())
    }
}

/// Cache-blocked f64, always single-threaded. Bit-identical to
/// [`Scalar`] (proven by the differential suite).
pub struct Blocked;

impl LinalgBackend for Blocked {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::matmul_blocked(a, b)
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::check_tn_dims(a, b)?;
        let mut out = Matrix::zeros(a.cols(), b.cols());
        kernels::matmul_tn_into(
            a.as_slice(),
            a.rows(),
            a.cols(),
            b.as_slice(),
            b.cols(),
            out.as_mut_slice(),
        );
        Ok(out)
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        kernels::check_nt_dims(a, b)?;
        let mut out = Matrix::zeros(a.rows(), b.rows());
        kernels::matmul_nt_into(
            a.as_slice(),
            a.rows(),
            a.cols(),
            b.as_slice(),
            b.rows(),
            out.as_mut_slice(),
        );
        Ok(out)
    }

    fn gemv(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        kernels::check_gemv_dims(a, x)?;
        let mut out = vec![0.0; a.rows()];
        kernels::gemv_into(a.as_slice(), a.rows(), a.cols(), x, &mut out);
        Ok(out)
    }
}

/// The default backend: [`Blocked`] kernels, with large matmuls
/// row-partitioned over the shared pool
/// ([`pool::parallel_worthwhile`] decides, sized by
/// [`pool::effective_threads`]). Bit-identical to [`Scalar`] at every
/// thread count. The transpose-free and gemv products are always
/// single-threaded (their panel sizes in this workload never reach the
/// threshold).
pub struct Pooled;

impl LinalgBackend for Pooled {
    fn kind(&self) -> BackendKind {
        BackendKind::Pooled
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        let work = a.rows() * a.cols() * b.cols();
        if pool::parallel_worthwhile(work) {
            kernels::matmul_pooled(a, b, pool::effective_threads())
        } else {
            kernels::matmul_blocked(a, b)
        }
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        Blocked.matmul_tn(a, b)
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        Blocked.matmul_nt(a, b)
    }

    fn gemv(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Blocked.gemv(a, x)
    }
}

/// The f32 panel micro-kernel backend (DESIGN.md §13): deterministic,
/// within 1e-5 relative tolerance of [`Scalar`], and the fastest
/// option on SIMD-capable hardware.
pub struct Simd;

impl LinalgBackend for Simd {
    fn kind(&self) -> BackendKind {
        BackendKind::Simd
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        simd::matmul(a, b)
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        simd::matmul_tn(a, b)
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
        simd::matmul_nt(a, b)
    }

    fn gemv(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        simd::gemv(a, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_parse_and_name() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(tag_to_kind(kind_to_tag(kind)), Some(kind));
        }
        assert_eq!(" SIMD ".parse::<BackendKind>().unwrap(), BackendKind::Simd);
        assert!("blas".parse::<BackendKind>().is_err());
        assert!("".parse::<BackendKind>().is_err());
    }

    #[test]
    fn of_returns_the_matching_backend() {
        for kind in BackendKind::ALL {
            assert_eq!(of(kind).kind(), kind);
        }
    }

    // `set_backend` / `effective_kind` resolution is pinned in the
    // `backend_differential` integration test, which owns its own
    // process — flipping the process-global override here would race
    // the bit-exactness unit tests running in parallel threads.
}
