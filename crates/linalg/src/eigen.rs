//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (the paper's dimensionality-reduction defense, K = 19) needs the
//! eigenvectors of a feature covariance matrix. The cyclic Jacobi method is
//! simple, numerically robust for symmetric matrices, and deterministic —
//! which matters more here than raw speed, since the covariance matrix is
//! only 491 x 491.

use crate::{LinalgError, Matrix};

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as [`Eigen::values`].
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

/// Convergence threshold on the off-diagonal Frobenius norm.
const OFF_DIAG_TOL: f64 = 1e-10;

/// Computes the eigendecomposition of a symmetric matrix using cyclic
/// Jacobi rotations.
///
/// Eigenvalues/eigenvectors are returned sorted by descending eigenvalue,
/// the order PCA wants its principal components in.
///
/// # Errors
///
/// * [`LinalgError::Empty`] if `a` is 0 x 0.
/// * [`LinalgError::DimensionMismatch`] if `a` is not square.
/// * [`LinalgError::MalformedData`] if `a` is not symmetric (tolerance
///   `1e-9` relative to the largest element).
/// * [`LinalgError::NoConvergence`] if the sweep budget is exhausted
///   (practically unreachable for well-formed covariance matrices).
///
/// # Example
///
/// ```
/// use maleva_linalg::{Matrix, eigen::symmetric_eigen};
///
/// # fn main() -> Result<(), maleva_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]])?;
/// let e = symmetric_eigen(&a)?;
/// assert!((e.values[0] - 2.0).abs() < 1e-12);
/// assert!((e.values[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<Eigen, LinalgError> {
    let (n, m) = a.shape();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if n != m {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: a.shape(),
        });
    }
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-9 * scale {
                return Err(LinalgError::MalformedData {
                    detail: format!("matrix not symmetric at ({i}, {j})"),
                });
            }
        }
    }

    let mut d = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&d);
        if off < OFF_DIAG_TOL * scale {
            return Ok(sorted_eigen(d, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = d.get(p, q);
                if apq.abs() <= f64::EPSILON * scale {
                    continue;
                }
                let app = d.get(p, p);
                let aqq = d.get(q, q);
                // Classic Jacobi rotation angle selection.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(&mut d, &mut v, p, q, c, s);
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

/// Frobenius norm of the strictly upper triangle (symmetric, so this is
/// half the off-diagonal mass — adequate as a convergence measure).
fn off_diagonal_norm(d: &Matrix) -> f64 {
    let n = d.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let v = d.get(i, j);
            sum += v * v;
        }
    }
    sum.sqrt()
}

/// Applies the rotation `J(p, q, θ)` as `d ← Jᵀ d J`, `v ← v J`.
fn apply_rotation(d: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = d.rows();
    for k in 0..n {
        let dkp = d.get(k, p);
        let dkq = d.get(k, q);
        d.set(k, p, c * dkp - s * dkq);
        d.set(k, q, s * dkp + c * dkq);
    }
    for k in 0..n {
        let dpk = d.get(p, k);
        let dqk = d.get(q, k);
        d.set(p, k, c * dpk - s * dqk);
        d.set(q, k, s * dpk + c * dqk);
    }
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

/// Extracts eigenvalues from the (now nearly diagonal) matrix and sorts
/// value/vector pairs by descending eigenvalue.
fn sorted_eigen(d: Matrix, v: Matrix) -> Eigen {
    let n = d.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| d.get(i, i)).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("NaN eigenvalue"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    Eigen {
        values: sorted_values,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut lambda = Matrix::zeros(n, n);
        for (i, &v) in e.values.iter().enumerate() {
            lambda.set(i, i, v);
        }
        e.vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // eigenvector for 3 is (1,1)/sqrt(2)
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, 0.2, 0.1],
            vec![0.5, 0.2, 2.0, 0.3],
            vec![0.0, 0.1, 0.3, 1.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let r = reconstruct(&e);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (a.get(i, j) - r.get(i, j)).abs() < 1e-8,
                    "mismatch at ({i},{j}): {} vs {}",
                    a.get(i, j),
                    r.get(i, j)
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            symmetric_eigen(&a).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a).unwrap_err(),
            LinalgError::MalformedData { .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(
            symmetric_eigen(&a).unwrap_err(),
            LinalgError::Empty
        ));
    }

    #[test]
    fn handles_1x1() {
        let a = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert_eq!(e.vectors.get(0, 0).abs(), 1.0);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_fn(6, 6, |i, j| {
            if i == j {
                (i + 1) as f64
            } else {
                0.1 * ((i + j) as f64)
            }
        });
        // symmetrize
        let s = a.add_matrix(&a.transpose()).unwrap().scale(0.5);
        let e = symmetric_eigen(&s).unwrap();
        let trace: f64 = (0..6).map(|i| s.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }
}
