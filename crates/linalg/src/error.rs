use std::error::Error;
use std::fmt;

/// Error type returned by fallible linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries the two offending `(rows, cols)` shapes.
    DimensionMismatch {
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
    },
    /// A matrix constructor was given data whose length does not match the
    /// requested shape, or rows of unequal length.
    MalformedData {
        /// Human-readable description of what was malformed.
        detail: String,
    },
    /// An operation that requires a non-empty matrix received an empty one.
    Empty,
    /// An iterative algorithm (e.g. the Jacobi eigensolver) failed to
    /// converge within its sweep budget.
    NoConvergence {
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// An index was out of bounds for the matrix shape.
    OutOfBounds {
        /// The offending index `(row, col)`.
        index: (usize, usize),
        /// The matrix shape `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A value that must be finite was NaN or ±Inf.
    NonFinite {
        /// What was being checked ("loss", "gradient", "weights", ...).
        label: String,
        /// Flat index of the first offending element.
        index: usize,
        /// The offending value, rendered as a string (NaN/inf survive
        /// formatting but not JSON).
        value: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::MalformedData { detail } => {
                write!(f, "malformed matrix data: {detail}")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::NonFinite {
                label,
                index,
                value,
            } => write!(f, "non-finite value {value} in {label} at index {index}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence { iterations: 64 };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
