//! Cache-blocked, optionally pool-parallel matrix kernels.
//!
//! Every kernel here preserves one invariant to the bit: **each output
//! element accumulates its products in ascending-`k` order, skipping
//! terms whose left-operand element is exactly `0.0`, starting from
//! `0.0`.** That is precisely what the original scalar i-k-j kernel
//! ([`matmul_scalar`], kept as the reference) does, so the blocked and
//! pooled kernels — and the transpose-free [`Matrix::matmul_tn`] /
//! [`Matrix::matmul_nt`] paths built on them — return bit-identical
//! results for every shape, blocking parameter, and thread count.
//! Reordering *rows*, *columns*, or `k`-*panels* never reorders the
//! additions that feed a single output element, which is the only thing
//! IEEE-754 rounding cares about.
//!
//! Blocking scheme (sized for common L1/L2 caches; see DESIGN.md §10):
//!
//! * `MR = 4` output rows are produced together so each streamed row of
//!   `b` is used four times per load;
//! * `MC = 64` rows form the outer row panel (the panel of `out` being
//!   accumulated stays resident);
//! * `KC = 256` limits the `k`-panel so the `b` panel (`KC x NC` f64s)
//!   fits in L2;
//! * `NC = 512` limits the column panel for the same reason.
//!
//! Parallel dispatch partitions **output rows** into `threads`
//! contiguous chunks: chunk 0 runs on the calling thread, the rest are
//! shipped to the shared [`pool`] as owned copies (the
//! right-hand side is shared behind one `Arc`'d copy). Chunks are glued
//! back by index, so scheduling order cannot affect the result.

use std::sync::mpsc::channel;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use maleva_obs::metrics::{Counter, Histogram};

use crate::pool::{self, Job};
use crate::{LinalgError, Matrix};

/// Output rows produced together by the register-blocked inner kernel.
pub const MR: usize = 4;
/// Rows per outer panel (the `out` panel under accumulation stays hot).
pub const MC: usize = 64;
/// Maximum `k`-panel depth.
pub const KC: usize = 256;
/// Maximum column-panel width.
pub const NC: usize = 512;

/// Re-export of the canonical dispatch threshold, which lives in
/// [`pool`] next to the worker machinery it sizes work for (see
/// [`pool::parallel_worthwhile`]).
pub use crate::pool::PARALLEL_WORK_THRESHOLD;

fn gemm_metrics() -> &'static (Arc<Counter>, Arc<Histogram>) {
    static METRICS: OnceLock<(Arc<Counter>, Arc<Histogram>)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = maleva_obs::metrics::global();
        (
            registry.counter(
                "linalg_gemm_calls_total",
                "Total GEMM-family kernel dispatches (matmul, matmul_tn, matmul_nt, gemv)",
            ),
            registry.histogram(
                "linalg_gemm_latency_us",
                "Per-call GEMM-family kernel latency in microseconds",
            ),
        )
    })
}

/// Records one GEMM-family dispatch in the global obs registry.
pub(crate) fn record_gemm_call(start: Instant) {
    let (calls, latency) = gemm_metrics();
    calls.inc();
    latency.record_duration_us(start.elapsed());
}

/// Dimension check for `a * b` (`a.cols == b.rows`), shared by every
/// backend so the typed error is identical regardless of dispatch.
pub(crate) fn check_matmul_dims(a: &Matrix, b: &Matrix) -> Result<(), LinalgError> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(())
}

/// Dimension check for `aᵀ * b` (`a.rows == b.rows`), reporting the
/// *untransposed* shapes the caller passed.
pub(crate) fn check_tn_dims(a: &Matrix, b: &Matrix) -> Result<(), LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(())
}

/// Dimension check for `a * bᵀ` (`a.cols == b.cols`).
pub(crate) fn check_nt_dims(a: &Matrix, b: &Matrix) -> Result<(), LinalgError> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(())
}

/// Dimension check for `a * x` (`x.len == a.cols`); the vector is
/// reported as an `(len, 1)` column shape.
pub(crate) fn check_gemv_dims(a: &Matrix, x: &[f64]) -> Result<(), LinalgError> {
    if x.len() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: a.shape(),
            right: (x.len(), 1),
        });
    }
    Ok(())
}

/// The original scalar i-k-j kernel, kept verbatim as the bit-exactness
/// reference for the blocked and pooled kernels (proptests compare
/// against this).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_scalar(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    check_matmul_dims(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let out_row = &mut out_data[i * n..(i + 1) * n];
        for (kx, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b_data[kx * n..(kx + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    }
    Ok(out)
}

/// Cache-blocked single-threaded matmul, bit-identical to
/// [`matmul_scalar`].
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    check_matmul_dims(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    block_into(a.as_slice(), m, k, b.as_slice(), n, out.as_mut_slice());
    Ok(out)
}

/// Cache-blocked matmul partitioned over `threads` row chunks on the
/// shared worker pool, bit-identical to [`matmul_scalar`] for every
/// thread count.
///
/// Chunk 0 is computed on the calling thread; chunks `1..threads` own a
/// copy of their `a` rows plus a shared copy of `b` and run on the pool.
/// `threads` is clamped to `[1, min(rows, MAX_POOL_WORKERS)]`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Panics
///
/// Panics if a pool worker's chunk panicked (numeric kernels cannot
/// panic themselves; this guards pool integrity bugs).
pub fn matmul_pooled(a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix, LinalgError> {
    check_matmul_dims(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let threads = threads.clamp(1, pool::MAX_POOL_WORKERS).min(m.max(1));
    if threads <= 1 {
        return matmul_blocked(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    let chunk_rows = m.div_ceil(threads);
    let b_shared: Arc<Vec<f64>> = Arc::new(b.as_slice().to_vec());
    let (tx, rx) = channel::<(usize, Vec<f64>)>();
    let mut jobs: Vec<Job> = Vec::with_capacity(threads - 1);
    let mut row0 = chunk_rows; // chunk 0 stays on the calling thread
    let mut chunk_idx = 0usize;
    while row0 < m {
        let rows_here = chunk_rows.min(m - row0);
        let a_block = a.as_slice()[row0 * k..(row0 + rows_here) * k].to_vec();
        let b_arc = Arc::clone(&b_shared);
        let tx_chunk = tx.clone();
        jobs.push(Box::new(move || {
            let mut local = vec![0.0; rows_here * n];
            block_into(&a_block, rows_here, k, &b_arc, n, &mut local);
            let _ = tx_chunk.send((chunk_idx, local));
        }));
        row0 += rows_here;
        chunk_idx += 1;
    }
    drop(tx);
    let submitted = jobs.len();
    pool::submit(jobs);

    let rows0 = chunk_rows.min(m);
    block_into(
        &a.as_slice()[..rows0 * k],
        rows0,
        k,
        b.as_slice(),
        n,
        &mut out.as_mut_slice()[..rows0 * n],
    );

    for _ in 0..submitted {
        let (idx, local) = rx
            .recv()
            .expect("linalg pool worker dropped its matmul chunk (worker panic)");
        let begin = (idx + 1) * chunk_rows;
        out.as_mut_slice()[begin * n..begin * n + local.len()].copy_from_slice(&local);
    }
    Ok(out)
}

/// The blocked inner kernel: `out (m x n) += a (m x k) * b (k x n)` over
/// flat row-major slices, with `out` assumed zeroed. Accumulation order
/// per output element is ascending `k` with `a == 0.0` skip — identical
/// to the scalar reference.
fn block_into(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for ii in (0..m).step_by(MC) {
        let im = MC.min(m - ii);
        for jj in (0..n).step_by(NC) {
            let jn = NC.min(n - jj);
            for kk in (0..k).step_by(KC) {
                let kn = KC.min(k - kk);
                let mut i = ii;
                while i + MR <= ii + im {
                    // Four disjoint output-row windows for register reuse.
                    let (r0, rest) = out[i * n..].split_at_mut(n);
                    let (r1, rest) = rest.split_at_mut(n);
                    let (r2, rest) = rest.split_at_mut(n);
                    let (r3, _) = rest.split_at_mut(n);
                    let o0 = &mut r0[jj..jj + jn];
                    let o1 = &mut r1[jj..jj + jn];
                    let o2 = &mut r2[jj..jj + jn];
                    let o3 = &mut r3[jj..jj + jn];
                    for kx in kk..kk + kn {
                        let a0 = a[i * k + kx];
                        let a1 = a[(i + 1) * k + kx];
                        let a2 = a[(i + 2) * k + kx];
                        let a3 = a[(i + 3) * k + kx];
                        let b_row = &b[kx * n + jj..kx * n + jj + jn];
                        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                            for (j, &bv) in b_row.iter().enumerate() {
                                o0[j] += a0 * bv;
                                o1[j] += a1 * bv;
                                o2[j] += a2 * bv;
                                o3[j] += a3 * bv;
                            }
                        } else {
                            // Per-row zero skip keeps scalar semantics
                            // (a `0.0 * b` term is *omitted*, not added).
                            if a0 != 0.0 {
                                for (o, &bv) in o0.iter_mut().zip(b_row.iter()) {
                                    *o += a0 * bv;
                                }
                            }
                            if a1 != 0.0 {
                                for (o, &bv) in o1.iter_mut().zip(b_row.iter()) {
                                    *o += a1 * bv;
                                }
                            }
                            if a2 != 0.0 {
                                for (o, &bv) in o2.iter_mut().zip(b_row.iter()) {
                                    *o += a2 * bv;
                                }
                            }
                            if a3 != 0.0 {
                                for (o, &bv) in o3.iter_mut().zip(b_row.iter()) {
                                    *o += a3 * bv;
                                }
                            }
                        }
                    }
                    i += MR;
                }
                // Row tail (< MR rows left in this panel).
                while i < ii + im {
                    let o = &mut out[i * n + jj..i * n + jj + jn];
                    for kx in kk..kk + kn {
                        let av = a[i * k + kx];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[kx * n + jj..kx * n + jj + jn];
                        for (ov, &bv) in o.iter_mut().zip(b_row.iter()) {
                            *ov += av * bv;
                        }
                    }
                    i += 1;
                }
            }
        }
    }
}

/// `a^T * b` without materializing the transpose: `a` is `(r x ca)`,
/// `b` is `(r x cb)`, the result is `(ca x cb)`.
///
/// Bit-identical to `a.transpose().matmul(b)`: output element `(i, j)`
/// accumulates `a[k, i] * b[k, j]` for ascending `k`, skipping
/// `a[k, i] == 0.0`, exactly as the scalar kernel would after a
/// transpose. Output rows are processed in `MC`-wide panels so the
/// accumulating panel stays cache-resident.
pub(crate) fn matmul_tn_into(
    a: &[f64],
    rows: usize,
    ca: usize,
    b: &[f64],
    cb: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), rows * ca);
    debug_assert_eq!(b.len(), rows * cb);
    debug_assert_eq!(out.len(), ca * cb);
    for ii in (0..ca).step_by(MC) {
        let iend = (ii + MC).min(ca);
        for kx in 0..rows {
            let a_row = &a[kx * ca..(kx + 1) * ca];
            let b_row = &b[kx * cb..(kx + 1) * cb];
            for i in ii..iend {
                let v = a_row[i];
                if v == 0.0 {
                    continue;
                }
                let o = &mut out[i * cb..(i + 1) * cb];
                for (ov, &bv) in o.iter_mut().zip(b_row.iter()) {
                    *ov += v * bv;
                }
            }
        }
    }
}

/// `a * b^T` without materializing the transpose: `a` is `(ra x c)`,
/// `b` is `(rb x c)`, the result is `(ra x rb)`.
///
/// Bit-identical to `a.matmul(&b.transpose())`: output element `(i, j)`
/// is the dot product of row `i` of `a` and row `j` of `b`, accumulated
/// in ascending `k` with the `a[i, k] == 0.0` skip. Rows of `b` are
/// visited in `MC`-wide panels so the panel being dotted stays
/// cache-resident.
pub(crate) fn matmul_nt_into(
    a: &[f64],
    ra: usize,
    c: usize,
    b: &[f64],
    rb: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), ra * c);
    debug_assert_eq!(b.len(), rb * c);
    debug_assert_eq!(out.len(), ra * rb);
    for jj in (0..rb).step_by(MC) {
        let jend = (jj + MC).min(rb);
        for i in 0..ra {
            let a_row = &a[i * c..(i + 1) * c];
            let o = &mut out[i * rb..(i + 1) * rb];
            for j in jj..jend {
                let b_row = &b[j * c..(j + 1) * c];
                let mut acc = 0.0;
                for (kx, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * b_row[kx];
                }
                o[j] = acc;
            }
        }
    }
}

/// Matrix-vector product `a * x` over flat slices; `out[i]` accumulates
/// `a[i, k] * x[k]` in ascending `k`, skipping `a[i, k] == 0.0` — the
/// same order [`matmul_scalar`] uses with a one-column right-hand side.
pub(crate) fn gemv_into(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(out.len(), m);
    for (i, o) in out.iter_mut().enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0;
        for (kx, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            acc += av * x[kx];
        }
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed.wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 33) as f64 / (1u64 << 31) as f64;
            if u < 0.15 {
                0.0 // exercise the zero-skip path
            } else {
                u - 0.5
            }
        })
    }

    fn assert_bit_identical(x: &Matrix, y: &Matrix, what: &str) {
        assert_eq!(x.shape(), y.shape(), "{what}: shape mismatch");
        for (a, b) in x.iter().zip(y.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: value mismatch");
        }
    }

    #[test]
    fn blocked_matches_scalar_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (5, 3, 9),
            (63, 17, 65),
            (64, 256, 512),
            (65, 257, 513),
            (130, 31, 7),
        ] {
            let a = mat(m, k, (m * 1000 + k) as u64);
            let b = mat(k, n, (k * 1000 + n) as u64);
            let reference = matmul_scalar(&a, &b).unwrap();
            let blocked = matmul_blocked(&a, &b).unwrap();
            assert_bit_identical(&reference, &blocked, "blocked");
        }
    }

    #[test]
    fn pooled_matches_scalar_for_every_thread_count() {
        let a = mat(37, 23, 7);
        let b = mat(23, 19, 8);
        let reference = matmul_scalar(&a, &b).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let pooled = matmul_pooled(&a, &b, threads).unwrap();
            assert_bit_identical(&reference, &pooled, "pooled");
        }
    }

    #[test]
    fn degenerate_shapes_work() {
        let a = Matrix::zeros(0, 5);
        let b = mat(5, 3, 1);
        assert_eq!(matmul_blocked(&a, &b).unwrap().shape(), (0, 3));
        assert_eq!(matmul_pooled(&a, &b, 4).unwrap().shape(), (0, 3));
        let a1 = mat(1, 1, 2);
        let b1 = mat(1, 1, 3);
        let r = matmul_scalar(&a1, &b1).unwrap();
        assert_bit_identical(&r, &matmul_blocked(&a1, &b1).unwrap(), "1x1");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul_scalar(&a, &b).is_err());
        assert!(matmul_blocked(&a, &b).is_err());
        assert!(matmul_pooled(&a, &b, 4).is_err());
    }

    #[test]
    fn tn_matches_transpose_then_matmul() {
        let a = mat(29, 13, 11);
        let b = mat(29, 17, 12);
        let reference = matmul_scalar(&a.transpose(), &b).unwrap();
        let mut out = Matrix::zeros(13, 17);
        matmul_tn_into(a.as_slice(), 29, 13, b.as_slice(), 17, out.as_mut_slice());
        assert_bit_identical(&reference, &out, "tn");
    }

    #[test]
    fn nt_matches_matmul_then_transpose() {
        let a = mat(21, 15, 13);
        let b = mat(33, 15, 14);
        let reference = matmul_scalar(&a, &b.transpose()).unwrap();
        let mut out = Matrix::zeros(21, 33);
        matmul_nt_into(a.as_slice(), 21, 15, b.as_slice(), 33, out.as_mut_slice());
        assert_bit_identical(&reference, &out, "nt");
    }

    #[test]
    fn gemv_matches_one_column_matmul() {
        let a = mat(19, 27, 15);
        let x: Vec<f64> = (0..27).map(|i| (i as f64 * 0.73).sin()).collect();
        let reference = matmul_scalar(&a, &Matrix::col_vector(&x)).unwrap();
        let mut out = vec![0.0; 19];
        gemv_into(a.as_slice(), 19, 27, &x, &mut out);
        for (r, o) in reference.iter().zip(out.iter()) {
            assert_eq!(r.to_bits(), o.to_bits());
        }
    }
}
