//! Dense linear-algebra kernels for the `maleva` adversarial-malware toolkit.
//!
//! This crate is the numeric substrate for every other `maleva` crate. It is
//! deliberately small, dependency-free (no BLAS), and deterministic: all
//! operations are plain `f64` loops so that experiment results are exactly
//! reproducible across machines.
//!
//! # What lives here
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the arithmetic needed
//!   by a feed-forward neural network (matmul, transpose, broadcasting row
//!   ops, elementwise maps).
//! * [`backend`] — the [`LinalgBackend`] trait and the process-wide
//!   backend selection ([`set_backend`] / `MALEVA_BACKEND`) that
//!   [`Matrix::matmul`], [`Matrix::matmul_tn`], [`Matrix::matmul_nt`] and
//!   [`Matrix::gemv`] dispatch through: `scalar`, `blocked`, `pooled`
//!   (the bit-identical f64 family, `pooled` default) and `simd` (the
//!   f32 panel micro-kernel, 1e-5-tolerance contract).
//! * [`kernels`] — cache-blocked matmul/GEMV kernels (plus the scalar
//!   reference they are proven bit-identical to) that the f64 backends
//!   are built from.
//! * [`pool`] — the shared worker pool large products are partitioned
//!   over, sized by `MALEVA_THREADS` / [`pool::set_threads`].
//! * [`norm`] — L1/L2/L∞ norms and distances used by attack-strength and
//!   feature-squeezing measurements.
//! * [`stats`] — column means, variances, covariance matrices.
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices.
//! * [`pca`] — principal component analysis built on [`eigen`], used by the
//!   dimensionality-reduction defense.
//!
//! # Example
//!
//! ```
//! use maleva_linalg::Matrix;
//!
//! # fn main() -> Result<(), maleva_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod eigen;
mod error;
pub mod kernels;
mod matrix;
pub mod norm;
pub mod pca;
pub mod pool;
mod simd;
pub mod stats;

pub use backend::{set_backend, BackendKind, LinalgBackend};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use pca::Pca;
