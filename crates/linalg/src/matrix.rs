use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse type of the `maleva` numeric stack: feature
/// batches, network weights, Jacobians and covariance matrices are all
/// `Matrix` values. A batch of `n` samples with `m` features is stored as an
/// `n x m` matrix (one sample per row), matching the paper's convention of
/// 491-dimensional API-count feature vectors.
///
/// # Example
///
/// ```
/// use maleva_linalg::Matrix;
///
/// # fn main() -> Result<(), maleva_linalg::LinalgError> {
/// let batch = Matrix::from_rows(&[vec![0.0, 0.5, 1.0], vec![1.0, 0.0, 0.25]])?;
/// assert_eq!(batch.shape(), (2, 3));
/// assert_eq!(batch.get(1, 2), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// ```
    /// use maleva_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert!(z.iter().all(|v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    ///
    /// ```
    /// use maleva_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
    /// assert_eq!(m.get(1, 0), 10.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::MalformedData`] if the rows have differing
    /// lengths, and [`LinalgError::Empty`] if `rows` is empty or the rows
    /// themselves are empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let n = rows.len();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let m = rows[0].len();
        if m == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(n * m);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(LinalgError::MalformedData {
                    detail: format!("row {i} has length {}, expected {m}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: n,
            cols: m,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::MalformedData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::MalformedData {
                detail: format!(
                    "flat data has length {}, expected {} ({rows}x{cols})",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a single-row matrix from a slice (a "row vector").
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a single-column matrix from a slice (a "column vector").
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// The `(rows, cols)` shape of the matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Iterates over the rows of the matrix as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix product `self * rhs`.
    ///
    /// Dispatches through the process-wide [`crate::backend`] selected
    /// by `--backend` / `MALEVA_BACKEND` /
    /// [`backend::set_backend`](crate::backend::set_backend). Under the
    /// f64 backends (`scalar`, `blocked`, and the default `pooled`,
    /// which partitions large products across the shared worker pool
    /// sized by `MALEVA_THREADS` /
    /// [`pool::set_threads`](crate::pool::set_threads)) each output
    /// element's summation order is fixed (ascending `k`, zero-skip),
    /// so results are **bit-identical** to the scalar reference kernel
    /// regardless of blocking or thread count. The `simd` backend is
    /// deterministic but f32-precision: within 1e-5 relative tolerance
    /// of the reference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let start = std::time::Instant::now();
        let out = crate::backend::active().matmul(self, rhs)?;
        crate::kernels::record_gemm_call(start);
        Ok(out)
    }

    /// Transposed-left product `selfᵀ * rhs` without materializing the
    /// transpose (the backprop weight-gradient and covariance shape),
    /// dispatched through the active [`crate::backend`].
    ///
    /// Bit-identical to `self.transpose().matmul(rhs)` under every
    /// backend (for `simd`, both routes produce the same f32 result).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let start = std::time::Instant::now();
        let out = crate::backend::active().matmul_tn(self, rhs)?;
        crate::kernels::record_gemm_call(start);
        Ok(out)
    }

    /// Transposed-right product `self * rhsᵀ` without materializing the
    /// transpose (the backprop input-gradient shape), dispatched
    /// through the active [`crate::backend`].
    ///
    /// Bit-identical to `self.matmul(&rhs.transpose())` under the f64
    /// backends; within the `simd` tolerance contract otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let start = std::time::Instant::now();
        let out = crate::backend::active().matmul_nt(self, rhs)?;
        crate::kernels::record_gemm_call(start);
        Ok(out)
    }

    /// Matrix-vector product `self * x`, dispatched through the active
    /// [`crate::backend`].
    ///
    /// Bit-identical to `self.matmul(&Matrix::col_vector(x))` flattened
    /// to a vector under the f64 backends; within the `simd` tolerance
    /// contract otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `x.len() != self.cols()`.
    pub fn gemv(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let start = std::time::Instant::now();
        let out = crate::backend::active().gemv(self, x)?;
        crate::kernels::record_gemm_call(start);
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add_matrix(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub_matrix(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product `self ∘ rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        rhs: &Matrix,
        f: F,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|v| v * k)
    }

    /// Adds a row vector to every row (broadcast), as used for bias addition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `bias.len() != cols()`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Result<Matrix, LinalgError> {
        if bias.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Sums each column, producing a length-`cols()` vector.
    ///
    /// This is the reduction used for bias gradients.
    pub fn sum_rows(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sums each row, producing a length-`rows()` vector.
    pub fn sum_cols(&self) -> Vec<f64> {
        self.rows_iter().map(|row| row.iter().sum()).collect()
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Returns a new matrix keeping only the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// The index of the maximum element of each row (argmax per row).
    ///
    /// Ties resolve to the lowest index, matching `argmax` conventions.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Matrix {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().enumerate() {
            if i >= max_rows {
                writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
                break;
            }
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                if j >= 8 {
                    write!(f, "...")?;
                    break;
                }
                write!(f, "{v:.4}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::add_matrix`] for a fallible
    /// version.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs)
            .expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::sub_matrix`] for a fallible
    /// version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, k: f64) -> Matrix {
        self.scale(k)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows(&[vec![a, b], vec![c, d]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.iter().all(|v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0]]).unwrap(); // 1x3
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap(); // 3x1
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.get(0, 0), 7.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::MalformedData { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::Empty
        ));
        assert!(matches!(
            Matrix::from_rows(&[vec![]]).unwrap_err(),
            LinalgError::Empty
        ));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err(),
            LinalgError::MalformedData { .. }
        ));
    }

    #[test]
    fn add_sub_hadamard() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(10.0, 20.0, 30.0, 40.0);
        assert_eq!(a.add_matrix(&b).unwrap(), m22(11.0, 22.0, 33.0, 44.0));
        assert_eq!(b.sub_matrix(&a).unwrap(), m22(9.0, 18.0, 27.0, 36.0));
        assert_eq!(a.hadamard(&b).unwrap(), m22(10.0, 40.0, 90.0, 160.0));
    }

    #[test]
    fn operator_sugar() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(1.0, 1.0, 1.0, 1.0);
        assert_eq!(&a + &b, m22(2.0, 3.0, 4.0, 5.0));
        assert_eq!(&a - &b, m22(0.0, 1.0, 2.0, 3.0));
        assert_eq!(&a * 2.0, m22(2.0, 4.0, 6.0, 8.0));
        assert_eq!(-&a, m22(-1.0, -2.0, -3.0, -4.0));
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_broadcast(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(a.sum_rows(), vec![9.0, 12.0]);
        assert_eq!(a.sum_cols(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.sum(), 21.0);
    }

    #[test]
    fn argmax_rows_with_ties() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.5, 0.5], vec![0.7, 0.3]]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn select_rows_and_vstack() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
        let v = s.vstack(&a).unwrap();
        assert_eq!(v.rows(), 5);
        assert!(s.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn clamp_and_max_abs() {
        let a = m22(-2.0, 0.5, 3.0, -0.25);
        assert_eq!(a.max_abs(), 3.0);
        let c = a.clamp(0.0, 1.0);
        assert_eq!(c, m22(0.0, 0.5, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        Matrix::zeros(1, 1).clamp(1.0, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn serde_traits_present() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Matrix>();
    }

    #[test]
    fn row_col_accessors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }
}

#[cfg(test)]
mod parallel_matmul_tests {
    use super::*;

    #[test]
    fn large_product_matches_scalar_reference_exactly() {
        // 200x200x200 = 8M work units: crosses the pooled-dispatch
        // threshold, so this exercises worker-pool assembly.
        let a = Matrix::from_fn(200, 200, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.1 - 0.6);
        let b = Matrix::from_fn(200, 200, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
        let big = a.matmul(&b).unwrap();
        let reference = crate::kernels::matmul_scalar(&a, &b).unwrap();
        for (x, y) in big.iter().zip(reference.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rectangular_large_product_is_correct() {
        let a = Matrix::from_fn(300, 64, |i, j| (i + j) as f64 * 0.01);
        let b = Matrix::from_fn(64, 256, |i, j| (i as f64 - j as f64) * 0.01);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (300, 256));
        // Spot-check one entry against a manual dot product.
        let manual: f64 = (0..64).map(|k| a.get(123, k) * b.get(k, 200)).sum();
        assert_eq!(c.get(123, 200), manual);
    }

    #[test]
    fn transpose_free_products_match_explicit_transposes() {
        let a = Matrix::from_fn(40, 23, |i, j| ((i * 13 + j * 7) % 9) as f64 * 0.2 - 0.8);
        let b = Matrix::from_fn(40, 31, |i, j| ((i * 5 + j * 11) % 7) as f64 * 0.25 - 0.7);
        let tn = a.matmul_tn(&b).unwrap();
        let tn_ref = a.transpose().matmul(&b).unwrap();
        assert_eq!(tn, tn_ref);

        let c = Matrix::from_fn(12, 23, |i, j| (i as f64 - j as f64) * 0.05);
        let nt = c.matmul_nt(&a).unwrap();
        let nt_ref = c.matmul(&a.transpose()).unwrap();
        assert_eq!(nt, nt_ref);

        assert!(a.matmul_tn(&c).is_err());
        assert!(a.matmul_nt(&b).is_err());
    }

    #[test]
    fn gemv_matches_column_matmul() {
        let a = Matrix::from_fn(9, 14, |i, j| ((i * 3 + j) % 5) as f64 * 0.3 - 0.6);
        let x: Vec<f64> = (0..14).map(|i| (i as f64 * 0.41).cos()).collect();
        let y = a.gemv(&x).unwrap();
        let reference = a.matmul(&Matrix::col_vector(&x)).unwrap();
        assert_eq!(y, reference.into_vec());
        assert!(a.gemv(&[1.0]).is_err());
    }
}
