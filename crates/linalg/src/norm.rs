//! Vector norms and distances.
//!
//! The paper uses the **L2 norm** to measure perturbation size (Figure 5)
//! and the **L1 norm** between prediction vectors for the feature-squeezing
//! defense's adversarial-example detector. This module provides both plus
//! the L∞ norm for completeness.
//!
//! All functions operate on slices; batch variants live on
//! [`Matrix`] via [`pairwise_l2_mean`].
//!
//! [`Matrix`]: crate::Matrix

use crate::Matrix;

/// L1 norm `Σ|xᵢ|` of a vector.
///
/// ```
/// assert_eq!(maleva_linalg::norm::l1(&[3.0, -4.0]), 7.0);
/// ```
pub fn l1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm `sqrt(Σxᵢ²)` of a vector.
///
/// ```
/// assert_eq!(maleva_linalg::norm::l2(&[3.0, -4.0]), 5.0);
/// ```
pub fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L∞ norm `max|xᵢ|` of a vector; 0 for an empty slice.
pub fn linf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// True iff every element is finite (no NaN, no ±Inf). True for an
/// empty slice.
///
/// ```
/// assert!(maleva_linalg::norm::all_finite(&[0.0, -1.5]));
/// assert!(!maleva_linalg::norm::all_finite(&[0.0, f64::NAN]));
/// ```
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// L1 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// L∞ distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "linf_distance length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Mean row-wise L2 distance between two batches of the same shape.
///
/// Used for the Figure 5 "malware ↔ adversarial example" distance where
/// rows correspond (sample i of `a` pairs with sample i of `b`).
///
/// Returns `None` if the shapes differ or the batches are empty.
pub fn rowwise_l2_mean(a: &Matrix, b: &Matrix) -> Option<f64> {
    if a.shape() != b.shape() || a.rows() == 0 {
        return None;
    }
    let total: f64 = a
        .rows_iter()
        .zip(b.rows_iter())
        .map(|(ra, rb)| l2_distance(ra, rb))
        .sum();
    Some(total / a.rows() as f64)
}

/// Mean L2 distance over all cross pairs of rows from `a` and `b`,
/// subsampled to at most `max_pairs` pairs in a deterministic stride
/// pattern.
///
/// Used for the Figure 5 "malware ↔ clean" and "clean ↔ adversarial"
/// distances, where the two batches have no row correspondence. Exact
/// all-pairs evaluation is quadratic; a deterministic stride subsample keeps
/// the estimate reproducible without an RNG.
///
/// Returns `None` if either batch is empty or the column counts differ.
pub fn pairwise_l2_mean(a: &Matrix, b: &Matrix, max_pairs: usize) -> Option<f64> {
    if a.rows() == 0 || b.rows() == 0 || a.cols() != b.cols() || max_pairs == 0 {
        return None;
    }
    let total_pairs = a.rows().saturating_mul(b.rows());
    let stride = (total_pairs / max_pairs).max(1);
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut k = 0usize;
    while k < total_pairs {
        let i = k / b.rows();
        let j = k % b.rows();
        sum += l2_distance(a.row(i), b.row(j));
        count += 1;
        k += stride;
    }
    Some(sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_l2_linf_basic() {
        let v = [1.0, -2.0, 2.0];
        assert_eq!(l1(&v), 5.0);
        assert_eq!(l2(&v), 3.0);
        assert_eq!(linf(&v), 2.0);
    }

    #[test]
    fn empty_norms_are_zero() {
        assert_eq!(l1(&[]), 0.0);
        assert_eq!(l2(&[]), 0.0);
        assert_eq!(linf(&[]), 0.0);
    }

    #[test]
    fn distances_basic() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(l1_distance(&a, &b), 7.0);
        assert_eq!(l2_distance(&a, &b), 5.0);
        assert_eq!(linf_distance(&a, &b), 4.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [1.5, -2.5, 0.0];
        assert_eq!(l1_distance(&a, &a), 0.0);
        assert_eq!(l2_distance(&a, &a), 0.0);
        assert_eq!(linf_distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn l2_distance_length_mismatch_panics() {
        l2_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rowwise_mean() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(rowwise_l2_mean(&a, &b), Some(2.5));
        let c = Matrix::zeros(1, 2);
        assert_eq!(rowwise_l2_mean(&a, &c), None);
    }

    #[test]
    fn pairwise_mean_exhaustive_when_budget_large() {
        let a = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0]]).unwrap();
        // pairs: |0-1|=1, |2-1|=1 -> mean 1.0
        assert_eq!(pairwise_l2_mean(&a, &b, 100), Some(1.0));
    }

    #[test]
    fn pairwise_mean_subsampled_is_finite() {
        let a = Matrix::from_fn(20, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(20, 3, |r, c| (r * c) as f64);
        let m = pairwise_l2_mean(&a, &b, 10).unwrap();
        assert!(m.is_finite() && m >= 0.0);
    }

    #[test]
    fn pairwise_mean_edge_cases() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert_eq!(pairwise_l2_mean(&a, &b, 10), None);
        assert_eq!(pairwise_l2_mean(&a, &a, 0), None);
    }
}
