//! Principal component analysis.
//!
//! The paper's fourth defense (Section II-C-4, Table VI row "DimReduct")
//! projects the 491-dimensional API feature space onto its first K = 19
//! principal components and trains the classifier on the reduced input,
//! restricting the attacker to perturbations expressible in that subspace.
//!
//! [`Pca`] is fit on a training batch and can then [`transform`], and
//! [`inverse_transform`] any batch with the same feature count.
//!
//! [`transform`]: Pca::transform
//! [`inverse_transform`]: Pca::inverse_transform

use serde::{Deserialize, Serialize};

use crate::eigen::symmetric_eigen;
use crate::{stats, LinalgError, Matrix};

/// A fitted PCA projection.
///
/// # Example
///
/// ```
/// use maleva_linalg::{Matrix, Pca};
///
/// # fn main() -> Result<(), maleva_linalg::LinalgError> {
/// // Points on the line y = 2x: one dominant component.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.0],
///     vec![1.0, 2.0],
///     vec![2.0, 4.0],
///     vec![3.0, 6.0],
/// ])?;
/// let pca = Pca::fit(&x, 1)?;
/// let reduced = pca.transform(&x)?;
/// assert_eq!(reduced.shape(), (4, 1));
/// // With one component, reconstruction of collinear data is near-exact.
/// let restored = pca.inverse_transform(&reduced)?;
/// assert!((restored.get(3, 1) - 6.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Column means of the training data (subtracted before projection).
    means: Vec<f64>,
    /// `n_features x k` matrix whose columns are the top-k principal axes.
    components: Matrix,
    /// Eigenvalue (variance) of each retained component, descending.
    explained_variance: Vec<f64>,
    /// Total variance across all components (for variance-ratio queries).
    total_variance: f64,
}

impl Pca {
    /// Fits PCA on a training batch (rows = samples), retaining the top `k`
    /// principal components.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `x` has no rows or `k == 0`.
    /// * [`LinalgError::MalformedData`] if `k > x.cols()`.
    /// * Any eigensolver failure bubbles up.
    pub fn fit(x: &Matrix, k: usize) -> Result<Self, LinalgError> {
        if x.rows() == 0 || k == 0 {
            return Err(LinalgError::Empty);
        }
        if k > x.cols() {
            return Err(LinalgError::MalformedData {
                detail: format!("k = {k} exceeds feature count {}", x.cols()),
            });
        }
        let cov = stats::covariance(x)?;
        let eig = symmetric_eigen(&cov)?;
        let means = stats::column_means(x)?;
        let n = x.cols();
        let mut components = Matrix::zeros(n, k);
        for c in 0..k {
            for r in 0..n {
                components.set(r, c, eig.vectors.get(r, c));
            }
        }
        let explained_variance: Vec<f64> = eig.values.iter().take(k).map(|v| v.max(0.0)).collect();
        let total_variance: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        Ok(Pca {
            means,
            components,
            explained_variance,
            total_variance,
        })
    }

    /// Number of retained components (`k`).
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Number of input features the projection expects.
    pub fn n_features(&self) -> usize {
        self.components.rows()
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the retained components,
    /// in `[0, 1]`. Returns 1.0 when the training data had zero variance.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Projects a batch into the k-dimensional principal subspace.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.cols()` differs from
    /// the fitted feature count.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        if x.cols() != self.n_features() {
            return Err(LinalgError::DimensionMismatch {
                left: x.shape(),
                right: (self.n_features(), self.n_components()),
            });
        }
        let neg: Vec<f64> = self.means.iter().map(|m| -m).collect();
        let centered = x.add_row_broadcast(&neg)?;
        centered.matmul(&self.components)
    }

    /// Maps a reduced batch back into the original feature space
    /// (lossy unless `k` equals the original dimensionality).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `z.cols()` differs from
    /// the number of retained components.
    pub fn inverse_transform(&self, z: &Matrix) -> Result<Matrix, LinalgError> {
        if z.cols() != self.n_components() {
            return Err(LinalgError::DimensionMismatch {
                left: z.shape(),
                right: (self.n_components(), self.n_features()),
            });
        }
        let back = z.matmul_nt(&self.components)?;
        back.add_row_broadcast(&self.means)
    }

    /// Convenience: project then immediately reconstruct, i.e. squeeze the
    /// input onto the principal subspace while keeping the original
    /// dimensionality. Useful as a "PCA squeezer" for feature squeezing.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Pca::transform`].
    pub fn reconstruct(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        self.inverse_transform(&self.transform(x)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Matrix {
        // y = 3x with slight structure; variance concentrated on 1 axis.
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 3.0],
            vec![2.0, 6.0],
            vec![3.0, 9.0],
            vec![4.0, 12.0],
        ])
        .unwrap()
    }

    #[test]
    fn fit_shapes() {
        let pca = Pca::fit(&line_data(), 2).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert_eq!(pca.n_features(), 2);
        assert_eq!(pca.explained_variance().len(), 2);
    }

    #[test]
    fn collinear_data_one_component_captures_everything() {
        let pca = Pca::fit(&line_data(), 1).unwrap();
        assert!(pca.explained_variance_ratio() > 0.999999);
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.5],
            vec![0.0, 2.0, 0.1],
            vec![0.3, 0.4, 3.0],
            vec![1.5, 1.0, 0.0],
        ])
        .unwrap();
        let pca = Pca::fit(&x, 3).unwrap();
        let r = pca.reconstruct(&x).unwrap();
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                assert!((x.get(i, j) - r.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn reduced_reconstruction_of_collinear_data_is_exact() {
        let x = line_data();
        let pca = Pca::fit(&x, 1).unwrap();
        let r = pca.reconstruct(&x).unwrap();
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                assert!((x.get(i, j) - r.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn transform_reduces_dimension() {
        let pca = Pca::fit(&line_data(), 1).unwrap();
        let z = pca.transform(&line_data()).unwrap();
        assert_eq!(z.shape(), (5, 1));
    }

    #[test]
    fn rejects_bad_k() {
        assert!(Pca::fit(&line_data(), 0).is_err());
        assert!(Pca::fit(&line_data(), 3).is_err());
    }

    #[test]
    fn rejects_mismatched_transform() {
        let pca = Pca::fit(&line_data(), 1).unwrap();
        let bad = Matrix::zeros(2, 5);
        assert!(pca.transform(&bad).is_err());
        let bad_z = Matrix::zeros(2, 2);
        assert!(pca.inverse_transform(&bad_z).is_err());
    }

    #[test]
    fn explained_variance_is_descending() {
        let x = Matrix::from_fn(30, 4, |r, c| ((r * (c + 1)) % 7) as f64 + 0.1 * c as f64);
        let pca = Pca::fit(&x, 4).unwrap();
        let ev = pca.explained_variance();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn constant_data_has_ratio_one() {
        let x = Matrix::filled(4, 3, 2.5);
        let pca = Pca::fit(&x, 2).unwrap();
        assert_eq!(pca.explained_variance_ratio(), 1.0);
    }
}
