//! A small shared worker pool for the blocked matrix kernels.
//!
//! The pool is process-global and lazy: no threads exist until the first
//! parallel kernel dispatch, after which workers are reused for the life
//! of the process (they block on an idle channel between dispatches, so
//! an idle pool costs nothing but a few kilobytes of stack). The pool
//! grows on demand up to [`MAX_POOL_WORKERS`]; it never shrinks.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. [`set_threads`] — programmatic override (CLI `--threads` flags call
//!    this), `0` clears the override;
//! 2. the `MALEVA_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! The resolved count controls how many row partitions a kernel splits
//! its output into, **not** how many OS threads exist: requesting 8
//! threads on a single-core machine still produces 8 deterministic
//! partitions (serviced by however many workers the OS schedules), which
//! is what makes thread-count sweeps in the determinism tests meaningful
//! everywhere. Results are bit-identical for every thread count because
//! each partition owns a disjoint set of output rows and per-row
//! summation order never changes (see `kernels`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A unit of work executed on a pool worker. Jobs must own their data
/// (`'static`) and report results through their own channel.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hard ceiling on resolved thread counts and spawned pool workers.
pub const MAX_POOL_WORKERS: usize = 64;

/// Multiply-add count (`m * k * n` for a GEMM) above which partitioning
/// a product across the pool pays for the input copies it requires.
///
/// This is the single source of truth for the dispatch decision: every
/// backend that can go parallel asks [`parallel_worthwhile`], and
/// `kernels` re-exports the constant for backward compatibility. Below
/// the threshold the copies and channel round-trip cost more than the
/// arithmetic saves (measured in `linalg_bench`; see DESIGN.md §10).
pub const PARALLEL_WORK_THRESHOLD: usize = 4_000_000;

/// Whether a product with `work` multiply-adds should be partitioned
/// across the pool. Engages exactly at [`PARALLEL_WORK_THRESHOLD`]
/// (`work >= threshold`), which the unit tests pin.
#[inline]
pub fn parallel_worthwhile(work: usize) -> bool {
    work >= PARALLEL_WORK_THRESHOLD
}

/// `0` means "no override"; anything else wins over env and hardware.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by parallel kernels (`0` clears the
/// override and falls back to `MALEVA_THREADS` / hardware detection).
/// Values are clamped to [`MAX_POOL_WORKERS`].
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The thread count parallel kernels will partition work into right now.
///
/// Always at least 1. See the module docs for the resolution order.
pub fn effective_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced.min(MAX_POOL_WORKERS);
    }
    if let Ok(raw) = std::env::var("MALEVA_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_POOL_WORKERS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_POOL_WORKERS)
}

struct PoolState {
    sender: Sender<Job>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    spawned: usize,
}

static POOL: OnceLock<Mutex<PoolState>> = OnceLock::new();

fn pool() -> &'static Mutex<PoolState> {
    POOL.get_or_init(|| {
        let (sender, receiver) = channel();
        Mutex::new(PoolState {
            sender,
            receiver: Arc::new(Mutex::new(receiver)),
            spawned: 0,
        })
    })
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // sender gone: process is tearing down
            }
        };
        // A panicking job must not take the worker down with it; the
        // job's result channel is simply dropped, which the dispatching
        // kernel observes as a RecvError and escalates.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

/// Enqueues `jobs` on the shared pool, spawning workers as needed so at
/// least `min(jobs.len(), MAX_POOL_WORKERS)` workers exist.
pub(crate) fn submit(jobs: Vec<Job>) {
    let mut state = pool().lock().unwrap_or_else(PoisonError::into_inner);
    let want = jobs.len().min(MAX_POOL_WORKERS);
    while state.spawned < want {
        let rx = Arc::clone(&state.receiver);
        let id = state.spawned;
        std::thread::Builder::new()
            .name(format!("maleva-linalg-{id}"))
            .spawn(move || worker_loop(rx))
            .expect("failed to spawn linalg pool worker");
        state.spawned += 1;
    }
    for job in jobs {
        // Send can only fail if every receiver is gone, which cannot
        // happen while the pool state (and its receiver Arc) is alive.
        state
            .sender
            .send(job)
            .expect("linalg pool receiver disappeared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn effective_threads_is_positive() {
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn parallel_dispatch_engages_exactly_at_threshold() {
        // The pooled path must engage at `work >= threshold`, not one
        // element sooner or later — backends and docs both promise it.
        assert!(!parallel_worthwhile(PARALLEL_WORK_THRESHOLD - 1));
        assert!(parallel_worthwhile(PARALLEL_WORK_THRESHOLD));
        assert!(parallel_worthwhile(PARALLEL_WORK_THRESHOLD + 1));
        assert!(!parallel_worthwhile(0));
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        set_threads(3);
        assert_eq!(effective_threads(), 3);
        set_threads(MAX_POOL_WORKERS + 100);
        assert_eq!(effective_threads(), MAX_POOL_WORKERS);
        set_threads(0);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn submitted_jobs_all_run() {
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || {
                    tx.send(i).expect("collector alive");
                }) as Job
            })
            .collect();
        submit(jobs);
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        submit(vec![Box::new(|| panic!("deliberate test panic")) as Job]);
        // The pool must still service later jobs.
        let (tx, rx) = mpsc::channel();
        submit(vec![Box::new(move || {
            tx.send(42u32).expect("collector alive");
        }) as Job]);
        assert_eq!(rx.recv().expect("job ran"), 42);
    }
}
