//! The f32 panel micro-kernels behind [`BackendKind::Simd`].
//!
//! [`BackendKind::Simd`]: crate::backend::BackendKind::Simd
//!
//! These kernels trade the crate's bit-exactness contract for raw
//! speed: operands are converted to `f32` once (an `O(mk + kn)` cost
//! against `O(mkn)` arithmetic), multiplied in fixed-width panels
//! written so LLVM autovectorizes the inner loops on the baseline
//! x86-64 / aarch64 targets (no intrinsics — the crate still forbids
//! `unsafe`), and the result is widened back to `f64`. Accuracy is
//! governed by the tolerance contract in DESIGN.md §13: within `1e-5`
//! relative error of the scalar `f64` reference for the value ranges
//! this workload produces, verified by the cross-backend differential
//! suite and the tolerance goldens.
//!
//! **Determinism still holds.** Every output element of `matmul` /
//! `matmul_tn` accumulates its products in ascending-`k` order in `f32`
//! with one rounding per step — whether the element was computed inside
//! a full [`SIMD_MR`]`x`[`SIMD_NR`] register tile, in a tail loop, or
//! on a pool worker, the per-element operation sequence is identical.
//! `matmul_nt` and `gemv` reduce dot products over [`DOT_LANES`]
//! partial sums combined in a fixed tree. Both schemes depend only on
//! the operand shapes, never on tiling position, batch size, or thread
//! count, so Simd results are reproducible run-to-run and thread-count
//! sweeps stay byte-identical — the contract is *tolerance vs the f64
//! reference*, not nondeterminism.
//!
//! Large `matmul` products are row-partitioned over the shared
//! [`pool`], gated by the same [`pool::parallel_worthwhile`] predicate
//! as the `Pooled` backend.

use std::sync::mpsc::channel;
use std::sync::Arc;

use crate::pool::{self, Job};
use crate::{kernels, LinalgError, Matrix};

/// Output rows per register tile.
pub(crate) const SIMD_MR: usize = 4;
/// Output columns per register tile (two 256-bit or four 128-bit f32
/// vectors — wide enough to fill vector ALUs, small enough to stay in
/// registers).
pub(crate) const SIMD_NR: usize = 16;
/// Independent partial sums in the dot-product kernels.
const DOT_LANES: usize = 8;

fn widen(src: &[f32]) -> Vec<f64> {
    src.iter().map(|&v| f64::from(v)).collect()
}

fn narrow(src: &[f64]) -> Vec<f32> {
    src.iter().map(|&v| v as f32).collect()
}

/// `a * b` through the f32 panel kernel, row-partitioned over the pool
/// when [`pool::parallel_worthwhile`] says the product is big enough.
pub(crate) fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    kernels::check_matmul_dims(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let a32 = narrow(a.as_slice());
    let b32 = narrow(b.as_slice());
    let mut out32 = vec![0.0f32; m * n];
    let threads = if pool::parallel_worthwhile(m * k * n) {
        pool::effective_threads()
    } else {
        1
    };
    let threads = threads.clamp(1, pool::MAX_POOL_WORKERS).min(m.max(1));
    if threads <= 1 {
        panel_into(&a32, m, k, &b32, n, &mut out32);
    } else {
        matmul_partitioned(&a32, m, k, b32, n, threads, &mut out32);
    }
    Ok(Matrix::from_vec(m, n, widen(&out32)).expect("simd matmul output length"))
}

/// Row-partitioned dispatch: chunk 0 on the calling thread, the rest as
/// owned jobs on the shared pool, glued back by chunk index — the same
/// deterministic scheme as `kernels::matmul_pooled`, over f32 buffers.
fn matmul_partitioned(
    a32: &[f32],
    m: usize,
    k: usize,
    b32: Vec<f32>,
    n: usize,
    threads: usize,
    out32: &mut [f32],
) {
    let chunk_rows = m.div_ceil(threads);
    let b_shared: Arc<Vec<f32>> = Arc::new(b32);
    let (tx, rx) = channel::<(usize, Vec<f32>)>();
    let mut jobs: Vec<Job> = Vec::with_capacity(threads - 1);
    let mut row0 = chunk_rows; // chunk 0 stays on the calling thread
    let mut chunk_idx = 0usize;
    while row0 < m {
        let rows_here = chunk_rows.min(m - row0);
        let a_block = a32[row0 * k..(row0 + rows_here) * k].to_vec();
        let b_arc = Arc::clone(&b_shared);
        let tx_chunk = tx.clone();
        jobs.push(Box::new(move || {
            let mut local = vec![0.0f32; rows_here * n];
            panel_into(&a_block, rows_here, k, &b_arc, n, &mut local);
            let _ = tx_chunk.send((chunk_idx, local));
        }));
        row0 += rows_here;
        chunk_idx += 1;
    }
    drop(tx);
    let submitted = jobs.len();
    pool::submit(jobs);

    let rows0 = chunk_rows.min(m);
    panel_into(
        &a32[..rows0 * k],
        rows0,
        k,
        &b_shared,
        n,
        &mut out32[..rows0 * n],
    );

    for _ in 0..submitted {
        let (idx, local) = rx
            .recv()
            .expect("linalg pool worker dropped its simd matmul chunk (worker panic)");
        let begin = (idx + 1) * chunk_rows;
        out32[begin * n..begin * n + local.len()].copy_from_slice(&local);
    }
}

/// The register-tiled f32 kernel: `out (m x n) = a (m x k) * b (k x n)`
/// over flat row-major slices, `out` assumed zeroed.
///
/// Full tiles keep an `SIMD_MR x SIMD_NR` f32 accumulator array live
/// across the `k` loop; the `&[f32; SIMD_NR]` panel borrow makes the
/// inner trip count a compile-time constant so LLVM turns it into
/// vector FMAs/mul-adds. Tails fall back to per-element ascending-`k`
/// loops, which compute the identical value (same per-element operation
/// order).
fn panel_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i = 0;
    while i + SIMD_MR <= m {
        let mut j = 0;
        while j + SIMD_NR <= n {
            let mut acc = [[0.0f32; SIMD_NR]; SIMD_MR];
            for kx in 0..k {
                let b_panel: &[f32; SIMD_NR] = b[kx * n + j..kx * n + j + SIMD_NR]
                    .try_into()
                    .expect("panel width");
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * k + kx];
                    for (o, &bv) in acc_row.iter_mut().zip(b_panel.iter()) {
                        *o += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + SIMD_NR].copy_from_slice(acc_row);
            }
            j += SIMD_NR;
        }
        for r in 0..SIMD_MR {
            for jt in j..n {
                out[(i + r) * n + jt] = cell(a, i + r, k, b, n, jt);
            }
        }
        i += SIMD_MR;
    }
    while i < m {
        for jt in 0..n {
            out[i * n + jt] = cell(a, i, k, b, n, jt);
        }
        i += 1;
    }
}

/// One output element, ascending-`k` f32 accumulation — the per-element
/// reference the tiled path reproduces exactly.
fn cell(a: &[f32], i: usize, k: usize, b: &[f32], n: usize, j: usize) -> f32 {
    let a_row = &a[i * k..(i + 1) * k];
    let mut acc = 0.0f32;
    for (kx, &av) in a_row.iter().enumerate() {
        acc += av * b[kx * n + j];
    }
    acc
}

/// `aᵀ * b` through the f32 panel kernel: `a` is `(r x ca)`, `b` is
/// `(r x cb)`, the result is `(ca x cb)`.
pub(crate) fn matmul_tn(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    kernels::check_tn_dims(a, b)?;
    let rows = a.rows();
    let (ca, cb) = (a.cols(), b.cols());
    let a32 = narrow(a.as_slice());
    let b32 = narrow(b.as_slice());
    let mut out32 = vec![0.0f32; ca * cb];
    let mut i = 0;
    while i + SIMD_MR <= ca {
        let mut j = 0;
        while j + SIMD_NR <= cb {
            let mut acc = [[0.0f32; SIMD_NR]; SIMD_MR];
            for kx in 0..rows {
                let b_panel: &[f32; SIMD_NR] = b32[kx * cb + j..kx * cb + j + SIMD_NR]
                    .try_into()
                    .expect("panel width");
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = a32[kx * ca + i + r];
                    for (o, &bv) in acc_row.iter_mut().zip(b_panel.iter()) {
                        *o += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out32[(i + r) * cb + j..(i + r) * cb + j + SIMD_NR].copy_from_slice(acc_row);
            }
            j += SIMD_NR;
        }
        for r in 0..SIMD_MR {
            for jt in j..cb {
                out32[(i + r) * cb + jt] = tn_cell(&a32, rows, ca, i + r, &b32, cb, jt);
            }
        }
        i += SIMD_MR;
    }
    while i < ca {
        for jt in 0..cb {
            out32[i * cb + jt] = tn_cell(&a32, rows, ca, i, &b32, cb, jt);
        }
        i += 1;
    }
    Ok(Matrix::from_vec(ca, cb, widen(&out32)).expect("simd tn output length"))
}

/// One `aᵀ * b` output element, ascending-`k` f32 accumulation.
fn tn_cell(a: &[f32], rows: usize, ca: usize, i: usize, b: &[f32], cb: usize, j: usize) -> f32 {
    let mut acc = 0.0f32;
    for kx in 0..rows {
        acc += a[kx * ca + i] * b[kx * cb + j];
    }
    acc
}

/// Deterministic multi-lane f32 dot product: [`DOT_LANES`] independent
/// partial sums over strided chunks (vectorizable without
/// reassociation), combined in a fixed tree, scalar tail last. The
/// reduction order is a pure function of the vector length.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; DOT_LANES];
    let mut a_chunks = a.chunks_exact(DOT_LANES);
    let mut b_chunks = b.chunks_exact(DOT_LANES);
    for (ac, bc) in (&mut a_chunks).zip(&mut b_chunks) {
        for (lane, (&av, &bv)) in lanes.iter_mut().zip(ac.iter().zip(bc.iter())) {
            *lane += av * bv;
        }
    }
    let mut tail = 0.0f32;
    for (&av, &bv) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += av * bv;
    }
    let half = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let other = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    (half + other) + tail
}

/// `a * bᵀ` through f32 multi-lane dot products: `a` is `(ra x c)`,
/// `b` is `(rb x c)`, the result is `(ra x rb)`.
pub(crate) fn matmul_nt(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    kernels::check_nt_dims(a, b)?;
    let (ra, c) = a.shape();
    let rb = b.rows();
    let a32 = narrow(a.as_slice());
    let b32 = narrow(b.as_slice());
    let mut out32 = vec![0.0f32; ra * rb];
    for i in 0..ra {
        let a_row = &a32[i * c..(i + 1) * c];
        let o = &mut out32[i * rb..(i + 1) * rb];
        for (j, ov) in o.iter_mut().enumerate() {
            *ov = dot(a_row, &b32[j * c..(j + 1) * c]);
        }
    }
    Ok(Matrix::from_vec(ra, rb, widen(&out32)).expect("simd nt output length"))
}

/// Matrix-vector product `a * x` through f32 multi-lane dot products.
pub(crate) fn gemv(a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
    kernels::check_gemv_dims(a, x)?;
    let (m, k) = a.shape();
    let a32 = narrow(a.as_slice());
    let x32 = narrow(x);
    let mut out = vec![0.0f64; m];
    for (i, o) in out.iter_mut().enumerate() {
        *o = f64::from(dot(&a32[i * k..(i + 1) * k], &x32));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed.wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 33) as f64 / (1u64 << 31) as f64;
            if u < 0.15 {
                0.0
            } else {
                u - 0.5
            }
        })
    }

    fn assert_close(x: &Matrix, y: &Matrix, what: &str) {
        assert_eq!(x.shape(), y.shape(), "{what}: shape mismatch");
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(
                (a - b).abs() <= 1e-5 * (a.abs() + b.abs() + 1.0),
                "{what}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn simd_matmul_close_to_scalar_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 16),
            (5, 3, 9),
            (63, 17, 65),
            (64, 33, 48),
            (65, 31, 17),
        ] {
            let a = mat(m, k, (m * 1000 + k) as u64);
            let b = mat(k, n, (k * 1000 + n) as u64);
            let reference = kernels::matmul_scalar(&a, &b).unwrap();
            let fast = matmul(&a, &b).unwrap();
            assert_close(&reference, &fast, "simd matmul");
        }
    }

    #[test]
    fn tile_and_tail_paths_agree_per_element() {
        // The same logical row computed inside a full 4x16 tile and as a
        // 1-row tail must produce identical bits: per-element ascending-k
        // f32 accumulation does not depend on tiling position. This is
        // what keeps batched and per-row scoring bit-identical under the
        // Simd backend.
        let k = 37;
        let n = 33; // forces a column tail as well
        let batch = mat(8, k, 99);
        let b = mat(k, n, 100);
        let batched = matmul(&batch, &b).unwrap();
        for i in 0..batch.rows() {
            let row = Matrix::row_vector(batch.row(i));
            let single = matmul(&row, &b).unwrap();
            for (x, y) in batched.row(i).iter().zip(single.row(0).iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} differs");
            }
        }
    }

    #[test]
    fn partitioned_matches_single_thread_bitwise() {
        let a = mat(96, 40, 7);
        let b = mat(40, 24, 8);
        let a32 = narrow(a.as_slice());
        let b32 = narrow(b.as_slice());
        let mut single = vec![0.0f32; 96 * 24];
        panel_into(&a32, 96, 40, &b32, 24, &mut single);
        for threads in [2, 3, 5, 8] {
            let mut multi = vec![0.0f32; 96 * 24];
            matmul_partitioned(&a32, 96, 40, b32.clone(), 24, threads, &mut multi);
            for (x, y) in single.iter().zip(multi.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn dot_is_deterministic_and_accurate() {
        for len in [0, 1, 7, 8, 9, 64, 100] {
            let a: Vec<f32> = (0..len).map(|i| ((i as f32) * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| ((i as f32) * 0.71).cos()).collect();
            let reference: f64 = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            let got = f64::from(dot(&a, &b));
            assert!((got - reference).abs() <= 1e-5 * (reference.abs() + 1.0));
            assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn degenerate_shapes_work() {
        let a = Matrix::zeros(0, 5);
        let b = mat(5, 3, 1);
        assert_eq!(matmul(&a, &b).unwrap().shape(), (0, 3));
        let a1 = mat(1, 1, 2);
        let b1 = mat(1, 1, 3);
        assert_eq!(matmul(&a1, &b1).unwrap().shape(), (1, 1));
        assert_eq!(gemv(&b, &[1.0, 2.0, 3.0]).unwrap().len(), 5);
    }
}
