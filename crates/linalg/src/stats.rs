//! Column statistics: means, variances, min/max, covariance.
//!
//! These are the fitting primitives behind the feature-normalization
//! pipeline (`maleva-features`) and the PCA defense (`maleva-defense`).

use crate::{LinalgError, Matrix};

/// Per-column mean of a sample batch (rows = samples).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn column_means(x: &Matrix) -> Result<Vec<f64>, LinalgError> {
    if x.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    let n = x.rows() as f64;
    Ok(x.sum_rows().into_iter().map(|s| s / n).collect())
}

/// Per-column population variance (divides by `n`, not `n-1`).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn column_variances(x: &Matrix) -> Result<Vec<f64>, LinalgError> {
    let means = column_means(x)?;
    let n = x.rows() as f64;
    let mut acc = vec![0.0; x.cols()];
    for row in x.rows_iter() {
        for ((a, &v), &m) in acc.iter_mut().zip(row.iter()).zip(means.iter()) {
            let d = v - m;
            *a += d * d;
        }
    }
    for a in &mut acc {
        *a /= n;
    }
    Ok(acc)
}

/// Per-column minimum.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn column_mins(x: &Matrix) -> Result<Vec<f64>, LinalgError> {
    fold_columns(x, f64::INFINITY, f64::min)
}

/// Per-column maximum.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn column_maxs(x: &Matrix) -> Result<Vec<f64>, LinalgError> {
    fold_columns(x, f64::NEG_INFINITY, f64::max)
}

fn fold_columns(x: &Matrix, init: f64, f: fn(f64, f64) -> f64) -> Result<Vec<f64>, LinalgError> {
    if x.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    let mut acc = vec![init; x.cols()];
    for row in x.rows_iter() {
        for (a, &v) in acc.iter_mut().zip(row.iter()) {
            *a = f(*a, v);
        }
    }
    Ok(acc)
}

/// Centers each column at zero mean, returning the centered matrix and the
/// means that were subtracted.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn center_columns(x: &Matrix) -> Result<(Matrix, Vec<f64>), LinalgError> {
    let means = column_means(x)?;
    let neg: Vec<f64> = means.iter().map(|m| -m).collect();
    let centered = x.add_row_broadcast(&neg)?;
    Ok((centered, means))
}

/// Sample covariance matrix of a batch (rows = samples), dividing by `n-1`.
///
/// For a single sample the covariance is defined as the zero matrix.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn covariance(x: &Matrix) -> Result<Matrix, LinalgError> {
    let (centered, _) = center_columns(x)?;
    if x.rows() == 1 {
        return Ok(Matrix::zeros(x.cols(), x.cols()));
    }
    // Transpose-free Xᵀ·X through the active backend (bit-identical to
    // transposing first under every backend).
    let cov = centered.matmul_tn(&centered)?;
    Ok(cov.scale(1.0 / (x.rows() as f64 - 1.0)))
}

/// Checks that every element of a slice is finite, naming the first
/// offender in the error. The numeric-stability guard behind the
/// trainer's divergence detection.
///
/// # Errors
///
/// Returns [`LinalgError::NonFinite`] carrying `label`, the flat index
/// of the first NaN/±Inf element, and its value.
pub fn check_finite(label: &str, xs: &[f64]) -> Result<(), LinalgError> {
    match xs.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(index) => Err(LinalgError::NonFinite {
            label: label.to_string(),
            index,
            value: format!("{}", xs[index]),
        }),
    }
}

/// [`check_finite`] over a matrix's backing storage (row-major flat
/// index in the error).
///
/// # Errors
///
/// Returns [`LinalgError::NonFinite`] for the first NaN/±Inf element.
pub fn check_matrix_finite(label: &str, x: &Matrix) -> Result<(), LinalgError> {
    check_finite(label, x.as_slice())
}

/// Mean of a slice; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation of a slice; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap()
    }

    #[test]
    fn means_and_variances() {
        let x = sample();
        assert_eq!(column_means(&x).unwrap(), vec![2.5, 25.0]);
        assert_eq!(column_variances(&x).unwrap(), vec![1.25, 125.0]);
    }

    #[test]
    fn mins_and_maxs() {
        let x = sample();
        assert_eq!(column_mins(&x).unwrap(), vec![1.0, 10.0]);
        assert_eq!(column_maxs(&x).unwrap(), vec![4.0, 40.0]);
    }

    #[test]
    fn empty_matrix_errors() {
        let x = Matrix::zeros(0, 3);
        assert!(column_means(&x).is_err());
        assert!(column_variances(&x).is_err());
        assert!(column_mins(&x).is_err());
        assert!(covariance(&x).is_err());
    }

    #[test]
    fn centering_zeroes_means() {
        let x = sample();
        let (centered, means) = center_columns(&x).unwrap();
        assert_eq!(means, vec![2.5, 25.0]);
        let new_means = column_means(&centered).unwrap();
        for m in new_means {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        // col1 = 10 * col0, so cov = [[var, 10 var], [10 var, 100 var]]
        let x = sample();
        let c = covariance(&x).unwrap();
        // sample variance of col0 with n-1: sum d² = 5 over 3 -> 5/3
        let v = 5.0 / 3.0;
        assert!((c.get(0, 0) - v).abs() < 1e-12);
        assert!((c.get(0, 1) - 10.0 * v).abs() < 1e-12);
        assert!((c.get(1, 0) - 10.0 * v).abs() < 1e-12);
        assert!((c.get(1, 1) - 100.0 * v).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric() {
        let x = Matrix::from_fn(10, 4, |r, c| ((r * 7 + c * 3) % 5) as f64);
        let c = covariance(&x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_sample_covariance_is_zero() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let c = covariance(&x).unwrap();
        assert!(c.iter().all(|v| v == 0.0));
    }

    #[test]
    fn check_finite_names_the_first_offender() {
        assert!(check_finite("loss", &[1.0, -2.0]).is_ok());
        assert!(check_finite("loss", &[]).is_ok());
        let err = check_finite("loss", &[0.0, f64::NAN, f64::INFINITY]).unwrap_err();
        match err {
            LinalgError::NonFinite {
                label,
                index,
                value,
            } => {
                assert_eq!(label, "loss");
                assert_eq!(index, 1);
                assert_eq!(value, "NaN");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![f64::NEG_INFINITY, 2.0]]).unwrap();
        let err = check_matrix_finite("weights", &m).unwrap_err();
        assert!(err.to_string().contains("weights"));
        assert!(err.to_string().contains("index 2"));
    }

    #[test]
    fn slice_stats() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0, 1.0, 1.0]), Some(0.0));
        assert!((std_dev(&[0.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }
}
