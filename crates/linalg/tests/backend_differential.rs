//! Cross-backend differential suite: every [`LinalgBackend`] against
//! the scalar f64 reference, for all four product variants.
//!
//! The contract being pinned (DESIGN.md §13):
//!
//! * `Scalar`, `Blocked`, `Pooled` — **bit-identical** for arbitrary
//!   shapes (including `0xN` and `1x1`), zero-mass elements, and every
//!   thread count;
//! * `Simd` — deterministic, and within `1e-5` *relative* tolerance of
//!   the reference, where the scale for each output element is the
//!   absolute-value product `|a| * |b|` (so cancellation-heavy elements
//!   are judged against the mass that actually flowed through the f32
//!   accumulator, not against a near-zero difference);
//! * every backend returns the same typed
//!   [`LinalgError::DimensionMismatch`] on misshapen operands.
//!
//! Backends are obtained with [`backend::of`], which bypasses the
//! process-global selection, so these properties run in parallel
//! without racing; the selection machinery itself ([`set_backend`] /
//! `MALEVA_BACKEND` / default) is pinned by one sequential test at the
//! bottom that owns the global state in this binary's own process.

use maleva_linalg::backend::{self, LinalgBackend};
use maleva_linalg::{kernels, pool, BackendKind, LinalgError, Matrix};
use proptest::prelude::*;

/// Relative tolerance of the Simd contract.
const SIMD_RTOL: f64 = 1e-5;

/// Strategy: one element, with ~30% exact zeros so the f64 zero-skip
/// paths and the Simd no-skip kernel are differentially exercised.
fn element() -> impl Strategy<Value = f64> {
    (0u32..10, -10.0f64..10.0).prop_map(|(z, v)| if z < 3 { 0.0 } else { v })
}

/// Strategy: a `rows x cols` matrix of [`element`]s (either dim may be 0).
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(element(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("shape"))
}

/// Strategy: a conformable `(m x k, k x n)` pair. The ranges cross the
/// `SIMD_MR = 4` row and `SIMD_NR = 16` column tile boundaries (so
/// full-tile, column-tail, and row-tail paths all run) as well as the
/// blocked kernel's `MR = 4` / `MC = 64` boundaries; 0-sized and 1x1
/// products are in range.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..70, 0usize..24, 0usize..36).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.iter().map(|v| v.to_bits()).collect()
}

fn abs(m: &Matrix) -> Matrix {
    m.map(f64::abs)
}

/// Asserts `got` is within the Simd tolerance contract of `reference`,
/// scaling each element by `scale` (the `|a| * |b|` mass).
fn assert_within_simd_tol(reference: &Matrix, got: &Matrix, scale: &Matrix, what: &str) {
    assert_eq!(reference.shape(), got.shape(), "{what}: shape mismatch");
    for ((r, g), s) in reference.iter().zip(got.iter()).zip(scale.iter()) {
        assert!(
            (r - g).abs() <= SIMD_RTOL * (s + 1.0),
            "{what}: reference {r} vs simd {g} (scale {s})"
        );
    }
}

/// The f64 backends that must agree with `Scalar` to the bit.
fn f64_backends() -> [&'static dyn LinalgBackend; 3] {
    [
        backend::of(BackendKind::Scalar),
        backend::of(BackendKind::Blocked),
        backend::of(BackendKind::Pooled),
    ]
}

proptest! {
    #[test]
    fn matmul_f64_backends_bitwise_simd_tolerant(
        (a, b) in matmul_pair(),
        threads in 1usize..9,
    ) {
        pool::set_threads(threads);
        let reference = kernels::matmul_scalar(&a, &b).unwrap();
        for be in f64_backends() {
            let got = be.matmul(&a, &b).unwrap();
            prop_assert_eq!(bits(&got), bits(&reference), "backend {}", be.kind());
        }
        let simd = backend::of(BackendKind::Simd).matmul(&a, &b).unwrap();
        let scale = kernels::matmul_scalar(&abs(&a), &abs(&b)).unwrap();
        assert_within_simd_tol(&reference, &simd, &scale, "matmul");
        pool::set_threads(0);
    }

    #[test]
    fn matmul_tn_f64_backends_bitwise_simd_tolerant(
        (a, b) in (0usize..24, 0usize..70, 0usize..36)
            .prop_flat_map(|(m, k, n)| (matrix(k, m), matrix(k, n))),
    ) {
        let reference = kernels::matmul_scalar(&a.transpose(), &b).unwrap();
        for be in f64_backends() {
            let got = be.matmul_tn(&a, &b).unwrap();
            prop_assert_eq!(bits(&got), bits(&reference), "backend {}", be.kind());
        }
        let simd = backend::of(BackendKind::Simd).matmul_tn(&a, &b).unwrap();
        let scale = kernels::matmul_scalar(&abs(&a).transpose(), &abs(&b)).unwrap();
        assert_within_simd_tol(&reference, &simd, &scale, "matmul_tn");
    }

    #[test]
    fn matmul_nt_f64_backends_bitwise_simd_tolerant(
        (a, b) in (0usize..70, 0usize..24, 0usize..70)
            .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(n, k))),
    ) {
        let reference = kernels::matmul_scalar(&a, &b.transpose()).unwrap();
        for be in f64_backends() {
            let got = be.matmul_nt(&a, &b).unwrap();
            prop_assert_eq!(bits(&got), bits(&reference), "backend {}", be.kind());
        }
        let simd = backend::of(BackendKind::Simd).matmul_nt(&a, &b).unwrap();
        let scale = kernels::matmul_scalar(&abs(&a), &abs(&b).transpose()).unwrap();
        assert_within_simd_tol(&reference, &simd, &scale, "matmul_nt");
    }

    #[test]
    fn gemv_f64_backends_bitwise_simd_tolerant(
        (a, x) in (0usize..70, 0usize..24)
            .prop_flat_map(|(m, k)| (matrix(m, k), prop::collection::vec(element(), k))),
    ) {
        let col = Matrix::from_vec(x.len(), 1, x.clone()).expect("column vector");
        let reference = kernels::matmul_scalar(&a, &col).unwrap();
        let ref_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        for be in f64_backends() {
            let got = be.gemv(&a, &x).unwrap();
            let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, ref_bits.clone(), "backend {}", be.kind());
        }
        let simd = backend::of(BackendKind::Simd).gemv(&a, &x).unwrap();
        let abs_col = Matrix::from_vec(x.len(), 1, x.iter().map(|v| v.abs()).collect())
            .expect("column vector");
        let scale = kernels::matmul_scalar(&abs(&a), &abs_col).unwrap();
        for ((r, g), s) in reference.iter().zip(simd.iter()).zip(scale.iter()) {
            prop_assert!(
                (r - g).abs() <= SIMD_RTOL * (s + 1.0),
                "gemv: reference {} vs simd {} (scale {})", r, g, s
            );
        }
    }

    #[test]
    fn simd_is_deterministic_across_thread_counts(
        (a, b) in matmul_pair(),
        t1 in 1usize..9,
        t2 in 1usize..9,
    ) {
        pool::set_threads(t1);
        let first = backend::of(BackendKind::Simd).matmul(&a, &b).unwrap();
        pool::set_threads(t2);
        let second = backend::of(BackendKind::Simd).matmul(&a, &b).unwrap();
        pool::set_threads(0);
        prop_assert_eq!(bits(&first), bits(&second));
    }
}

/// The proptest shapes stay below [`pool::PARALLEL_WORK_THRESHOLD`], so
/// the Pooled and Simd backends never actually partition there. This
/// pins the parallel paths: a product just past the threshold, swept
/// over thread counts, must stay bit-identical (Pooled) /
/// bit-reproducible and within tolerance (Simd).
#[test]
fn parallel_paths_hold_their_contracts_past_the_threshold() {
    // 160 * 160 * 160 = 4.096M multiply-adds >= the 4M threshold.
    let a = Matrix::from_fn(160, 160, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.1 - 0.6);
    let b = Matrix::from_fn(160, 160, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    assert!(pool::parallel_worthwhile(160 * 160 * 160));
    let reference = kernels::matmul_scalar(&a, &b).unwrap();
    let scale = kernels::matmul_scalar(&abs(&a), &abs(&b)).unwrap();
    let mut simd_runs: Vec<Vec<u64>> = Vec::new();
    for threads in [1, 2, 3, 8] {
        pool::set_threads(threads);
        let pooled = backend::of(BackendKind::Pooled).matmul(&a, &b).unwrap();
        assert_eq!(
            bits(&pooled),
            bits(&reference),
            "pooled at {threads} threads"
        );
        let simd = backend::of(BackendKind::Simd).matmul(&a, &b).unwrap();
        assert_within_simd_tol(&reference, &simd, &scale, "simd past threshold");
        simd_runs.push(bits(&simd));
    }
    pool::set_threads(0);
    for run in &simd_runs[1..] {
        assert_eq!(run, &simd_runs[0], "simd thread-count determinism");
    }
}

/// Satellite: negative coverage for `matmul_tn` / `matmul_nt` / `gemv`
/// (and `matmul`), which previously had none — every backend must
/// reject misshapen operands with the same typed error carrying the
/// shapes the caller actually passed.
#[test]
fn dimension_mismatch_is_typed_and_identical_across_backends() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(3, 4); // conformable for tn, not for matmul/nt… see below
    let c = Matrix::zeros(5, 6); // conformable with nothing here
    let x = vec![0.0; 7]; // wrong length for gemv against `a`
    for kind in BackendKind::ALL {
        let be = backend::of(kind);

        let err = be.matmul(&a, &b).unwrap_err();
        assert!(
            matches!(
                err,
                LinalgError::DimensionMismatch {
                    left: (3, 4),
                    right: (3, 4),
                }
            ),
            "{kind} matmul: {err:?}"
        );

        let err = be.matmul_tn(&a, &c).unwrap_err();
        assert!(
            matches!(
                err,
                LinalgError::DimensionMismatch {
                    left: (3, 4),
                    right: (5, 6),
                }
            ),
            "{kind} matmul_tn: {err:?}"
        );

        let err = be.matmul_nt(&a, &c).unwrap_err();
        assert!(
            matches!(
                err,
                LinalgError::DimensionMismatch {
                    left: (3, 4),
                    right: (5, 6),
                }
            ),
            "{kind} matmul_nt: {err:?}"
        );

        let err = be.gemv(&a, &x).unwrap_err();
        assert!(
            matches!(
                err,
                LinalgError::DimensionMismatch {
                    left: (3, 4),
                    right: (7, 1),
                }
            ),
            "{kind} gemv: {err:?}"
        );

        // The happy paths next to the failures, so a backend cannot
        // pass by rejecting everything.
        assert!(be.matmul_tn(&a, &b).is_ok());
        assert!(be.gemv(&a, &[0.0; 4]).is_ok());
    }
}

/// Backend *selection*: override beats env beats default. Runs the
/// whole sequence in one test because the override and `MALEVA_BACKEND`
/// are process-global; nothing else in this binary consults them
/// (every other test uses `backend::of` directly).
#[test]
fn selection_resolves_override_then_env_then_default() {
    // Whatever the ambient env says (the CI simd leg exports
    // MALEVA_BACKEND=simd), an explicit override must win.
    for kind in BackendKind::ALL {
        backend::set_backend(Some(kind));
        assert_eq!(backend::effective_kind(), kind);
        assert_eq!(backend::active().kind(), kind);
    }
    backend::set_backend(None);

    // With no override, the env decides (invalid values are ignored)…
    std::env::set_var("MALEVA_BACKEND", "blocked");
    assert_eq!(backend::effective_kind(), BackendKind::Blocked);
    std::env::set_var("MALEVA_BACKEND", "SIMD");
    assert_eq!(backend::effective_kind(), BackendKind::Simd);
    std::env::set_var("MALEVA_BACKEND", "not-a-backend");
    assert_eq!(backend::effective_kind(), BackendKind::Pooled);

    // …and with neither, the default is the seed behavior: Pooled.
    std::env::remove_var("MALEVA_BACKEND");
    assert_eq!(backend::effective_kind(), BackendKind::Pooled);
    assert_eq!(backend::active().kind(), BackendKind::Pooled);
}
