//! Property tests pinning the cache-blocked and pooled kernels to the
//! scalar reference kernel — **bit-identical**, not approximately equal.
//!
//! The blocked/pooled paths are only allowed to repartition the loop
//! nest; every output element must accumulate the same products in the
//! same ascending-`k` order (skipping terms whose left operand is an
//! exact `0.0`) as the naive scalar kernel. These properties are what
//! make `MALEVA_THREADS` a pure performance knob: any thread count, any
//! shape, same bits.
//!
//! Elements are drawn with a deliberate mass at exactly `0.0` so the
//! zero-skip fast path and its fallback are both exercised, and shapes
//! start at 0 so degenerate `0xN` products are covered alongside the
//! block-boundary sizes.

use maleva_linalg::{kernels, Matrix};
use proptest::prelude::*;

/// Strategy: one element, with ~30% exact zeros to hit the skip path.
fn element() -> impl Strategy<Value = f64> {
    (0u32..10, -10.0f64..10.0).prop_map(|(z, v)| if z < 3 { 0.0 } else { v })
}

/// Strategy: a `rows x cols` matrix of [`element`]s (either dim may be 0).
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(element(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("shape"))
}

/// Strategy: a conformable `(m x k, k x n)` matmul operand pair. `m`
/// ranges past `MR = 4` row-block tails and up past the `MC = 64` panel
/// boundary; 0-sized and 1x1 products are in range.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..70, 0usize..24, 0usize..24).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

/// Raw bit patterns — equality here is exact f64 identity, `-0.0 != 0.0`.
fn bits(m: &Matrix) -> Vec<u64> {
    m.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn blocked_matmul_is_bit_identical_to_scalar((a, b) in matmul_pair()) {
        let reference = kernels::matmul_scalar(&a, &b).unwrap();
        let blocked = kernels::matmul_blocked(&a, &b).unwrap();
        prop_assert_eq!(bits(&blocked), bits(&reference));
    }

    #[test]
    fn pooled_matmul_is_bit_identical_to_scalar((a, b) in matmul_pair(),
                                                threads in 1usize..9) {
        let reference = kernels::matmul_scalar(&a, &b).unwrap();
        let pooled = kernels::matmul_pooled(&a, &b, threads).unwrap();
        prop_assert_eq!(bits(&pooled), bits(&reference));
    }

    #[test]
    fn gemv_is_bit_identical_to_column_matmul(
        (a, x) in (0usize..70, 0usize..24)
            .prop_flat_map(|(m, k)| (matrix(m, k), prop::collection::vec(element(), k)))
    ) {
        let col = Matrix::from_vec(x.len(), 1, x.clone()).expect("column vector");
        let reference = kernels::matmul_scalar(&a, &col).unwrap();
        let y = a.gemv(&x).unwrap();
        let y_bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(y_bits, bits(&reference));
    }

    #[test]
    fn transpose_left_matmul_is_bit_identical_to_explicit_transpose(
        (a, b) in (0usize..24, 0usize..70, 0usize..24)
            .prop_flat_map(|(m, k, n)| (matrix(k, m), matrix(k, n)))
    ) {
        // A^T * B without materializing A^T must match transpose-then-scalar.
        let reference = kernels::matmul_scalar(&a.transpose(), &b).unwrap();
        let tn = a.matmul_tn(&b).unwrap();
        prop_assert_eq!(bits(&tn), bits(&reference));
    }

    #[test]
    fn transpose_right_matmul_is_bit_identical_to_explicit_transpose(
        (a, b) in (0usize..70, 0usize..24, 0usize..70)
            .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(n, k)))
    ) {
        // A * B^T without materializing B^T must match transpose-then-scalar.
        let reference = kernels::matmul_scalar(&a, &b.transpose()).unwrap();
        let nt = a.matmul_nt(&b).unwrap();
        prop_assert_eq!(bits(&nt), bits(&reference));
    }
}

/// Degenerate shapes pinned deterministically (proptest *can* reach
/// them, but only by luck of the draw).
#[test]
fn degenerate_and_unit_shapes_are_bit_identical() {
    let cases = [(0, 5, 3), (4, 0, 3), (4, 5, 0), (0, 0, 0), (1, 1, 1)];
    for (m, k, n) in cases {
        let a = Matrix::from_fn(m, k, |i, j| (i as f64 - j as f64) * 0.75);
        let b = Matrix::from_fn(k, n, |i, j| (i * 3 + j) as f64 * 0.5 - 1.0);
        let reference = kernels::matmul_scalar(&a, &b).unwrap();
        let blocked = kernels::matmul_blocked(&a, &b).unwrap();
        let pooled = kernels::matmul_pooled(&a, &b, 8).unwrap();
        assert_eq!(bits(&blocked), bits(&reference), "blocked {m}x{k}x{n}");
        assert_eq!(bits(&pooled), bits(&reference), "pooled {m}x{k}x{n}");
    }
}
