//! Property-based tests for the linear-algebra kernels.

use maleva_linalg::{eigen::symmetric_eigen, norm, stats, Matrix, Pca};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with elements in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("shape"))
}

/// Strategy: small shape triple (n, m, k) for chained matmuls.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn transpose_is_involution((r, c, _) in dims(), seed in 0u64..1000) {
        let m = Matrix::from_fn(r, c, |i, j| ((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative(dims in dims()) {
        let (n, m, k) = dims;
        let a = Matrix::from_fn(n, m, |i, j| (i as f64 - j as f64) * 0.5);
        let b = Matrix::from_fn(m, k, |i, j| (i * j) as f64 * 0.25 + 1.0);
        let c = Matrix::from_fn(k, n, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs().max(y.abs())));
        }
    }

    #[test]
    fn matmul_transpose_identity((r, c, _) in dims()) {
        // (A B)^T = B^T A^T
        let a = Matrix::from_fn(r, c, |i, j| (i as f64 * 1.5 - j as f64) * 0.3);
        let b = Matrix::from_fn(c, r, |i, j| (j as f64 - i as f64 * 0.5) * 0.7);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn l2_triangle_inequality(a in prop::collection::vec(-5.0f64..5.0, 8),
                              b in prop::collection::vec(-5.0f64..5.0, 8),
                              c in prop::collection::vec(-5.0f64..5.0, 8)) {
        let ab = norm::l2_distance(&a, &b);
        let bc = norm::l2_distance(&b, &c);
        let ac = norm::l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn l1_dominates_l2_dominates_linf(v in prop::collection::vec(-5.0f64..5.0, 1..16)) {
        let l1 = norm::l1(&v);
        let l2 = norm::l2(&v);
        let linf = norm::linf(&v);
        prop_assert!(l1 + 1e-12 >= l2);
        prop_assert!(l2 + 1e-12 >= linf);
    }

    #[test]
    fn norms_scale_homogeneously(v in prop::collection::vec(-5.0f64..5.0, 1..16), k in -3.0f64..3.0) {
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        prop_assert!((norm::l2(&scaled) - k.abs() * norm::l2(&v)).abs() < 1e-9);
        prop_assert!((norm::l1(&scaled) - k.abs() * norm::l1(&v)).abs() < 1e-9);
    }

    #[test]
    fn covariance_diagonal_is_nonnegative(m in matrix(6, 4)) {
        let cov = stats::covariance(&m).unwrap();
        for i in 0..4 {
            prop_assert!(cov.get(i, i) >= -1e-10);
        }
    }

    #[test]
    fn centered_columns_have_zero_mean(m in matrix(8, 3)) {
        let (centered, _) = stats::center_columns(&m).unwrap();
        for mean in stats::column_means(&centered).unwrap() {
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric_input(seed in 0u64..500) {
        let base = Matrix::from_fn(4, 4, |i, j| {
            (((i * 7 + j * 13 + seed as usize * 29) % 11) as f64 - 5.0) * 0.4
        });
        let sym = base.add_matrix(&base.transpose()).unwrap().scale(0.5);
        let e = symmetric_eigen(&sym).unwrap();
        let n = e.values.len();
        let mut lambda = Matrix::zeros(n, n);
        for (i, &v) in e.values.iter().enumerate() {
            lambda.set(i, i, v);
        }
        let rec = e.vectors.matmul(&lambda).unwrap().matmul(&e.vectors.transpose()).unwrap();
        for (x, y) in sym.iter().zip(rec.iter()) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn pca_full_rank_round_trips(m in matrix(10, 4)) {
        let pca = Pca::fit(&m, 4).unwrap();
        let rec = pca.reconstruct(&m).unwrap();
        for (x, y) in m.iter().zip(rec.iter()) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn pca_reconstruction_error_nonincreasing_in_k(m in matrix(12, 5)) {
        let mut prev_err = f64::INFINITY;
        for k in 1..=5 {
            let pca = Pca::fit(&m, k).unwrap();
            let rec = pca.reconstruct(&m).unwrap();
            let err: f64 = m
                .iter()
                .zip(rec.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            prop_assert!(err <= prev_err + 1e-7, "error rose at k={}: {} > {}", k, err, prev_err);
            prev_err = err;
        }
    }

    #[test]
    fn pca_explained_variance_ratio_in_unit_interval(m in matrix(8, 3), k in 1usize..4) {
        let pca = Pca::fit(&m, k).unwrap();
        let r = pca.explained_variance_ratio();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn sum_rows_matches_manual(m in matrix(5, 4)) {
        let sums = m.sum_rows();
        for (c, s) in sums.iter().enumerate().take(4) {
            let manual: f64 = (0..5).map(|r| m.get(r, c)).sum();
            prop_assert!((s - manual).abs() < 1e-10);
        }
    }

    #[test]
    fn select_rows_preserves_content(m in matrix(6, 3), idx in prop::collection::vec(0usize..6, 1..10)) {
        let sel = m.select_rows(&idx);
        prop_assert_eq!(sel.rows(), idx.len());
        for (out_r, &src_r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(out_r), m.row(src_r));
        }
    }
}
