use serde::{Deserialize, Serialize};

/// Elementwise nonlinearity applied after a dense layer's affine transform.
///
/// The paper's DNNs use ReLU hidden layers with a softmax head; the head is
/// modelled as an [`Activation::Identity`] layer whose logits are passed to
/// [`softmax()`](crate::softmax()) so that the attack code can access raw
/// logits and temperature-scaled probabilities separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the paper's hidden-layer nonlinearity.
    #[default]
    ReLU,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op; used for logit (output) layers.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    ///
    /// ```
    /// use maleva_nn::Activation;
    /// assert_eq!(Activation::ReLU.apply(-3.0), 0.0);
    /// assert_eq!(Activation::ReLU.apply(2.0), 2.0);
    /// ```
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation, expressed in terms of the
    /// *pre-activation* input `x`.
    ///
    /// For ReLU the derivative at exactly 0 is defined as 0 (the common
    /// subgradient choice).
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::ReLU => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::ReLU.apply(-1.0), 0.0);
        assert_eq!(Activation::ReLU.apply(0.0), 0.0);
        assert_eq!(Activation::ReLU.apply(3.5), 3.5);
        assert_eq!(Activation::ReLU.derivative(-1.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(0.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(2.0), 1.0);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
        // derivative peaks at 0 with value 0.25
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tanh_behaviour() {
        let t = Activation::Tanh;
        assert_eq!(t.apply(0.0), 0.0);
        assert!((t.derivative(0.0) - 1.0).abs() < 1e-12);
        assert!(t.derivative(3.0) < 0.01);
    }

    #[test]
    fn identity_is_noop() {
        assert_eq!(Activation::Identity.apply(-7.5), -7.5);
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::ReLU.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::ReLU);
    }
}
