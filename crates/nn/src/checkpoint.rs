//! Training checkpoints: serialize-everything snapshots of a run in
//! progress, written every K epochs so a killed experiment resumes
//! instead of restarting.
//!
//! A checkpoint captures *all* state the training loop threads from one
//! epoch to the next — network parameters, optimizer accumulators, the
//! RNG mid-stream, per-epoch statistics, and the early-stopping
//! counters — so a resumed run is **bit-identical** to one that was
//! never interrupted. The JSON codec round-trips `f64` exactly, which
//! is what makes the bit-identity guarantee hold.
//!
//! Checkpoints are written atomically (temp file + rename) so a crash
//! mid-write leaves the previous checkpoint intact.

use std::fs;
use std::path::{Path, PathBuf};

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::optim::OptimizerState;
use crate::{Network, NnError, TrainReport};

/// Format version; bump on incompatible layout changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name used inside a checkpoint directory.
const CHECKPOINT_FILE: &str = "checkpoint.json";

/// A full snapshot of a training run after some number of completed
/// epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The first epoch still to run (i.e. `next_epoch` epochs completed).
    pub next_epoch: usize,
    /// Network parameters after `next_epoch` epochs.
    pub network: Network,
    /// Optimizer with all accumulator state.
    pub optimizer: OptimizerState,
    /// The trainer's RNG, mid-stream.
    pub rng: ChaCha8Rng,
    /// The shuffle permutation after the last completed epoch. The
    /// Fisher–Yates shuffle permutes the *previous* epoch's order, so
    /// the permutation itself is loop-carried state: without it a
    /// resumed run would see different minibatches.
    pub indices: Vec<usize>,
    /// Per-epoch statistics so far.
    pub report: TrainReport,
    /// Best validation loss seen (early stopping); `None` encodes "none
    /// yet" (+∞), which JSON cannot represent directly.
    pub best_val_loss: Option<f64>,
    /// Early-stopping counter: epochs since `best_val_loss` improved.
    pub epochs_since_best: usize,
    /// How many times the divergence policy has halved the learning rate.
    pub lr_halvings: usize,
}

impl TrainCheckpoint {
    /// The checkpoint file path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CHECKPOINT_FILE)
    }

    /// Serializes the checkpoint into `dir` (created if missing),
    /// atomically replacing any previous checkpoint.
    ///
    /// # Errors
    ///
    /// [`NnError::Checkpoint`] on I/O failure, [`NnError::Serialization`]
    /// if encoding fails.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, NnError> {
        fs::create_dir_all(dir).map_err(|e| NnError::Checkpoint {
            detail: format!("creating {}: {e}", dir.display()),
        })?;
        let json = serde_json::to_string(self).map_err(|e| NnError::Serialization {
            detail: e.to_string(),
        })?;
        let path = Self::path_in(dir);
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        fs::write(&tmp, json).map_err(|e| NnError::Checkpoint {
            detail: format!("writing {}: {e}", tmp.display()),
        })?;
        fs::rename(&tmp, &path).map_err(|e| NnError::Checkpoint {
            detail: format!("renaming into {}: {e}", path.display()),
        })?;
        Ok(path)
    }

    /// Loads the checkpoint from `dir`, returning `Ok(None)` when no
    /// checkpoint file exists (a fresh run).
    ///
    /// # Errors
    ///
    /// [`NnError::Checkpoint`] when the file exists but cannot be read,
    /// parsed, or has an unsupported version.
    pub fn load(dir: &Path) -> Result<Option<Self>, NnError> {
        let path = Self::path_in(dir);
        if !path.exists() {
            return Ok(None);
        }
        let json = fs::read_to_string(&path).map_err(|e| NnError::Checkpoint {
            detail: format!("reading {}: {e}", path.display()),
        })?;
        let cp: TrainCheckpoint = serde_json::from_str(&json).map_err(|e| NnError::Checkpoint {
            detail: format!("parsing {}: {e}", path.display()),
        })?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(NnError::Checkpoint {
                detail: format!(
                    "unsupported checkpoint version {} in {} (expected {CHECKPOINT_VERSION})",
                    cp.version,
                    path.display()
                ),
            });
        }
        Ok(Some(cp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::{init, Activation, NetworkBuilder};

    fn sample_checkpoint() -> TrainCheckpoint {
        let network = NetworkBuilder::new(3)
            .layer(4, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(11)
            .build()
            .unwrap();
        let mut rng = init::rng(5);
        // Advance the stream so the serialized RNG is mid-sequence.
        use rand::Rng as _;
        for _ in 0..17 {
            let _: f64 = rng.gen();
        }
        TrainCheckpoint {
            version: CHECKPOINT_VERSION,
            next_epoch: 3,
            network,
            optimizer: OptimizerState::Adam(Adam::new(0.004)),
            rng,
            indices: vec![2, 0, 1, 3],
            report: TrainReport { epochs: Vec::new() },
            best_val_loss: Some(0.123456789012345),
            epochs_since_best: 1,
            lr_halvings: 0,
        }
    }

    #[test]
    fn round_trips_exactly_through_disk() {
        let dir = std::env::temp_dir().join("maleva-ckpt-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let cp = sample_checkpoint();
        let path = cp.save(&dir).unwrap();
        assert!(path.exists());
        let loaded = TrainCheckpoint::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, cp);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = std::env::temp_dir().join("maleva-ckpt-missing");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(TrainCheckpoint::load(&dir).unwrap(), None);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = std::env::temp_dir().join("maleva-ckpt-version");
        let _ = fs::remove_dir_all(&dir);
        let mut cp = sample_checkpoint();
        cp.version = 999;
        cp.save(&dir).unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, NnError::Checkpoint { .. }), "{err:?}");
        assert!(err.to_string().contains("version"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = std::env::temp_dir().join("maleva-ckpt-corrupt");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(TrainCheckpoint::path_in(&dir), "{not json").unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, NnError::Checkpoint { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
