use std::error::Error;
use std::fmt;

use maleva_linalg::LinalgError;

/// Error type for network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A numeric operation failed (almost always a shape mismatch).
    Linalg(LinalgError),
    /// The network or trainer was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the bad configuration.
        detail: String,
    },
    /// Input batch shape does not match the network's expected input size.
    InputShape {
        /// Features the network expects.
        expected: usize,
        /// Features the caller supplied.
        actual: usize,
    },
    /// Labels do not match the batch (wrong count or class out of range).
    LabelMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// (De)serialization of a model failed.
    Serialization {
        /// Underlying serde error message.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            NnError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            NnError::InputShape { expected, actual } => write!(
                f,
                "input has {actual} features but the network expects {expected}"
            ),
            NnError::LabelMismatch { detail } => write!(f, "label mismatch: {detail}"),
            NnError::Serialization { detail } => write!(f, "serialization error: {detail}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NnError {
    fn from(e: LinalgError) -> Self {
        NnError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::InputShape {
            expected: 491,
            actual: 3,
        };
        assert!(e.to_string().contains("491"));
        let e = NnError::from(LinalgError::Empty);
        assert!(e.to_string().contains("linear algebra"));
    }

    #[test]
    fn source_chains_linalg() {
        use std::error::Error as _;
        let e = NnError::from(LinalgError::Empty);
        assert!(e.source().is_some());
        let e = NnError::InvalidConfig {
            detail: "x".into(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
