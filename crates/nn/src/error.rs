use std::error::Error;
use std::fmt;

use maleva_linalg::LinalgError;

/// Error type for network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A numeric operation failed (almost always a shape mismatch).
    Linalg(LinalgError),
    /// The network or trainer was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the bad configuration.
        detail: String,
    },
    /// Input batch shape does not match the network's expected input size.
    InputShape {
        /// Features the network expects.
        expected: usize,
        /// Features the caller supplied.
        actual: usize,
    },
    /// Labels do not match the batch (wrong count or class out of range).
    LabelMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// (De)serialization of a model failed.
    Serialization {
        /// Underlying serde error message.
        detail: String,
    },
    /// Training produced a non-finite loss, gradient or weight — the run
    /// has numerically diverged (exploding gradients, too-large learning
    /// rate, degenerate data).
    NumericDivergence {
        /// Epoch (0-based) in which the divergence was detected.
        epoch: usize,
        /// Minibatch index (0-based) within the epoch.
        batch: usize,
        /// What diverged and where ("loss is NaN", "gradient ...").
        detail: String,
    },
    /// A batch operation exceeded its failure budget: too many rows
    /// failed for the result to be trusted.
    BatchFailure {
        /// Number of rows that failed (errors + panics).
        failed: usize,
        /// Total rows in the batch.
        total: usize,
        /// Policy description and first failure, for diagnostics.
        detail: String,
    },
    /// Saving or loading a training checkpoint failed (I/O or parse).
    Checkpoint {
        /// Path and underlying error message.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            NnError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            NnError::InputShape { expected, actual } => write!(
                f,
                "input has {actual} features but the network expects {expected}"
            ),
            NnError::LabelMismatch { detail } => write!(f, "label mismatch: {detail}"),
            NnError::Serialization { detail } => write!(f, "serialization error: {detail}"),
            NnError::NumericDivergence {
                epoch,
                batch,
                detail,
            } => write!(
                f,
                "numeric divergence at epoch {epoch}, batch {batch}: {detail}"
            ),
            NnError::BatchFailure {
                failed,
                total,
                detail,
            } => write!(f, "batch failure: {failed}/{total} rows failed ({detail})"),
            NnError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl NnError {
    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Numeric failures ([`NnError::NumericDivergence`] and non-finite
    /// linalg values) are retryable — a different starting point,
    /// learning rate or input often avoids them. Shape/config errors are
    /// deterministic and are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NnError::NumericDivergence { .. } | NnError::Linalg(LinalgError::NonFinite { .. })
        )
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NnError {
    fn from(e: LinalgError) -> Self {
        NnError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::InputShape {
            expected: 491,
            actual: 3,
        };
        assert!(e.to_string().contains("491"));
        let e = NnError::from(LinalgError::Empty);
        assert!(e.to_string().contains("linear algebra"));
    }

    #[test]
    fn source_chains_linalg() {
        use std::error::Error as _;
        let e = NnError::from(LinalgError::Empty);
        assert!(e.source().is_some());
        let e = NnError::InvalidConfig { detail: "x".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn new_variants_display_and_retryability() {
        let e = NnError::NumericDivergence {
            epoch: 3,
            batch: 7,
            detail: "loss is NaN".into(),
        };
        assert!(e.to_string().contains("epoch 3"));
        assert!(e.is_retryable());
        let e = NnError::BatchFailure {
            failed: 2,
            total: 10,
            detail: "budget 0.1".into(),
        };
        assert!(e.to_string().contains("2/10"));
        assert!(!e.is_retryable());
        let e = NnError::Checkpoint {
            detail: "no such file".into(),
        };
        assert!(e.to_string().contains("checkpoint"));
        assert!(!e.is_retryable());
        let e = NnError::Linalg(LinalgError::NonFinite {
            label: "loss".into(),
            index: 0,
            value: "NaN".into(),
        });
        assert!(e.is_retryable());
        assert!(!NnError::from(LinalgError::Empty).is_retryable());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
