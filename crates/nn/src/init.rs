//! Seeded weight initialization.
//!
//! Every experiment in the reproduction must be exactly repeatable, so all
//! randomness flows through a caller-supplied seed and a ChaCha8 stream
//! (stable across `rand` versions, unlike `StdRng`).

use maleva_linalg::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Creates the crate's canonical deterministic RNG from a seed.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// He (Kaiming) uniform initialization for a `fan_in x fan_out` weight
/// matrix: `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`.
///
/// Suited to ReLU layers, which is what the paper's DNNs use.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +...)`. Suited to tanh/sigmoid layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = he_uniform(4, 3, &mut rng(42));
        let b = he_uniform(4, 3, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = he_uniform(4, 3, &mut rng(1));
        let b = he_uniform(4, 3, &mut rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn he_respects_bound() {
        let m = he_uniform(24, 8, &mut rng(7));
        let bound = (6.0 / 24.0f64).sqrt();
        assert!(m.iter().all(|v| v.abs() <= bound));
        // and isn't degenerate
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(10, 6, &mut rng(7));
        let bound = (6.0 / 16.0f64).sqrt();
        assert!(m.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn shapes_are_fan_in_by_fan_out() {
        assert_eq!(he_uniform(5, 2, &mut rng(0)).shape(), (5, 2));
        assert_eq!(xavier_uniform(3, 9, &mut rng(0)).shape(), (3, 9));
    }
}
