use maleva_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, NnError};

/// One fully-connected layer: `a = act(x W + b)`, with optional inverted
/// dropout on the activations during training.
///
/// Weights are stored `in_dim x out_dim` so a batch (rows = samples)
/// multiplies on the left.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    /// Probability of dropping each activation during training; 0 disables.
    dropout: f64,
}

/// Per-layer tensors cached by a training forward pass, consumed by
/// backprop.
#[derive(Debug, Clone)]
pub(crate) struct LayerCache {
    /// The input the layer saw (post-dropout output of the previous layer).
    pub input: Matrix,
    /// Pre-activation values `x W + b`.
    pub preact: Matrix,
    /// Inverted-dropout mask applied to the activations (scale factor per
    /// element: either `0` or `1/(1-p)`), if dropout was active.
    pub mask: Option<Matrix>,
}

impl Dense {
    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `bias.len() != weights.cols()`
    /// or `dropout` is not in `[0, 1)`.
    pub fn new(
        weights: Matrix,
        bias: Vec<f64>,
        activation: Activation,
        dropout: f64,
    ) -> Result<Self, NnError> {
        if bias.len() != weights.cols() {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "bias has length {} but layer has {} output units",
                    bias.len(),
                    weights.cols()
                ),
            });
        }
        if !(0.0..1.0).contains(&dropout) {
            return Err(NnError::InvalidConfig {
                detail: format!("dropout must be in [0, 1), got {dropout}"),
            });
        }
        Ok(Dense {
            weights,
            bias,
            activation,
            dropout,
        })
    }

    /// Number of input features.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of output units.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The layer's dropout probability.
    pub fn dropout(&self) -> f64 {
        self.dropout
    }

    /// Borrows the weight matrix (`in_dim x out_dim`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutably borrows the weight matrix.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutably borrows the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Inference-mode forward pass (no dropout).
    pub(crate) fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let z = x.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        Ok(z.map(|v| self.activation.apply(v)))
    }

    /// Training-mode forward pass: applies dropout and caches
    /// intermediates for backprop.
    pub(crate) fn forward_train(
        &self,
        x: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<(Matrix, LayerCache), NnError> {
        let preact = x.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        let mut out = preact.map(|v| self.activation.apply(v));
        let mask = if self.dropout > 0.0 {
            let keep = 1.0 - self.dropout;
            let scale = 1.0 / keep;
            let mask = Matrix::from_fn(out.rows(), out.cols(), |_, _| {
                if rng.gen::<f64>() < keep {
                    scale
                } else {
                    0.0
                }
            });
            out = out.hadamard(&mask)?;
            Some(mask)
        } else {
            None
        };
        Ok((
            out,
            LayerCache {
                input: x.clone(),
                preact,
                mask,
            },
        ))
    }

    /// Backward pass. `grad_out` is dL/d(layer output). Returns
    /// `(grad_weights, grad_bias, grad_input)`.
    pub(crate) fn backward(
        &self,
        cache: &LayerCache,
        grad_out: &Matrix,
    ) -> Result<(Matrix, Vec<f64>, Matrix), NnError> {
        // Undo dropout scaling first (dL/da_pre_dropout = dL/da_post ∘ mask).
        let grad_act = match &cache.mask {
            Some(mask) => grad_out.hadamard(mask)?,
            None => grad_out.clone(),
        };
        // Through the activation: delta = grad_act ∘ act'(preact).
        let act = self.activation;
        let delta = grad_act.zip_with(&cache.preact, |g, z| g * act.derivative(z))?;
        // Transpose-free products, dispatched through the active linalg
        // backend: bit-identical to the explicit `transpose().matmul()`
        // forms but without materializing the transposed operand on
        // every minibatch.
        let grad_w = cache.input.matmul_tn(&delta)?;
        let grad_b = delta.sum_rows();
        let grad_in = delta.matmul_nt(&self.weights)?;
        Ok((grad_w, grad_b, grad_in))
    }

    /// Input-gradient-only backward pass for attack-side gradients:
    /// propagates `grad_out` to dL/d(layer input) without computing the
    /// weight/bias gradients (which attackers discard). Needs only the
    /// pre-activations, not the cached input. Dropout is assumed
    /// inactive (`mask` handling lives in the full [`Dense::backward`]).
    pub(crate) fn backward_input_only(
        &self,
        preact: &Matrix,
        grad_out: &Matrix,
    ) -> Result<Matrix, NnError> {
        let act = self.activation;
        let delta = grad_out.zip_with(preact, |g, z| g * act.derivative(z))?;
        Ok(delta.matmul_nt(&self.weights)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn layer_2x3() -> Dense {
        let w = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.5, 2.0, 0.0]]).unwrap();
        Dense::new(w, vec![0.1, -0.1, 0.0], Activation::Identity, 0.0).unwrap()
    }

    #[test]
    fn forward_computes_affine() {
        let l = layer_2x3();
        let x = Matrix::from_rows(&[vec![2.0, 1.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        // [2*1 + 1*0.5 + 0.1, 2*0 + 1*2 - 0.1, 2*-1 + 0 + 0]
        assert_eq!(y.row(0), &[2.6, 1.9, -2.0]);
    }

    #[test]
    fn relu_forward_clips_negative() {
        let w = Matrix::identity(2);
        let l = Dense::new(w, vec![0.0, 0.0], Activation::ReLU, 0.0).unwrap();
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]).unwrap();
        assert_eq!(l.forward(&x).unwrap().row(0), &[0.0, 2.0]);
    }

    #[test]
    fn new_rejects_bad_bias() {
        let w = Matrix::identity(2);
        assert!(Dense::new(w, vec![0.0], Activation::ReLU, 0.0).is_err());
    }

    #[test]
    fn new_rejects_bad_dropout() {
        let w = Matrix::identity(2);
        assert!(Dense::new(w.clone(), vec![0.0, 0.0], Activation::ReLU, 1.0).is_err());
        assert!(Dense::new(w, vec![0.0, 0.0], Activation::ReLU, -0.1).is_err());
    }

    #[test]
    fn dims_and_params() {
        let l = layer_2x3();
        assert_eq!(l.in_dim(), 2);
        assert_eq!(l.out_dim(), 3);
        assert_eq!(l.param_count(), 9);
    }

    #[test]
    fn dropout_zero_mask_is_none() {
        let l = layer_2x3();
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let (_, cache) = l.forward_train(&x, &mut init::rng(0)).unwrap();
        assert!(cache.mask.is_none());
    }

    #[test]
    fn dropout_masks_some_units_and_scales_others() {
        let w = Matrix::identity(4);
        let l = Dense::new(w, vec![0.0; 4], Activation::Identity, 0.5).unwrap();
        let x = Matrix::filled(64, 4, 1.0);
        let (out, cache) = l.forward_train(&x, &mut init::rng(3)).unwrap();
        let mask = cache.mask.unwrap();
        let zeros = mask.iter().filter(|&v| v == 0.0).count();
        let scaled = mask.iter().filter(|&v| (v - 2.0).abs() < 1e-12).count();
        assert_eq!(zeros + scaled, 256, "mask values must be 0 or 1/(1-p)");
        assert!(
            zeros > 50 && zeros < 200,
            "roughly half dropped, got {zeros}"
        );
        // expectation preserved: mean of out ≈ 1
        let mean = out.sum() / out.len() as f64;
        assert!((mean - 1.0).abs() < 0.25);
    }

    #[test]
    fn backward_matches_finite_difference() {
        // Single-layer network with scalar loss L = sum(out).
        let mut rng = init::rng(11);
        let w = init::he_uniform(3, 2, &mut rng);
        let l = Dense::new(w, vec![0.05, -0.02], Activation::Tanh, 0.0).unwrap();
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.8], vec![-0.1, 0.4, 0.0]]).unwrap();

        let (_, cache) = l.forward_train(&x, &mut rng).unwrap();
        let grad_out = Matrix::filled(2, 2, 1.0); // dL/dout for L = sum(out)
        let (gw, gb, gx) = l.backward(&cache, &grad_out).unwrap();

        let eps = 1e-6;
        let loss = |l: &Dense, x: &Matrix| l.forward(x).unwrap().sum();

        // weights
        for i in 0..3 {
            for j in 0..2 {
                let mut lp = l.clone();
                lp.weights_mut().set(i, j, l.weights().get(i, j) + eps);
                let mut lm = l.clone();
                lm.weights_mut().set(i, j, l.weights().get(i, j) - eps);
                let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!(
                    (numeric - gw.get(i, j)).abs() < 1e-5,
                    "dW({i},{j}): {numeric} vs {}",
                    gw.get(i, j)
                );
            }
        }
        // bias
        for (j, g) in gb.iter().enumerate().take(2) {
            let mut lp = l.clone();
            lp.bias_mut()[j] += eps;
            let mut lm = l.clone();
            lm.bias_mut()[j] -= eps;
            let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((numeric - g).abs() < 1e-5);
        }
        // input
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let numeric = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
                assert!((numeric - gx.get(r, c)).abs() < 1e-5);
            }
        }
    }
}
