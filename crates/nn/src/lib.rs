//! From-scratch dense feed-forward neural networks for the `maleva`
//! adversarial-malware toolkit.
//!
//! The paper's detectors are fully-connected DNNs over 491 API-count
//! features: a proprietary 4-layer **target model** and a 5-layer
//! **substitute model** (Table IV: 491 → 1200 → 1500 → 1300 → 2, trained
//! with Adam, batch size 256). This crate provides everything needed to
//! train and, crucially, to *attack* such models:
//!
//! * [`Network`] — a stack of dense layers with configurable activations
//!   and inverted dropout, built via [`NetworkBuilder`].
//! * [`Activation`] — ReLU / Sigmoid / Tanh / Identity.
//! * Softmax **with temperature** ([`softmax()`]) — temperature is what
//!   defensive distillation (Section II-C-2, T = 50) manipulates.
//! * Cross-entropy on hard labels and on **soft labels**
//!   ([`loss`]) — soft labels are the other half of distillation.
//! * [`optim`] — SGD (+momentum, +weight decay) and Adam.
//! * [`Trainer`] — seeded, reproducible minibatch training with optional
//!   validation tracking.
//! * Input gradients and per-sample class Jacobians
//!   ([`Network::input_jacobian`]) — the raw material of the JSMA attack
//!   (Equation 1 of the paper).
//!
//! # Example: train a tiny detector and inspect its Jacobian
//!
//! ```
//! use maleva_linalg::Matrix;
//! use maleva_nn::{Activation, NetworkBuilder, Trainer, TrainConfig};
//!
//! # fn main() -> Result<(), maleva_nn::NnError> {
//! // Linearly separable toy problem: 2 features, 2 classes.
//! let x = Matrix::from_rows(&[
//!     vec![0.0, 0.1], vec![0.1, 0.0], vec![0.9, 1.0], vec![1.0, 0.9],
//! ]).unwrap();
//! let y = vec![0, 0, 1, 1];
//!
//! let mut net = NetworkBuilder::new(2)
//!     .layer(8, Activation::ReLU)
//!     .layer(2, Activation::Identity)
//!     .seed(7)
//!     .build()?;
//!
//! let config = TrainConfig::new().epochs(200).batch_size(4).learning_rate(0.05);
//! Trainer::new(config).fit(&mut net, &x, &y)?;
//!
//! let probs = net.predict_proba(&x)?;
//! assert_eq!(probs.shape(), (4, 2));
//! let jac = net.input_jacobian(x.row(0))?;  // 2 classes x 2 features
//! assert_eq!(jac.shape(), (2, 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod activation;
pub mod checkpoint;
mod error;
pub mod init;
mod layer;
pub mod loss;
mod network;
pub mod optim;
pub mod softmax;
mod trainer;

pub use activation::Activation;
pub use checkpoint::TrainCheckpoint;
pub use error::NnError;
pub use layer::Dense;
pub use network::{Gradients, Network, NetworkBuilder};
pub use optim::OptimizerState;
pub use softmax::{log_softmax, softmax, softmax_rows};
pub use trainer::{DivergencePolicy, EpochStats, LabelSource, TrainConfig, TrainReport, Trainer};
