//! Cross-entropy losses on hard and soft labels.
//!
//! Hard-label cross-entropy is the standard detector training objective.
//! Soft-label cross-entropy (targets are probability vectors rather than
//! class indices) is what the *distilled* student model of the defensive
//! distillation defense trains against — the teacher's temperature-softened
//! output probabilities carry the "dark knowledge" the defense relies on.
//!
//! Both losses are fused with softmax for the gradient: the derivative of
//! `CE(softmax(z/T), y)` with respect to the logits `z` is the well-known
//! `(softmax(z/T) - y) / T`, averaged over the batch here.

use maleva_linalg::Matrix;

use crate::softmax::softmax;
use crate::NnError;

/// Mean cross-entropy of logits against hard class labels, at softmax
/// temperature `t`.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if `labels.len() != logits.rows()`
/// or any label is out of class range.
pub fn cross_entropy(logits: &Matrix, labels: &[usize], t: f64) -> Result<f64, NnError> {
    validate_hard_labels(logits, labels)?;
    let mut total = 0.0;
    for (row, &label) in logits.rows_iter().zip(labels.iter()) {
        let lp = crate::softmax::log_softmax(row, t);
        total -= lp[label];
    }
    Ok(total / labels.len() as f64)
}

/// Mean cross-entropy of logits against soft label distributions
/// (one probability row per sample), at softmax temperature `t`.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if the shapes differ.
pub fn soft_cross_entropy(logits: &Matrix, soft: &Matrix, t: f64) -> Result<f64, NnError> {
    if logits.shape() != soft.shape() {
        return Err(NnError::LabelMismatch {
            detail: format!(
                "logits are {:?} but soft labels are {:?}",
                logits.shape(),
                soft.shape()
            ),
        });
    }
    if logits.rows() == 0 {
        return Err(NnError::LabelMismatch {
            detail: "empty batch".to_string(),
        });
    }
    let mut total = 0.0;
    for (zrow, prow) in logits.rows_iter().zip(soft.rows_iter()) {
        let lp = crate::softmax::log_softmax(zrow, t);
        for (&p, &l) in prow.iter().zip(lp.iter()) {
            total -= p * l;
        }
    }
    Ok(total / logits.rows() as f64)
}

/// Gradient of mean softmax-cross-entropy with respect to the logits, for
/// hard labels: `(softmax(z/T) - onehot(y)) / (T * n)` per row.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] on label/batch inconsistencies.
pub fn cross_entropy_grad(logits: &Matrix, labels: &[usize], t: f64) -> Result<Matrix, NnError> {
    validate_hard_labels(logits, labels)?;
    let n = labels.len() as f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for (i, (row, &label)) in logits.rows_iter().zip(labels.iter()).enumerate() {
        let p = softmax(row, t);
        for (j, &pj) in p.iter().enumerate() {
            let target = if j == label { 1.0 } else { 0.0 };
            grad.set(i, j, (pj - target) / (t * n));
        }
    }
    Ok(grad)
}

/// Gradient of mean softmax-cross-entropy with respect to the logits, for
/// soft labels: `(softmax(z/T) - p) / (T * n)` per row.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if shapes differ or the batch is empty.
pub fn soft_cross_entropy_grad(logits: &Matrix, soft: &Matrix, t: f64) -> Result<Matrix, NnError> {
    if logits.shape() != soft.shape() || logits.rows() == 0 {
        return Err(NnError::LabelMismatch {
            detail: format!(
                "logits are {:?} but soft labels are {:?}",
                logits.shape(),
                soft.shape()
            ),
        });
    }
    let n = logits.rows() as f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for (i, (zrow, prow)) in logits.rows_iter().zip(soft.rows_iter()).enumerate() {
        let p = softmax(zrow, t);
        for (j, (&pj, &target)) in p.iter().zip(prow.iter()).enumerate() {
            grad.set(i, j, (pj - target) / (t * n));
        }
    }
    Ok(grad)
}

/// Fraction of rows whose argmax equals the label, in `[0, 1]`.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] on label/batch inconsistencies.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> Result<f64, NnError> {
    validate_hard_labels(logits, labels)?;
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f64 / labels.len() as f64)
}

fn validate_hard_labels(logits: &Matrix, labels: &[usize]) -> Result<(), NnError> {
    if labels.is_empty() || labels.len() != logits.rows() {
        return Err(NnError::LabelMismatch {
            detail: format!(
                "{} labels for a batch of {} rows",
                labels.len(),
                logits.rows()
            ),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= logits.cols()) {
        return Err(NnError::LabelMismatch {
            detail: format!("label {bad} out of range for {} classes", logits.cols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0], vec![-10.0, 10.0]]).unwrap();
        let loss = cross_entropy(&logits, &[0, 1], 1.0).unwrap();
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_prediction_loss_is_ln_k() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let loss = cross_entropy(&logits, &[0], 1.0).unwrap();
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn wrong_prediction_has_high_loss() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0]]).unwrap();
        let loss = cross_entropy(&logits, &[1], 1.0).unwrap();
        assert!(loss > 10.0);
    }

    #[test]
    fn soft_matches_hard_for_onehot_targets() {
        let logits = Matrix::from_rows(&[vec![1.0, -0.5], vec![0.2, 0.9]]).unwrap();
        let hard = cross_entropy(&logits, &[0, 1], 2.0).unwrap();
        let onehot = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let soft = soft_cross_entropy(&logits, &onehot, 2.0).unwrap();
        assert!((hard - soft).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_finite_difference_hard() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.7], vec![1.1, 0.4]]).unwrap();
        let labels = [1usize, 0];
        let t = 1.5;
        let grad = cross_entropy_grad(&logits, &labels, t).unwrap();
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut plus = logits.clone();
                plus.set(i, j, logits.get(i, j) + eps);
                let mut minus = logits.clone();
                minus.set(i, j, logits.get(i, j) - eps);
                let numeric = (cross_entropy(&plus, &labels, t).unwrap()
                    - cross_entropy(&minus, &labels, t).unwrap())
                    / (2.0 * eps);
                assert!(
                    (numeric - grad.get(i, j)).abs() < 1e-6,
                    "grad mismatch at ({i},{j}): {numeric} vs {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn grad_matches_finite_difference_soft() {
        let logits = Matrix::from_rows(&[vec![0.5, 0.1, -0.2]]).unwrap();
        let soft = Matrix::from_rows(&[vec![0.2, 0.5, 0.3]]).unwrap();
        let t = 3.0;
        let grad = soft_cross_entropy_grad(&logits, &soft, t).unwrap();
        let eps = 1e-6;
        for j in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, j, logits.get(0, j) + eps);
            let mut minus = logits.clone();
            minus.set(0, j, logits.get(0, j) - eps);
            let numeric = (soft_cross_entropy(&plus, &soft, t).unwrap()
                - soft_cross_entropy(&minus, &soft, t).unwrap())
                / (2.0 * eps);
            assert!((numeric - grad.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // softmax gradient rows always sum to 0 (prob simplex constraint)
        let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.0]]).unwrap();
        let grad = cross_entropy_grad(&logits, &[2], 1.0).unwrap();
        let s: f64 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert!(cross_entropy(&logits, &[], 1.0).is_err());
        assert!(cross_entropy(&logits, &[2], 1.0).is_err());
        assert!(cross_entropy(&logits, &[0, 0], 1.0).is_err());
    }

    #[test]
    fn rejects_shape_mismatch_soft() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let soft = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(soft_cross_entropy(&logits, &soft, 1.0).is_err());
        assert!(soft_cross_entropy_grad(&logits, &soft, 1.0).is_err());
    }
}
