use maleva_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::LayerCache;
use crate::softmax::{softmax, softmax_rows};
use crate::{init, Activation, Dense, NnError};

/// A feed-forward network: a stack of [`Dense`] layers.
///
/// The final layer's outputs are treated as **logits**; probabilities are
/// obtained via [`Network::predict_proba`] (softmax, optionally with a
/// distillation temperature). The paper's models both fit this shape:
///
/// * target model — 4-layer fully-connected DNN (architecture proprietary;
///   our reproduction uses 491 → 512 → 256 → 2),
/// * substitute model — Table IV: 491 → 1200 → 1500 → 1300 → 2.
///
/// Construct networks with [`NetworkBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
}

/// Gradients produced by one backward pass, aligned with the network's
/// layers.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// `(weight_grad, bias_grad)` per layer, input-most first.
    pub layers: Vec<(Matrix, Vec<f64>)>,
    /// Gradient of the loss with respect to the input batch.
    pub input: Matrix,
}

impl Network {
    /// Creates a network from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the stack is empty or
    /// consecutive layer dimensions do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                detail: "network must have at least one layer".to_string(),
            });
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(NnError::InvalidConfig {
                    detail: format!(
                        "layer {i} outputs {} units but layer {} expects {}",
                        pair[0].out_dim(),
                        i + 1,
                        pair[1].in_dim()
                    ),
                });
            }
        }
        Ok(Network { layers })
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Number of output classes (units of the final layer).
    pub fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Borrows the layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrows the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// The layer widths, input first: `[input, hidden..., classes]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.input_dim()];
        dims.extend(self.layers.iter().map(Dense::out_dim));
        dims
    }

    fn check_input(&self, x: &Matrix) -> Result<(), NnError> {
        if x.cols() != self.input_dim() {
            return Err(NnError::InputShape {
                expected: self.input_dim(),
                actual: x.cols(),
            });
        }
        Ok(())
    }

    /// Inference forward pass producing logits (no dropout).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if the batch width is wrong.
    pub fn logits(&self, x: &Matrix) -> Result<Matrix, NnError> {
        self.check_input(x)?;
        // Feed the first layer from `x` directly: cloning the input
        // would cost a batch-sized allocation per forward pass, which
        // dominates serving-path latency at large batches.
        let mut layers = self.layers.iter();
        let Some(first) = layers.next() else {
            return Ok(x.clone());
        };
        let mut h = first.forward(x)?;
        for layer in layers {
            h = layer.forward(&h)?;
        }
        Ok(h)
    }

    /// Class probabilities at temperature 1.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if the batch width is wrong.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix, NnError> {
        self.predict_proba_at(x, 1.0)
    }

    /// Class probabilities at an explicit softmax temperature (defensive
    /// distillation trains at T ≫ 1 and deploys at T = 1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if the batch width is wrong.
    ///
    /// # Panics
    ///
    /// Panics if `t <= 0`.
    pub fn predict_proba_at(&self, x: &Matrix, t: f64) -> Result<Matrix, NnError> {
        Ok(softmax_rows(&self.logits(x)?, t))
    }

    /// Hard class predictions (argmax of logits).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if the batch width is wrong.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        Ok(self.logits(x)?.argmax_rows())
    }

    /// Batched inference over loose feature rows: packs `rows` into one
    /// `Matrix` and runs a single forward pass (one matmul per layer
    /// instead of one per row). This is the serving hot path's entry
    /// point — `maleva-serve` drains its micro-batch queue into this.
    ///
    /// The result is **bit-identical** to calling
    /// [`Network::predict_proba`] on each row individually: every output
    /// row of a matmul is an independent dot-product accumulation over
    /// that row alone, so batching changes neither operation order nor
    /// rounding (`maleva-serve`'s proptests pin this invariant). This
    /// holds under every linalg backend — including `simd`, whose
    /// per-element accumulation order is independent of tile position
    /// and batch size (see `maleva_linalg::backend`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `rows` is empty or any row's
    /// width differs from `input_dim()`.
    pub fn predict_proba_rows(&self, rows: &[Vec<f64>]) -> Result<Matrix, NnError> {
        if let Some(bad) = rows.iter().find(|r| r.len() != self.input_dim()) {
            return Err(NnError::InputShape {
                expected: self.input_dim(),
                actual: bad.len(),
            });
        }
        let x = Matrix::from_rows(rows).map_err(|_| NnError::InputShape {
            expected: self.input_dim(),
            actual: 0,
        })?;
        self.predict_proba(&x)
    }

    /// Training forward pass with dropout; returns logits and the caches
    /// needed by [`Network::backward`].
    pub(crate) fn forward_train(
        &self,
        x: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<(Matrix, Vec<LayerCache>), NnError> {
        self.check_input(x)?;
        let mut h = x.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward_train(&h, rng)?;
            caches.push(cache);
            h = out;
        }
        Ok((h, caches))
    }

    /// Backpropagates `grad_logits` (dL/dlogits) through the cached forward
    /// pass, returning per-layer parameter gradients and the input
    /// gradient.
    pub(crate) fn backward(
        &self,
        caches: &[LayerCache],
        grad_logits: &Matrix,
    ) -> Result<Gradients, NnError> {
        debug_assert_eq!(caches.len(), self.layers.len());
        let mut layer_grads: Vec<(Matrix, Vec<f64>)> = Vec::with_capacity(self.layers.len());
        let mut grad = grad_logits.clone();
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (gw, gb, gx) = layer.backward(cache, &grad)?;
            layer_grads.push((gw, gb));
            grad = gx;
        }
        layer_grads.reverse();
        Ok(Gradients {
            layers: layer_grads,
            input: grad,
        })
    }

    /// Gradient of a scalar function of the logits with respect to the
    /// input batch, where `grad_logits` is dL/dlogits. Dropout is disabled
    /// (inference-mode gradients, as an attacker would compute them).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on batch-width mismatch and
    /// [`NnError::LabelMismatch`] if `grad_logits` has the wrong shape.
    pub fn input_gradient(&self, x: &Matrix, grad_logits: &Matrix) -> Result<Matrix, NnError> {
        self.check_input(x)?;
        if grad_logits.shape() != (x.rows(), self.num_classes()) {
            return Err(NnError::LabelMismatch {
                detail: format!(
                    "grad_logits is {:?}, expected ({}, {})",
                    grad_logits.shape(),
                    x.rows(),
                    self.num_classes()
                ),
            });
        }
        // Inference-mode forward keeping only pre-activations: the
        // attacker-side backward pass needs neither dropout masks nor the
        // per-layer inputs (those only feed weight gradients, which this
        // path never computes).
        let mut preacts = Vec::with_capacity(self.layers.len());
        let mut h: Option<Matrix> = None;
        for layer in &self.layers {
            let input = h.as_ref().unwrap_or(x);
            let preact = input
                .matmul(layer.weights())?
                .add_row_broadcast(layer.bias())?;
            let act = layer.activation();
            h = Some(preact.map(|v| act.apply(v)));
            preacts.push(preact);
        }
        // Input-only backward: propagate dL/dlogits to dL/dx skipping
        // the (discarded) parameter gradients.
        let mut grad = grad_logits.clone();
        for (layer, preact) in self.layers.iter().zip(preacts.iter()).rev() {
            grad = layer.backward_input_only(preact, &grad)?;
        }
        Ok(grad)
    }

    /// The Jacobian of the **logits** with respect to a single input
    /// sample: a `num_classes x input_dim` matrix. This is Equation (1) of
    /// the paper (computed on logits; see
    /// [`Network::probability_jacobian`] for the softmax-space version).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `sample.len() != input_dim()`.
    pub fn input_jacobian(&self, sample: &[f64]) -> Result<Matrix, NnError> {
        if sample.len() != self.input_dim() {
            return Err(NnError::InputShape {
                expected: self.input_dim(),
                actual: sample.len(),
            });
        }
        // All `num_classes` rows of the Jacobian come from ONE batched
        // forward/backward: replicate the sample once per class and seed
        // the backward pass with the identity (row `c` asks for
        // d logit_c / dx). Every linalg backend on this path treats
        // batch rows independently, so the result is bit-identical to
        // looping over classes with per-row passes — at a fraction of
        // the cost, which is what makes per-iteration JSMA saliency
        // maps affordable.
        let c = self.num_classes();
        let mut replicated = Vec::with_capacity(c * sample.len());
        for _ in 0..c {
            replicated.extend_from_slice(sample);
        }
        let x = Matrix::from_vec(c, sample.len(), replicated)
            .expect("replicated sample rows are uniform");
        self.input_gradient(&x, &Matrix::identity(c))
    }

    /// The Jacobian of the **softmax probabilities** (at temperature `t`)
    /// with respect to a single input sample: `num_classes x input_dim`.
    ///
    /// Computed from the logit Jacobian via the softmax Jacobian
    /// `∂pᵢ/∂zⱼ = (δᵢⱼ pᵢ − pᵢ pⱼ) / t`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `sample.len() != input_dim()`.
    ///
    /// # Panics
    ///
    /// Panics if `t <= 0`.
    pub fn probability_jacobian(&self, sample: &[f64], t: f64) -> Result<Matrix, NnError> {
        let logit_jac = self.input_jacobian(sample)?;
        let x = Matrix::row_vector(sample);
        let z = self.logits(&x)?;
        let p = softmax(z.row(0), t);
        let c = p.len();
        // softmax Jacobian S (c x c): S[i][j] = (δij p_i − p_i p_j)/t
        let s = Matrix::from_fn(c, c, |i, j| {
            let delta = if i == j { 1.0 } else { 0.0 };
            (delta * p[i] - p[i] * p[j]) / t
        });
        Ok(s.matmul(&logit_jac)?)
    }

    /// Serializes the network (architecture + weights) to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> Result<String, NnError> {
        serde_json::to_string(self).map_err(|e| NnError::Serialization {
            detail: e.to_string(),
        })
    }

    /// Restores a network from [`Network::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] if decoding fails and
    /// [`NnError::InvalidConfig`] if the decoded layers do not chain.
    pub fn from_json(json: &str) -> Result<Self, NnError> {
        let net: Network = serde_json::from_str(json).map_err(|e| NnError::Serialization {
            detail: e.to_string(),
        })?;
        // Re-validate invariants that serde cannot enforce.
        Network::from_layers(net.layers)
    }
}

/// Builder for [`Network`] values.
///
/// # Example
///
/// ```
/// use maleva_nn::{Activation, NetworkBuilder};
///
/// // The paper's Table IV substitute model (scaled-down widths shown in
/// // the repo's quick presets; full widths work identically).
/// let net = NetworkBuilder::new(491)
///     .layer(1200, Activation::ReLU)
///     .layer(1500, Activation::ReLU)
///     .layer(1300, Activation::ReLU)
///     .layer(2, Activation::Identity)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(net.dims(), vec![491, 1200, 1500, 1300, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_dim: usize,
    specs: Vec<(usize, Activation, f64)>,
    seed: u64,
}

impl NetworkBuilder {
    /// Starts a builder for a network taking `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        NetworkBuilder {
            input_dim,
            specs: Vec::new(),
            seed: 0,
        }
    }

    /// Appends a dense layer with `units` outputs and the given activation.
    pub fn layer(mut self, units: usize, activation: Activation) -> Self {
        self.specs.push((units, activation, 0.0));
        self
    }

    /// Sets the dropout probability of the **most recently added** layer.
    ///
    /// # Panics
    ///
    /// Panics if called before any `layer()`.
    pub fn dropout(mut self, p: f64) -> Self {
        let last = self
            .specs
            .last_mut()
            .expect("dropout() must follow layer()");
        last.2 = p;
        self
    }

    /// Sets the weight-initialization seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the network with He-uniform weights and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if no layers were added, any
    /// layer has zero units, the input dimension is zero, or a dropout
    /// probability is out of range.
    pub fn build(self) -> Result<Network, NnError> {
        if self.input_dim == 0 {
            return Err(NnError::InvalidConfig {
                detail: "input dimension must be positive".to_string(),
            });
        }
        if self.specs.is_empty() {
            return Err(NnError::InvalidConfig {
                detail: "network must have at least one layer".to_string(),
            });
        }
        let mut rng = init::rng(self.seed);
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut fan_in = self.input_dim;
        for &(units, activation, dropout) in &self.specs {
            if units == 0 {
                return Err(NnError::InvalidConfig {
                    detail: "layer must have at least one unit".to_string(),
                });
            }
            let weights = match activation {
                Activation::ReLU => init::he_uniform(fan_in, units, &mut rng),
                _ => init::xavier_uniform(fan_in, units, &mut rng),
            };
            layers.push(Dense::new(weights, vec![0.0; units], activation, dropout)?);
            fan_in = units;
        }
        Network::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new(3)
            .layer(5, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_dims() {
        let net = tiny_net(0);
        assert_eq!(net.dims(), vec![3, 5, 2]);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.num_classes(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(NetworkBuilder::new(0)
            .layer(2, Activation::ReLU)
            .build()
            .is_err());
        assert!(NetworkBuilder::new(3).build().is_err());
        assert!(NetworkBuilder::new(3)
            .layer(0, Activation::ReLU)
            .build()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "dropout() must follow layer()")]
    fn dropout_before_layer_panics() {
        let _ = NetworkBuilder::new(3).dropout(0.5);
    }

    #[test]
    fn from_layers_rejects_non_chaining() {
        let l1 = Dense::new(Matrix::zeros(3, 4), vec![0.0; 4], Activation::ReLU, 0.0).unwrap();
        let l2 = Dense::new(Matrix::zeros(5, 2), vec![0.0; 2], Activation::ReLU, 0.0).unwrap();
        assert!(Network::from_layers(vec![l1, l2]).is_err());
        assert!(Network::from_layers(vec![]).is_err());
    }

    #[test]
    fn logits_shape_and_input_check() {
        let net = tiny_net(1);
        let x = Matrix::zeros(4, 3);
        assert_eq!(net.logits(&x).unwrap().shape(), (4, 2));
        let bad = Matrix::zeros(4, 7);
        assert!(matches!(
            net.logits(&bad).unwrap_err(),
            NnError::InputShape {
                expected: 3,
                actual: 7
            }
        ));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let net = tiny_net(2);
        let x = Matrix::from_rows(&[vec![0.1, -0.5, 0.9], vec![1.0, 1.0, 1.0]]).unwrap();
        let p = net.predict_proba(&x).unwrap();
        for row in p.rows_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn predict_is_argmax_of_proba() {
        let net = tiny_net(3);
        let x = Matrix::from_rows(&[vec![0.4, 0.2, -0.3], vec![-1.0, 0.5, 0.0]]).unwrap();
        let preds = net.predict(&x).unwrap();
        let probs = net.predict_proba(&x).unwrap();
        assert_eq!(preds, probs.argmax_rows());
    }

    #[test]
    fn same_seed_same_network() {
        let a = tiny_net(9);
        let b = tiny_net(9);
        let x = Matrix::from_rows(&[vec![0.3, 0.1, 0.7]]).unwrap();
        assert_eq!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }

    #[test]
    fn input_jacobian_matches_finite_difference() {
        let net = NetworkBuilder::new(4)
            .layer(6, Activation::Tanh)
            .layer(3, Activation::Identity)
            .seed(5)
            .build()
            .unwrap();
        let sample = [0.2, -0.4, 0.7, 0.1];
        let jac = net.input_jacobian(&sample).unwrap();
        assert_eq!(jac.shape(), (3, 4));
        let eps = 1e-6;
        for j in 0..4 {
            let mut plus = sample;
            plus[j] += eps;
            let mut minus = sample;
            minus[j] -= eps;
            let zp = net.logits(&Matrix::row_vector(&plus)).unwrap();
            let zm = net.logits(&Matrix::row_vector(&minus)).unwrap();
            for c in 0..3 {
                let numeric = (zp.get(0, c) - zm.get(0, c)) / (2.0 * eps);
                assert!(
                    (numeric - jac.get(c, j)).abs() < 1e-5,
                    "J({c},{j}): {numeric} vs {}",
                    jac.get(c, j)
                );
            }
        }
    }

    #[test]
    fn probability_jacobian_matches_finite_difference() {
        let net = NetworkBuilder::new(3)
            .layer(4, Activation::Sigmoid)
            .layer(2, Activation::Identity)
            .seed(8)
            .build()
            .unwrap();
        let sample = [0.5, -0.2, 0.3];
        let t = 2.0;
        let jac = net.probability_jacobian(&sample, t).unwrap();
        let eps = 1e-6;
        for j in 0..3 {
            let mut plus = sample;
            plus[j] += eps;
            let mut minus = sample;
            minus[j] -= eps;
            let pp = net.predict_proba_at(&Matrix::row_vector(&plus), t).unwrap();
            let pm = net
                .predict_proba_at(&Matrix::row_vector(&minus), t)
                .unwrap();
            for c in 0..2 {
                let numeric = (pp.get(0, c) - pm.get(0, c)) / (2.0 * eps);
                assert!(
                    (numeric - jac.get(c, j)).abs() < 1e-5,
                    "P-J({c},{j}): {numeric} vs {}",
                    jac.get(c, j)
                );
            }
        }
    }

    #[test]
    fn probability_jacobian_rows_sum_to_zero() {
        // Probabilities sum to 1, so each column of the prob-Jacobian sums
        // to 0 across classes.
        let net = tiny_net(6);
        let jac = net.probability_jacobian(&[0.1, 0.2, 0.3], 1.0).unwrap();
        for j in 0..3 {
            let col_sum: f64 = (0..2).map(|c| jac.get(c, j)).sum();
            assert!(col_sum.abs() < 1e-12);
        }
    }

    #[test]
    fn predict_proba_rows_is_bit_identical_to_per_row() {
        let net = tiny_net(21);
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| {
                let t = i as f64 * 0.37;
                vec![t.sin(), (t * 1.7).cos(), t.tanh() - 0.5]
            })
            .collect();
        let batched = net.predict_proba_rows(&rows).unwrap();
        assert_eq!(batched.shape(), (17, 2));
        for (i, row) in rows.iter().enumerate() {
            let single = net.predict_proba(&Matrix::row_vector(row)).unwrap();
            for c in 0..2 {
                // Exact bitwise equality, not approximate: batching must
                // not perturb the serving scores at all.
                assert_eq!(batched.get(i, c).to_bits(), single.get(0, c).to_bits());
            }
        }
    }

    #[test]
    fn predict_proba_rows_rejects_bad_shapes() {
        let net = tiny_net(22);
        assert!(net.predict_proba_rows(&[]).is_err());
        assert!(net
            .predict_proba_rows(&[vec![0.0; 3], vec![0.0; 4]])
            .is_err());
    }

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let net = tiny_net(13);
        let json = net.to_json().unwrap();
        let restored = Network::from_json(&json).unwrap();
        let x = Matrix::from_rows(&[vec![0.9, -0.1, 0.4]]).unwrap();
        assert_eq!(net.logits(&x).unwrap(), restored.logits(&x).unwrap());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Network::from_json("{not json").is_err());
        assert!(Network::from_json("{\"layers\": []}").is_err());
    }

    #[test]
    fn input_gradient_validates_shapes() {
        let net = tiny_net(0);
        let x = Matrix::zeros(2, 3);
        let bad_grad = Matrix::zeros(2, 5);
        assert!(net.input_gradient(&x, &bad_grad).is_err());
        assert!(net.input_jacobian(&[0.0; 7]).is_err());
    }
}
