//! Gradient-descent optimizers: SGD (with momentum and weight decay) and
//! Adam.
//!
//! The paper trains its substitute model with **Adam, learning rate 0.001,
//! batch size 256** (Section III-B); weight decay is mentioned as one of
//! the traditional robustness techniques that does *not* defend against
//! adversarial examples, so it is available here for the corresponding
//! ablation.

use maleva_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A parameter-update rule applied to one tensor (weights or biases are
/// both flattened through the same interface).
pub trait Optimizer {
    /// Updates `param` in place given its gradient.
    ///
    /// `slot` identifies the tensor so stateful optimizers (momentum, Adam)
    /// can keep per-tensor accumulators; callers must use a stable, unique
    /// slot index per tensor.
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]);

    /// The base learning rate this optimizer was configured with.
    fn learning_rate(&self) -> f64;

    /// Advances the optimizer's shared timestep, if it has one. Call once
    /// per optimization step, before updating that step's tensors. The
    /// default implementation is a no-op (SGD is stateless in time).
    fn tick(&mut self) {}
}

/// Plain stochastic gradient descent with optional momentum and decoupled
/// L2 weight decay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum/decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (`0.0` disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    fn velocity_for(&mut self, slot: usize, len: usize) -> &mut Vec<f64> {
        while self.velocity.len() <= slot {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[slot];
        if v.len() != len {
            *v = vec![0.0; len];
        }
        v
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        if momentum > 0.0 {
            let v = self.velocity_for(slot, param.len());
            for ((p, &g), vi) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
                let g = g + wd * *p;
                *vi = momentum * *vi + g;
                *p -= lr * *vi;
            }
        } else {
            for (p, &g) in param.iter_mut().zip(grad) {
                let g = g + wd * *p;
                *p -= lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// The Adam optimizer (Kingma & Ba, 2015), the paper's training choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets the L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay < 0`.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    fn slot_for(store: &mut Vec<Vec<f64>>, slot: usize, len: usize) -> &mut Vec<f64> {
        while store.len() <= slot {
            store.push(Vec::new());
        }
        let s = &mut store[slot];
        if s.len() != len {
            *s = vec![0.0; len];
        }
        s
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        if self.t == 0 {
            // Defensive: callers should tick() first; treat as step 1.
            self.t = 1;
        }
        let t = self.t as f64;
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        // Split borrows of m and v.
        Self::slot_for(&mut self.m, slot, param.len());
        Self::slot_for(&mut self.v, slot, param.len());
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        for (((p, &g), mi), vi) in param
            .iter_mut()
            .zip(grad)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            let g = g + wd * *p;
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Advances the shared timestep so all tensors updated in one
    /// optimization step share a single bias-correction factor.
    fn tick(&mut self) {
        self.t += 1;
    }
}

/// Convenience: apply an optimizer step to a whole [`Matrix`] parameter.
pub fn step_matrix(opt: &mut dyn Optimizer, slot: usize, param: &mut Matrix, grad: &Matrix) {
    debug_assert_eq!(param.shape(), grad.shape());
    opt.step(slot, param.as_mut_slice(), grad.as_slice());
}

/// A concrete, serializable optimizer — one of the kinds the trainer can
/// instantiate, with all accumulator state. This is what training
/// checkpoints snapshot; resuming from it continues the *exact* update
/// sequence (momentum buffers, Adam moments and timestep included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// Adam with its first/second-moment accumulators and timestep.
    Adam(Adam),
    /// SGD with its momentum velocity buffers.
    Sgd(Sgd),
}

impl OptimizerState {
    /// The optimizer as a trait object for the update loop.
    pub fn as_optimizer(&mut self) -> &mut dyn Optimizer {
        match self {
            OptimizerState::Adam(a) => a,
            OptimizerState::Sgd(s) => s,
        }
    }

    /// The current base learning rate.
    pub fn learning_rate(&self) -> f64 {
        match self {
            OptimizerState::Adam(a) => a.learning_rate(),
            OptimizerState::Sgd(s) => s.learning_rate(),
        }
    }

    /// Multiplies the learning rate by `factor` (used by the trainer's
    /// halve-and-retry divergence policy). Accumulator state is kept.
    ///
    /// # Panics
    ///
    /// Panics if the resulting learning rate is not positive and finite.
    pub fn scale_learning_rate(&mut self, factor: f64) {
        let lr = match self {
            OptimizerState::Adam(a) => &mut a.lr,
            OptimizerState::Sgd(s) => &mut s.lr,
        };
        let next = *lr * factor;
        assert!(
            next > 0.0 && next.is_finite(),
            "scaled learning rate must be positive and finite, got {next}"
        );
        *lr = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with gradient 2(x - 3).
    fn quadratic_grad(x: f64) -> f64 {
        2.0 * (x - 3.0)
    }

    #[test]
    fn optimizer_state_dispatches_and_scales_lr() {
        let mut st = OptimizerState::Adam(Adam::new(0.1));
        assert_eq!(st.learning_rate(), 0.1);
        st.scale_learning_rate(0.5);
        assert_eq!(st.learning_rate(), 0.05);
        let mut x = [0.0f64];
        st.as_optimizer().tick();
        st.as_optimizer().step(0, &mut x, &[quadratic_grad(0.0)]);
        assert!(x[0] != 0.0);
        let mut st = OptimizerState::Sgd(Sgd::new(1.0));
        st.scale_learning_rate(0.25);
        assert_eq!(st.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn optimizer_state_rejects_degenerate_scale() {
        let mut st = OptimizerState::Sgd(Sgd::new(0.1));
        st.scale_learning_rate(0.0);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f64];
        for _ in 0..200 {
            let g = [quadratic_grad(x[0])];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges_faster() {
        let run = |momentum: f64| {
            let mut opt = Sgd::new(0.02).with_momentum(momentum);
            let mut x = [0.0f64];
            let mut steps = 0;
            while (x[0] - 3.0).abs() > 1e-4 && steps < 10_000 {
                let g = [quadratic_grad(x[0])];
                opt.step(0, &mut x, &g);
                steps += 1;
            }
            steps
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f64];
        for _ in 0..1000 {
            opt.tick();
            let g = [quadratic_grad(x[0])];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_params_at_optimum() {
        // At the loss optimum (grad 0), decay should still pull weights to 0.
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut x = [10.0f64];
        for _ in 0..100 {
            opt.step(0, &mut x, &[0.0]);
        }
        assert!(x[0].abs() < 1.0);
    }

    #[test]
    fn separate_slots_have_separate_state() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        for _ in 0..50 {
            opt.tick();
            let ga = [quadratic_grad(a[0])];
            opt.step(0, &mut a, &ga);
            // slot 1 gets a different objective: min (x + 1)²
            let gb = [2.0 * (b[0] + 1.0)];
            opt.step(1, &mut b, &gb);
        }
        assert!(a[0] > 0.5, "slot 0 should move toward 3");
        assert!(b[0] < -0.1, "slot 1 should move toward -1");
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grad() {
        Sgd::new(0.1).step(0, &mut [0.0, 0.0], &[1.0]);
    }

    #[test]
    fn step_matrix_updates_in_place() {
        let mut opt = Sgd::new(1.0);
        let mut p = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 0.25);
        step_matrix(&mut opt, 0, &mut p, &g);
        assert!(p.iter().all(|v| (v - 0.75).abs() < 1e-12));
    }

    #[test]
    fn adam_without_tick_still_works() {
        let mut opt = Adam::new(0.05);
        let mut x = [0.0f64];
        // no tick() — defensive path treats this as t = 1
        let g = [quadratic_grad(x[0])];
        opt.step(0, &mut x, &g);
        assert!(x[0] != 0.0);
    }
}
