//! Numerically stable softmax with temperature.
//!
//! Defensive distillation (paper Section II-C-2) trains the teacher and
//! student networks at an elevated softmax temperature `T` (the paper uses
//! `T = 50`), then deploys the student at `T = 1`. High temperature smooths
//! the output distribution, which is the mechanism distillation relies on —
//! so temperature is a first-class parameter here rather than a wrapper.

/// Softmax of a logit vector at temperature `t`.
///
/// Uses the max-subtraction trick for numerical stability. A temperature of
/// 1.0 is the ordinary softmax; higher temperatures flatten the
/// distribution, lower temperatures sharpen it.
///
/// # Panics
///
/// Panics if `t <= 0` or `logits` is empty.
///
/// # Example
///
/// ```
/// use maleva_nn::softmax;
/// let p = softmax(&[2.0, 0.0], 1.0);
/// assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
/// assert!(p[0] > p[1]);
///
/// // High temperature flattens:
/// let p_hot = softmax(&[2.0, 0.0], 50.0);
/// assert!(p_hot[0] - p_hot[1] < p[0] - p[1]);
/// ```
pub fn softmax(logits: &[f64], t: f64) -> Vec<f64> {
    assert!(t > 0.0, "softmax temperature must be positive, got {t}");
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| ((z - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Log-softmax of a logit vector at temperature `t`.
///
/// More accurate than `softmax(...).map(ln)` for extreme logits; used by
/// the cross-entropy losses.
///
/// # Panics
///
/// Panics if `t <= 0` or `logits` is empty.
pub fn log_softmax(logits: &[f64], t: f64) -> Vec<f64> {
    assert!(t > 0.0, "softmax temperature must be positive, got {t}");
    assert!(!logits.is_empty(), "log_softmax of empty logits");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits
        .iter()
        .map(|&z| ((z - max) / t).exp())
        .sum::<f64>()
        .ln();
    logits.iter().map(|&z| (z - max) / t - log_sum).collect()
}

/// Applies [`softmax`] independently to every row of a logit matrix.
///
/// # Panics
///
/// Panics if `t <= 0` or the matrix has zero columns.
pub fn softmax_rows(logits: &maleva_linalg::Matrix, t: f64) -> maleva_linalg::Matrix {
    let rows: Vec<Vec<f64>> = logits.rows_iter().map(|r| softmax(r, t)).collect();
    maleva_linalg::Matrix::from_rows(&rows).expect("softmax_rows preserves shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_linalg::Matrix;

    #[test]
    fn sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0], 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preserves_order() {
        let p = softmax(&[3.0, 1.0, 2.0], 1.0);
        assert!(p[0] > p[2] && p[2] > p[1]);
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let p = softmax(&[5.0, 5.0, 5.0, 5.0], 1.0);
        for v in p {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn temperature_flattens() {
        let cold = softmax(&[4.0, 0.0], 0.5);
        let warm = softmax(&[4.0, 0.0], 1.0);
        let hot = softmax(&[4.0, 0.0], 50.0);
        assert!(cold[0] > warm[0]);
        assert!(warm[0] > hot[0]);
        assert!((hot[0] - 0.5).abs() < 0.05, "T=50 should be near-uniform");
    }

    #[test]
    fn stable_for_huge_logits() {
        let p = softmax(&[1000.0, 0.0], 1.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
        let p = softmax(&[-1000.0, -1000.0], 1.0);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let logits = [0.5, -1.5, 2.0];
        let p = softmax(&logits, 2.0);
        let lp = log_softmax(&logits, 2.0);
        for (pi, lpi) in p.iter().zip(lp.iter()) {
            assert!((pi.ln() - lpi).abs() < 1e-10);
        }
    }

    #[test]
    fn log_softmax_stable_for_huge_logits() {
        let lp = log_softmax(&[1000.0, 0.0], 1.0);
        assert!(lp.iter().all(|v| v.is_finite()));
        assert!(lp[0] > -1e-9 && lp[0] <= 0.0);
    }

    #[test]
    fn softmax_rows_applies_per_row() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![10.0, 0.0]]).unwrap();
        let p = softmax_rows(&m, 1.0);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
        assert!(p.get(1, 0) > 0.99);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_nonpositive_temperature() {
        softmax(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_logits() {
        softmax(&[], 1.0);
    }
}
