use maleva_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::optim::{Adam, Optimizer, Sgd};
use crate::{init, loss, Network, NnError};

/// Which optimizer the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with the configured learning rate (the paper's choice).
    Adam,
    /// SGD with the configured learning rate and this momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
}

/// Training hyperparameters.
///
/// Defaults mirror the paper's substitute-model recipe where practical:
/// Adam, learning rate 0.001, batch size 256 (Section III-B; the paper's
/// 1000 epochs are impractical on a laptop reproduction — configure
/// `epochs` per experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    epochs: usize,
    batch_size: usize,
    learning_rate: f64,
    temperature: f64,
    optimizer: OptimizerKind,
    weight_decay: f64,
    seed: u64,
    early_stop_patience: Option<usize>,
}

impl TrainConfig {
    /// Creates the default configuration (Adam, lr 0.001, batch 256,
    /// 10 epochs, T = 1, no weight decay, seed 0).
    pub fn new() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 256,
            learning_rate: 0.001,
            temperature: 1.0,
            optimizer: OptimizerKind::Adam,
            weight_decay: 0.0,
            seed: 0,
            early_stop_patience: None,
        }
    }

    /// Sets the number of passes over the training data.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the minibatch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the optimizer learning rate.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the softmax temperature used in the training loss. Defensive
    /// distillation trains teacher and student at T ≫ 1 (the paper uses
    /// T = 50).
    pub fn temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Selects the optimizer.
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Sets L2 weight decay.
    pub fn weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the RNG seed governing shuffling and dropout.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables early stopping: training ends once the validation loss has
    /// not improved by at least `1e-4` for `patience` consecutive epochs.
    /// Requires a validation set to be passed to
    /// [`Trainer::fit_labeled`]; without one the setting is ignored.
    pub fn early_stop_patience(mut self, patience: usize) -> Self {
        self.early_stop_patience = Some(patience);
        self
    }

    /// The configured temperature.
    pub fn temperature_value(&self) -> f64 {
        self.temperature
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig {
                detail: "epochs must be positive".to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                detail: "batch size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(NnError::InvalidConfig {
                detail: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.temperature <= 0.0 {
            return Err(NnError::InvalidConfig {
                detail: format!("temperature must be positive, got {}", self.temperature),
            });
        }
        if let OptimizerKind::Sgd { momentum } = self.optimizer {
            if !(0.0..1.0).contains(&momentum) {
                return Err(NnError::InvalidConfig {
                    detail: format!("momentum must be in [0, 1), got {momentum}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Labels for one training run: hard class indices or soft probability
/// rows (the distillation student trains on the teacher's soft labels).
#[derive(Debug, Clone, Copy)]
pub enum LabelSource<'a> {
    /// One class index per sample.
    Hard(&'a [usize]),
    /// One probability row per sample (`n x num_classes`).
    Soft(&'a Matrix),
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Training accuracy over the epoch (argmax vs hard labels;
    /// `None` when training on soft labels).
    pub train_accuracy: Option<f64>,
    /// Validation loss, if a validation set was supplied.
    pub val_loss: Option<f64>,
    /// Validation accuracy, if a validation set was supplied.
    pub val_accuracy: Option<f64>,
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Statistics for each epoch in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// The final epoch's training loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN)
    }

    /// The final epoch's training accuracy, if tracked.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.train_accuracy)
    }
}

/// Seeded minibatch trainer for [`Network`].
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains on hard labels. Convenience for
    /// [`Trainer::fit_labeled`] with [`LabelSource::Hard`].
    ///
    /// # Errors
    ///
    /// See [`Trainer::fit_labeled`].
    pub fn fit(
        &self,
        net: &mut Network,
        x: &Matrix,
        labels: &[usize],
    ) -> Result<TrainReport, NnError> {
        self.fit_labeled(net, x, LabelSource::Hard(labels), None)
    }

    /// Trains on soft labels (distillation).
    ///
    /// # Errors
    ///
    /// See [`Trainer::fit_labeled`].
    pub fn fit_soft(
        &self,
        net: &mut Network,
        x: &Matrix,
        soft: &Matrix,
    ) -> Result<TrainReport, NnError> {
        self.fit_labeled(net, x, LabelSource::Soft(soft), None)
    }

    /// Trains with full control: hard or soft labels, plus an optional
    /// hard-labelled validation set evaluated after every epoch.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidConfig`] for degenerate hyperparameters.
    /// * [`NnError::LabelMismatch`] if labels do not match the batch.
    /// * [`NnError::InputShape`] if the feature width is wrong.
    pub fn fit_labeled(
        &self,
        net: &mut Network,
        x: &Matrix,
        labels: LabelSource<'_>,
        validation: Option<(&Matrix, &[usize])>,
    ) -> Result<TrainReport, NnError> {
        self.config.validate()?;
        let n = x.rows();
        if n == 0 {
            return Err(NnError::LabelMismatch {
                detail: "empty training set".to_string(),
            });
        }
        match labels {
            LabelSource::Hard(l) => {
                if l.len() != n {
                    return Err(NnError::LabelMismatch {
                        detail: format!("{} labels for {} samples", l.len(), n),
                    });
                }
                if let Some(&bad) = l.iter().find(|&&c| c >= net.num_classes()) {
                    return Err(NnError::LabelMismatch {
                        detail: format!(
                            "label {bad} out of range for {} classes",
                            net.num_classes()
                        ),
                    });
                }
            }
            LabelSource::Soft(s) => {
                if s.shape() != (n, net.num_classes()) {
                    return Err(NnError::LabelMismatch {
                        detail: format!(
                            "soft labels are {:?}, expected ({n}, {})",
                            s.shape(),
                            net.num_classes()
                        ),
                    });
                }
            }
        }

        let mut rng = init::rng(self.config.seed);
        let t = self.config.temperature;
        let mut adam;
        let mut sgd;
        let opt: &mut dyn Optimizer = match self.config.optimizer {
            OptimizerKind::Adam => {
                adam = Adam::new(self.config.learning_rate)
                    .with_weight_decay(self.config.weight_decay);
                &mut adam
            }
            OptimizerKind::Sgd { momentum } => {
                sgd = Sgd::new(self.config.learning_rate)
                    .with_momentum(momentum)
                    .with_weight_decay(self.config.weight_decay);
                &mut sgd
            }
        };

        let mut indices: Vec<usize> = (0..n).collect();
        let mut report = TrainReport { epochs: Vec::new() };
        let mut best_val_loss = f64::INFINITY;
        let mut epochs_since_best = 0usize;

        for epoch in 0..self.config.epochs {
            shuffle(&mut indices, &mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            let mut correct = 0usize;

            for chunk in indices.chunks(self.config.batch_size) {
                let xb = x.select_rows(chunk);
                let (logits, caches) = net.forward_train(&xb, &mut rng)?;
                let (batch_loss, grad) = match labels {
                    LabelSource::Hard(l) => {
                        let lb: Vec<usize> = chunk.iter().map(|&i| l[i]).collect();
                        let loss_val = loss::cross_entropy(&logits, &lb, t)?;
                        let g = loss::cross_entropy_grad(&logits, &lb, t)?;
                        let preds = logits.argmax_rows();
                        correct += preds.iter().zip(lb.iter()).filter(|(p, y)| p == y).count();
                        (loss_val, g)
                    }
                    LabelSource::Soft(s) => {
                        let sb = s.select_rows(chunk);
                        let loss_val = loss::soft_cross_entropy(&logits, &sb, t)?;
                        let g = loss::soft_cross_entropy_grad(&logits, &sb, t)?;
                        (loss_val, g)
                    }
                };
                epoch_loss += batch_loss;
                batches += 1;

                let grads = net.backward(&caches, &grad)?;
                opt.tick();
                for (i, ((gw, gb), layer)) in grads
                    .layers
                    .iter()
                    .zip(net.layers_mut().iter_mut())
                    .enumerate()
                {
                    opt.step(2 * i, layer.weights_mut().as_mut_slice(), gw.as_slice());
                    opt.step(2 * i + 1, layer.bias_mut(), gb);
                }
            }

            let train_accuracy = match labels {
                LabelSource::Hard(_) => Some(correct as f64 / n as f64),
                LabelSource::Soft(_) => None,
            };
            let (val_loss, val_accuracy) = match validation {
                Some((vx, vy)) => {
                    let logits = net.logits(vx)?;
                    (
                        Some(loss::cross_entropy(&logits, vy, t)?),
                        Some(loss::accuracy(&logits, vy)?),
                    )
                }
                None => (None, None),
            };
            report.epochs.push(EpochStats {
                epoch,
                train_loss: epoch_loss / batches.max(1) as f64,
                train_accuracy,
                val_loss,
                val_accuracy,
            });
            if let (Some(patience), Some(vl)) = (self.config.early_stop_patience, val_loss) {
                // Improvements smaller than min_delta do not reset the
                // counter — cross-entropy keeps creeping down forever on
                // separable data, which is exactly when stopping should
                // fire.
                const MIN_DELTA: f64 = 1e-4;
                if vl + MIN_DELTA < best_val_loss {
                    best_val_loss = vl;
                    epochs_since_best = 0;
                } else {
                    epochs_since_best += 1;
                    if epochs_since_best >= patience {
                        break;
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Fisher–Yates shuffle with the crate's deterministic RNG.
fn shuffle(indices: &mut [usize], rng: &mut impl rand::Rng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};

    fn blob_data(n_per_class: usize) -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian-ish blobs on a 4-D grid (deterministic).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 * 0.02;
            rows.push(vec![0.1 + jitter, 0.2, 0.1, 0.15 + jitter]);
            labels.push(0);
            rows.push(vec![0.9 - jitter, 0.8, 0.85, 0.9 - jitter]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .layer(8, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let (x, y) = blob_data(32);
        let mut net = small_net(1);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(30)
                .batch_size(16)
                .learning_rate(0.01),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.epochs.len() == 30);
        assert!(report.final_loss() < report.epochs[0].train_loss);
        assert!(report.final_accuracy().unwrap() > 0.95);
    }

    #[test]
    fn sgd_also_trains() {
        let (x, y) = blob_data(32);
        let mut net = small_net(2);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(50)
                .batch_size(16)
                .learning_rate(0.1)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 }),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = blob_data(16);
        let cfg = TrainConfig::new().epochs(5).batch_size(8).seed(99);
        let mut a = small_net(7);
        let mut b = small_net(7);
        let ra = Trainer::new(cfg.clone()).fit(&mut a, &x, &y).unwrap();
        let rb = Trainer::new(cfg).fit(&mut b, &x, &y).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }

    #[test]
    fn validation_stats_are_reported() {
        let (x, y) = blob_data(16);
        let (vx, vy) = blob_data(4);
        let mut net = small_net(3);
        let report = Trainer::new(TrainConfig::new().epochs(3).batch_size(8))
            .fit_labeled(&mut net, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
            .unwrap();
        for e in &report.epochs {
            assert!(e.val_loss.is_some());
            assert!(e.val_accuracy.is_some());
        }
    }

    #[test]
    fn soft_label_training_matches_teacher_distribution() {
        let (x, y) = blob_data(32);
        // Teacher: train normally.
        let mut teacher = small_net(4);
        Trainer::new(TrainConfig::new().epochs(30).batch_size(16).learning_rate(0.01))
            .fit(&mut teacher, &x, &y)
            .unwrap();
        let soft = teacher.predict_proba(&x).unwrap();
        // Student: train on teacher's soft labels only.
        let mut student = small_net(5);
        let report = Trainer::new(
            TrainConfig::new().epochs(30).batch_size(16).learning_rate(0.01),
        )
        .fit_soft(&mut student, &x, &soft)
        .unwrap();
        assert!(report.epochs.iter().all(|e| e.train_accuracy.is_none()));
        // The student should agree with the teacher on most samples.
        let tp = teacher.predict(&x).unwrap();
        let sp = student.predict(&x).unwrap();
        let agree = tp.iter().zip(sp.iter()).filter(|(a, b)| a == b).count();
        assert!(agree as f64 / tp.len() as f64 > 0.9);
    }

    #[test]
    fn dropout_training_still_converges() {
        let (x, y) = blob_data(32);
        let mut net = NetworkBuilder::new(4)
            .layer(16, Activation::ReLU)
            .dropout(0.3)
            .layer(2, Activation::Identity)
            .seed(6)
            .build()
            .unwrap();
        let report = Trainer::new(
            TrainConfig::new().epochs(40).batch_size(16).learning_rate(0.01),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn rejects_bad_configs() {
        let (x, y) = blob_data(4);
        let mut net = small_net(0);
        for cfg in [
            TrainConfig::new().epochs(0),
            TrainConfig::new().batch_size(0),
            TrainConfig::new().learning_rate(0.0),
            TrainConfig::new().temperature(0.0),
            TrainConfig::new().optimizer(OptimizerKind::Sgd { momentum: 1.5 }),
        ] {
            assert!(Trainer::new(cfg).fit(&mut net, &x, &y).is_err());
        }
    }

    #[test]
    fn rejects_label_mismatches() {
        let (x, _) = blob_data(4);
        let mut net = small_net(0);
        let trainer = Trainer::new(TrainConfig::new().epochs(1));
        assert!(trainer.fit(&mut net, &x, &[0, 1]).is_err()); // too few
        let bad: Vec<usize> = vec![5; x.rows()]; // out of range
        assert!(trainer.fit(&mut net, &x, &bad).is_err());
        let soft = Matrix::zeros(3, 2); // wrong rows
        assert!(trainer.fit_soft(&mut net, &x, &soft).is_err());
    }

    #[test]
    fn empty_training_set_errors() {
        let mut net = small_net(0);
        let x = Matrix::zeros(0, 4);
        assert!(Trainer::new(TrainConfig::new()).fit(&mut net, &x, &[]).is_err());
    }

    #[test]
    fn high_temperature_training_converges() {
        // Distillation-style: train at T = 50 like the paper.
        let (x, y) = blob_data(32);
        let mut net = small_net(8);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(60)
                .batch_size(16)
                .learning_rate(0.05)
                .temperature(50.0),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }
}

#[cfg(test)]
mod early_stop_tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};
    use maleva_linalg::Matrix;

    fn blobs(n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let j = (i % 7) as f64 * 0.02;
            rows.push(vec![0.1 + j, 0.2, 0.1, 0.15]);
            labels.push(0);
            rows.push(vec![0.9 - j, 0.8, 0.85, 0.9]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let (x, y) = blobs(24);
        let (vx, vy) = blobs(6);
        let mut net = NetworkBuilder::new(4)
            .layer(8, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(5)
            .build()
            .unwrap();
        // This problem converges in a handful of epochs; with patience 3
        // the 200-epoch budget must not be exhausted.
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(200)
                .batch_size(16)
                .learning_rate(0.05)
                .early_stop_patience(3),
        )
        .fit_labeled(&mut net, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
        .unwrap();
        assert!(
            report.epochs.len() < 200,
            "early stopping never fired ({} epochs)",
            report.epochs.len()
        );
        assert!(report.final_accuracy().unwrap() > 0.95);
    }

    #[test]
    fn early_stopping_without_validation_is_ignored() {
        let (x, y) = blobs(8);
        let mut net = NetworkBuilder::new(4)
            .layer(4, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(6)
            .build()
            .unwrap();
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(7)
                .batch_size(8)
                .early_stop_patience(1),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert_eq!(report.epochs.len(), 7, "no validation set: run all epochs");
    }
}
